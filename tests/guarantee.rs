//! End-to-end guarantee properties of the virtual frequency controller,
//! exercised through the public facade (`vfc::prelude`).

use vfc::prelude::*;
use vfc::simcore::Micros;
use vfc::vmm::workload::TraceWorkload;

/// Deterministic host: performance governor, no frequency noise.
fn quiet_host(sockets: u32, cores: u32, threads_per_core: u32) -> SimHost {
    use vfc::cpusched::dvfs::{Governor, GovernorKind};
    use vfc::cpusched::engine::Engine;
    let spec = NodeSpec::custom("it", sockets, cores, threads_per_core, MHz(2400));
    let gov =
        Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, 1).with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, 99);
    SimHost::new(spec, 99).with_engine(engine)
}

fn controller_for(host: &SimHost) -> Controller {
    Controller::new(ControllerConfig::paper_defaults(), host.topology_info())
}

fn settle(host: &mut SimHost, ctl: &mut Controller, periods: u32) {
    for _ in 0..periods {
        host.advance_period();
        ctl.iterate(host).expect("sim backend");
    }
}

#[test]
fn every_class_meets_its_guarantee_under_full_contention() {
    // chetemi fully packed per Eq. 7 with the Table V mix.
    let mut host = quiet_host(2, 10, 2);
    let mut vms = Vec::new();
    for _ in 0..14 {
        vms.push((host.provision(&VmTemplate::small()), 500));
    }
    for _ in 0..8 {
        vms.push((host.provision(&VmTemplate::medium()), 1200));
    }
    for _ in 0..6 {
        vms.push((host.provision(&VmTemplate::large()), 1800));
    }
    for (vm, _) in &vms {
        host.attach_workload(*vm, Box::new(SteadyDemand::full()));
    }
    let mut ctl = controller_for(&host);
    settle(&mut host, &mut ctl, 25);

    for (vm, base) in &vms {
        for j in 0..host.instance(*vm).nr_vcpus() {
            let f = host.vcpu_freq_exact(*vm, VcpuId::new(j));
            assert!(
                f.as_u32() as i64 >= *base as i64 - 60,
                "{} vcpu{} got {} MHz, guarantee {}",
                host.instance(*vm).name,
                j,
                f,
                base
            );
        }
    }
}

#[test]
fn allocations_respect_node_capacity_even_when_oversubscribed() {
    // Deliberately violate Eq. 7: guarantees sum past the node.
    let mut host = quiet_host(1, 2, 1); // 4800 MHz capacity
    for _ in 0..4 {
        let vm = host.provision(&VmTemplate::new("greedy", 2, MHz(1800))); // 14 400 asked
        host.attach_workload(vm, Box::new(SteadyDemand::full()));
    }
    let mut ctl = controller_for(&host);
    let c_max = host.topology_info().c_max(Micros::SEC);
    for _ in 0..15 {
        host.advance_period();
        let report = ctl.iterate(&mut host).expect("sim backend");
        let total: Micros = report.vcpus.iter().map(|v| v.alloc).sum();
        assert!(
            total <= c_max,
            "allocations {total} exceed node capacity {c_max}"
        );
    }
}

#[test]
fn idle_guarantee_returns_to_the_market() {
    // One idle 1800 MHz VM + one saturating 500 MHz VM on a tight node:
    // the small VM must burst far beyond its base using the idle VM's
    // cycles.
    let mut host = quiet_host(1, 1, 2); // 2 threads
    let sleeper = host.provision(&VmTemplate::new("sleeper", 1, MHz(1800)));
    let worker = host.provision(&VmTemplate::new("worker", 1, MHz(500)));
    host.attach_workload(sleeper, Box::new(IdleWorkload));
    host.attach_workload(worker, Box::new(SteadyDemand::full()));
    let mut ctl = controller_for(&host);
    settle(&mut host, &mut ctl, 20);
    let f = host.vcpu_freq_exact(worker, VcpuId::new(0));
    assert!(
        f.as_u32() > 2300,
        "worker should take the sleeper's cycles: {f}"
    );
}

#[test]
fn guarantee_restores_quickly_when_idle_vm_wakes_up() {
    let mut host = quiet_host(1, 1, 2);
    let waker = host.provision(&VmTemplate::new("waker", 1, MHz(1800)));
    let worker = host.provision(&VmTemplate::new("worker", 1, MHz(500)));
    // Idle 30 s, then full demand (engine tick = 100 ms → 300 idle ticks).
    host.attach_workload(
        waker,
        Box::new(TraceWorkload::new(
            std::iter::repeat_n(0.0, 300)
                .chain(std::iter::repeat_n(1.0, 1))
                .collect(),
        )),
    );
    host.attach_workload(worker, Box::new(SteadyDemand::full()));
    let mut ctl = controller_for(&host);
    settle(&mut host, &mut ctl, 30); // through the idle phase

    // After waking, the waker must reach ≈1800 within a bounded ramp.
    let mut reached_at = None;
    for t in 1..=30u32 {
        host.advance_period();
        ctl.iterate(&mut host).expect("sim backend");
        let f = host.vcpu_freq_exact(waker, VcpuId::new(0));
        if f.as_u32() >= 1700 {
            reached_at = Some(t);
            break;
        }
    }
    let t = reached_at.expect("waker never reached its guarantee");
    assert!(t <= 15, "guarantee took {t} s to restore (expected ≤ 15)");
}

#[test]
fn monitor_only_leaves_cfs_in_charge() {
    let mut host = quiet_host(1, 1, 2);
    let a = host.provision(&VmTemplate::new("a", 2, MHz(500)));
    let b = host.provision(&VmTemplate::new("b", 4, MHz(1800)));
    host.attach_workload(a, Box::new(SteadyDemand::full()));
    host.attach_workload(b, Box::new(SteadyDemand::full()));
    let mut ctl = Controller::new(ControllerConfig::monitor_only(), host.topology_info());
    settle(&mut host, &mut ctl, 10);
    // No caps written anywhere.
    for vm in [a, b] {
        for j in 0..host.instance(vm).nr_vcpus() {
            assert!(host.vcpu_max(vm, VcpuId::new(j)).unwrap().is_unlimited());
        }
    }
    // CFS shares per VM: the 2-vCPU VM's vCPUs run twice as fast.
    let fa = host.vcpu_freq_exact(a, VcpuId::new(0)).as_f64();
    let fb = host.vcpu_freq_exact(b, VcpuId::new(0)).as_f64();
    assert!(
        (fa / fb - 2.0).abs() < 0.2,
        "expected per-VM fairness (ratio 2): {fa} vs {fb}"
    );
}

#[test]
fn runtime_vfreq_upgrade_takes_effect_next_period() {
    // Two saturating VMs on one thread: 500 + 1800 = 2300 of 2400 MHz.
    // The cheap customer upgrades to 1100 MHz mid-run; the premium one
    // downgrades to 1200 — the controller re-derives C_i from the
    // template every iteration, so the plateaus move within a few
    // periods.
    let mut host = quiet_host(1, 1, 1);
    let a = host.provision(&VmTemplate::new("a", 1, MHz(500)));
    let b = host.provision(&VmTemplate::new("b", 1, MHz(1800)));
    host.attach_workload(a, Box::new(SteadyDemand::full()));
    host.attach_workload(b, Box::new(SteadyDemand::full()));
    let mut ctl = controller_for(&host);
    settle(&mut host, &mut ctl, 15);
    let fa = host.vcpu_freq_exact(a, VcpuId::new(0)).as_u32();
    let fb = host.vcpu_freq_exact(b, VcpuId::new(0)).as_u32();
    assert!((450..700).contains(&fa), "before upgrade: {fa}");
    assert!(fb > 1700, "before upgrade: {fb}");

    host.set_vfreq(a, MHz(1100));
    host.set_vfreq(b, MHz(1200));
    settle(&mut host, &mut ctl, 15);
    let fa = host.vcpu_freq_exact(a, VcpuId::new(0)).as_u32();
    let fb = host.vcpu_freq_exact(b, VcpuId::new(0)).as_u32();
    assert!(
        (1000..1350).contains(&fa),
        "upgraded VM should reach ≈1100+: {fa}"
    );
    assert!(
        (1100..1450).contains(&fb),
        "downgraded VM should fall to ≈1200+: {fb}"
    );
}

#[test]
fn controller_survives_vm_churn() {
    // VMs appearing mid-run must be picked up; the controller state for
    // departed VMs must not corrupt anything (SimHost has no deprovision,
    // so churn = staggered arrivals here).
    let mut host = quiet_host(1, 2, 2);
    let first = host.provision(&VmTemplate::new("first", 2, MHz(800)));
    host.attach_workload(first, Box::new(SteadyDemand::full()));
    let mut ctl = controller_for(&host);
    settle(&mut host, &mut ctl, 5);

    let second = host.provision(&VmTemplate::new("second", 2, MHz(1500)));
    host.attach_workload(second, Box::new(SteadyDemand::full()));
    settle(&mut host, &mut ctl, 20);

    let f = host.vcpu_freq_exact(second, VcpuId::new(0));
    assert!(
        f.as_u32() >= 1400,
        "late-arriving VM must still get its guarantee: {f}"
    );
}
