//! The controller driving the **filesystem backend** end-to-end: every
//! read and write crosses real files with the kernel formats, against a
//! fixture tree that a test "hypervisor" animates between iterations.

use vfc::cgroupfs::fixture::FixtureTree;
use vfc::cgroupfs::HostBackend;
use vfc::controller::{Controller, ControllerConfig};
use vfc::simcore::{MHz, Micros};

/// Advance the fixture by one emulated second: each named VM's vCPUs try
/// to consume `demand` µs, bounded by their current `cpu.max`.
fn consume(fx: &FixtureTree, vm: &str, vcpus: u32, demand: Micros) {
    for j in 0..vcpus {
        let cap = fx.vcpu_cpu_max(vm, j);
        let allowed = cap.budget_for(Micros::SEC);
        fx.add_vcpu_usage(vm, j, demand.min(allowed));
    }
}

#[test]
fn caps_are_written_to_disk_and_guarantees_converge() {
    // Tight node: 2 CPUs = 4800 MHz for 2×500 + 2×1800 = 4600 MHz of
    // guarantees, so the caps actually bind (on a slack node the
    // controller correctly writes `max` instead).
    let fx = FixtureTree::builder()
        .cpus(2, MHz(2400))
        .vm("small0", 2, &[101, 102])
        .vm("large0", 2, &[201, 202])
        .build();
    let mut backend = fx.backend();
    backend.set_vfreq("small0", MHz(500));
    backend.set_vfreq("large0", MHz(1800));

    let mut ctl = Controller::new(ControllerConfig::paper_defaults(), backend.topology());

    for _ in 0..15 {
        consume(&fx, "small0", 2, Micros::SEC);
        consume(&fx, "large0", 2, Micros::SEC);
        ctl.iterate(&mut backend).expect("fs backend");
    }

    // The caps on disk encode ≈ the guarantees + any market burst; the
    // large VM's quota must be ≥ its guarantee (75 000 µs per 100 ms).
    let large_cap = fx.vcpu_cpu_max("large0", 0);
    let large_quota = large_cap.quota.expect("large is capped");
    assert!(
        large_quota >= Micros(74_000),
        "large quota {large_quota} below its guarantee"
    );

    // And consumption converged to the guarantee ratio: with both VMs
    // saturating on 2 CPUs (4800 MHz) and 4600 MHz guaranteed, everyone
    // gets at least their base.
    let report = ctl.iterate(&mut backend).expect("fs backend");
    for v in &report.vcpus {
        assert!(
            v.alloc >= v.guaranteed.min(v.estimate),
            "{}: alloc {} below min(guarantee {}, estimate {})",
            v.vm_name,
            v.alloc,
            v.guaranteed,
            v.estimate
        );
    }
}

#[test]
fn fs_backend_sees_new_vms_between_iterations() {
    let fx = FixtureTree::builder()
        .cpus(2, MHz(2400))
        .vm("only", 1, &[11])
        .build();
    let mut backend = fx.backend();
    backend.set_vfreq("only", MHz(1000));
    let mut ctl = Controller::new(ControllerConfig::paper_defaults(), backend.topology());
    consume(&fx, "only", 1, Micros::SEC);
    let r = ctl.iterate(&mut backend).expect("fs backend");
    assert_eq!(r.vcpus.len(), 1);

    // A "new VM" appears on disk (as if libvirt had provisioned it).
    let fx2 = FixtureTree::builder().cpus(1, MHz(2400)).build();
    drop(fx2); // unrelated tree; the real addition:
    std::fs::create_dir_all(
        fx.cgroup_root()
            .join("machine.slice")
            .join("machine-qemu\\x2d9\\x2dnewbie.scope/libvirt/vcpu0"),
    )
    .unwrap();
    let vdir = fx
        .cgroup_root()
        .join("machine.slice")
        .join("machine-qemu\\x2d9\\x2dnewbie.scope/libvirt/vcpu0");
    std::fs::write(vdir.join("cpu.max"), "max 100000\n").unwrap();
    std::fs::write(
        vdir.join("cpu.stat"),
        "usage_usec 0\nuser_usec 0\nsystem_usec 0\nnr_periods 0\nnr_throttled 0\nthrottled_usec 0\n",
    )
    .unwrap();
    std::fs::write(vdir.join("cgroup.threads"), "5555\n").unwrap();
    fx.set_thread_cpu(vfc::simcore::Tid::new(5555), vfc::simcore::CpuId::new(0));

    let r = ctl.iterate(&mut backend).expect("fs backend");
    assert_eq!(r.vcpus.len(), 2, "new scope must be discovered");
    assert!(r.vcpus.iter().any(|v| v.vm_name == "newbie"));
}

#[test]
fn vm_without_declared_vfreq_is_best_effort() {
    let fx = FixtureTree::builder()
        .cpus(2, MHz(2400))
        .vm("anon", 1, &[31])
        .build();
    let mut backend = fx.backend();
    // No set_vfreq: the controller treats it as zero-guarantee.
    let mut ctl = Controller::new(ControllerConfig::paper_defaults(), backend.topology());
    for _ in 0..5 {
        consume(&fx, "anon", 1, Micros::SEC);
        let r = ctl.iterate(&mut backend).expect("fs backend");
        let v = &r.vcpus[0];
        assert_eq!(v.guaranteed, Micros::ZERO);
        assert!(v.vfreq.is_none());
    }
    // It still receives cycles (stage 5 gives away the whole idle node).
    let r = ctl.iterate(&mut backend).expect("fs backend");
    assert!(r.vcpus[0].alloc > Micros::ZERO);
}

#[test]
fn topology_read_from_disk() {
    let fx = FixtureTree::builder().cpus(7, MHz(2100)).build();
    let backend = fx.backend();
    let topo = backend.topology();
    assert_eq!(topo.nr_cpus, 7);
    assert_eq!(topo.max_mhz, MHz(2100));
}

#[test]
fn vm_teardown_mid_run_is_survivable() {
    // A VM's whole scope vanishing between iterations (KVM shutdown) must
    // simply drop it from the next discovery — no error, no stale state.
    let fx = FixtureTree::builder()
        .cpus(2, MHz(2400))
        .vm("stays", 1, &[11])
        .vm("goes", 1, &[21])
        .build();
    let mut backend = fx.backend();
    backend.set_vfreq("stays", MHz(500));
    backend.set_vfreq("goes", MHz(500));
    let mut ctl = Controller::new(ControllerConfig::paper_defaults(), backend.topology());
    consume(&fx, "stays", 1, Micros::SEC);
    consume(&fx, "goes", 1, Micros::SEC);
    let r = ctl.iterate(&mut backend).expect("both alive");
    assert_eq!(r.vcpus.len(), 2);

    // Tear the second VM down on disk.
    let scope = fx
        .cgroup_root()
        .join("machine.slice")
        .join("machine-qemu\\x2d2\\x2dgoes.scope");
    std::fs::remove_dir_all(&scope).unwrap();

    consume(&fx, "stays", 1, Micros::SEC);
    let r = ctl.iterate(&mut backend).expect("survivor still works");
    assert_eq!(r.vcpus.len(), 1);
    assert_eq!(r.vcpus[0].vm_name, "stays");
}

#[test]
fn torn_interface_file_errors_cleanly_and_recovers() {
    // Only the cpu.stat file disappears (a mid-teardown race): the VM is
    // treated as vanished for the iteration — no panic, no Err — and once
    // the file is back the controller picks it up again.
    let fx = FixtureTree::builder()
        .cpus(1, MHz(2400))
        .vm("racy", 1, &[31])
        .build();
    let mut backend = fx.backend();
    backend.set_vfreq("racy", MHz(500));
    let mut ctl = Controller::new(ControllerConfig::paper_defaults(), backend.topology());
    consume(&fx, "racy", 1, Micros::SEC);
    let r = ctl.iterate(&mut backend).expect("healthy");
    let vm = r.vcpus[0].addr.vm;

    let stat = fx
        .cgroup_root()
        .join("machine.slice")
        .join("machine-qemu\\x2d1\\x2dracy.scope/libvirt/vcpu0/cpu.stat");
    let content = std::fs::read_to_string(&stat).unwrap();
    std::fs::remove_file(&stat).unwrap();
    let r = ctl.iterate(&mut backend).expect("degrades, not aborts");
    assert_eq!(r.health.vanished_vms, vec![vm]);
    assert!(r.health.degraded);
    assert!(r.vcpus.is_empty(), "no rows for the vanished VM");

    std::fs::write(&stat, content).unwrap();
    consume(&fx, "racy", 1, Micros::SEC);
    let r = ctl.iterate(&mut backend).expect("recovered");
    assert_eq!(r.vcpus.len(), 1);
    assert!(!r.health.degraded, "{:?}", r.health);
}

#[test]
fn throttle_aware_controller_reacts_over_the_fs_backend() {
    // End-to-end: a vCPU whose on-disk throttled_usec grows gets its cap
    // raised even though its consumption is pinned at the old cap.
    let fx = FixtureTree::builder()
        .cpus(2, MHz(2400))
        .vm("bursty", 1, &[41])
        .build();
    let mut backend = fx.backend();
    backend.set_vfreq("bursty", MHz(1200));
    let mut ctl = Controller::new(
        vfc::controller::ControllerConfig::throttle_aware(),
        backend.topology(),
    );
    // Settle at idle: cap decays to the floor.
    for _ in 0..4 {
        ctl.iterate(&mut backend).expect("fs backend");
    }
    let floor = fx.vcpu_cpu_max("bursty", 0);
    assert_eq!(floor.quota, Some(Micros(1_000)));

    // Burst: consumption clipped at the cap, throttled time huge.
    let allowed = floor.budget_for(Micros::SEC);
    fx.add_vcpu_usage("bursty", 0, allowed);
    fx.add_vcpu_throttled("bursty", 0, Micros(900_000));
    ctl.iterate(&mut backend).expect("fs backend");
    let after = fx.vcpu_cpu_max("bursty", 0);
    let quota = after.quota.expect("still capped");
    assert!(
        quota >= Micros(50_000),
        "throttle signal should jump the cap to the guarantee, got {quota}"
    );
}

#[test]
fn controller_works_identically_on_cgroup_v1() {
    // §III.B: "the version is not important as our controller works on
    // both". Same scenario as the v2 convergence test, against a legacy
    // cpu,cpuacct hierarchy.
    let fx = FixtureTree::builder()
        .cpus(2, MHz(2400))
        .vm("small0", 2, &[101, 102])
        .vm("large0", 2, &[201, 202])
        .v1()
        .build();
    let mut backend = fx.backend();
    assert_eq!(
        backend.version(),
        vfc::cgroupfs::fs::CgroupVersion::V1,
        "fixture must be detected as v1"
    );
    backend.set_vfreq("small0", MHz(500));
    backend.set_vfreq("large0", MHz(1800));

    let mut ctl = Controller::new(ControllerConfig::paper_defaults(), backend.topology());
    for _ in 0..15 {
        consume(&fx, "small0", 2, Micros::SEC);
        consume(&fx, "large0", 2, Micros::SEC);
        ctl.iterate(&mut backend).expect("v1 backend");
    }

    let large_cap = fx.vcpu_cpu_max("large0", 0);
    let quota = large_cap.quota.expect("large is capped on the tight node");
    assert!(
        quota >= Micros(74_000),
        "large quota {quota} below its 1800 MHz guarantee"
    );
    let small_cap = fx.vcpu_cpu_max("small0", 0);
    let quota = small_cap.quota.expect("small is capped");
    assert!(
        (19_000..=30_000).contains(&quota.as_u64()),
        "small quota {quota} should encode ≈500 MHz (≈20 833 µs/100 ms)"
    );
}
