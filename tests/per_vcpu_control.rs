//! Per-vCPU capping granularity: the controller manages each vCPU's
//! cgroup independently (§III.B operates on `c_{i,j,t}`, not per VM), so
//! a VM whose vCPUs demand *differently* — a map-reduce job in its reduce
//! phase — must see only its hot vCPU kept at a high capping while the
//! idle mappers' guaranteed cycles return to the market for neighbours.

use vfc::controller::ControlMode;
use vfc::cpusched::dvfs::{Governor, GovernorKind};
use vfc::cpusched::engine::Engine;
use vfc::prelude::*;
use vfc::simcore::{Cycles, Micros, VcpuAddr};
use vfc::vmm::workload::MapReduce;

#[test]
fn reduce_phase_frees_mapper_cycles_for_neighbours() {
    // 2 threads; the MR VM (4 vCPUs @ 600 MHz = 2400 guaranteed) plus a
    // saturating neighbour (1 vCPU @ 1200). Total guarantees 3600 of
    // 4800 MHz.
    let spec = NodeSpec::custom("mr", 1, 2, 1, MHz(2400));
    let gov =
        Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, 1).with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, 17);
    let mut host = SimHost::new(spec, 17).with_engine(engine);

    let mr = host.provision(&VmTemplate::new("mr", 4, MHz(600)));
    let neighbour = host.provision(&VmTemplate::new("nb", 1, MHz(1200)));
    // One long round: a large map phase, then a long reduce on vCPU 0.
    host.attach_workload(
        mr,
        Box::new(MapReduce::new(Micros::ZERO, 1, Cycles(60_000_000_000))),
    );
    host.attach_workload(neighbour, Box::new(SteadyDemand::full()));

    let mut ctl = Controller::new(
        ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
        host.topology_info(),
    );

    // Run until the reduce phase is under way and the estimator settled,
    // then sample.
    let mut sampled = None;
    for _ in 0..200 {
        host.advance_period();
        let report = ctl.iterate(&mut host).expect("sim backend");
        // Detect the reduce phase: mapper vCPU demand collapsed.
        let mapper_used = report
            .vcpu(VcpuAddr::new(mr, VcpuId::new(1)))
            .map(|v| v.used)
            .unwrap_or(Micros::ZERO);
        let reducer_used = report
            .vcpu(VcpuAddr::new(mr, VcpuId::new(0)))
            .map(|v| v.used)
            .unwrap_or(Micros::ZERO);
        if reducer_used > Micros(400_000) && mapper_used < Micros(100_000) {
            // Give the estimator time to converge, then sample (the
            // reduce lasts ≈12 s at full speed; stay well inside it).
            for _ in 0..8 {
                host.advance_period();
                sampled = Some(ctl.iterate(&mut host).expect("sim backend"));
            }
            break;
        }
        if host.workload_done(mr) {
            panic!("reduce phase never observed before completion");
        }
    }
    let report = sampled.expect("reduce phase reached");

    // Per-vCPU differentiation inside the same VM:
    let alloc = |j: u32| {
        report
            .vcpu(VcpuAddr::new(mr, VcpuId::new(j)))
            .expect("vcpu reported")
            .alloc
    };
    let reducer = alloc(0);
    for j in 1..4 {
        let mapper = alloc(j);
        assert!(
            reducer.as_u64() >= 4 * mapper.as_u64(),
            "reducer {reducer} should dwarf idle mapper {mapper} (vcpu{j})"
        );
    }
    // The reducer can exceed its own per-vCPU guarantee (250 000 µs)
    // using cycles the idle mappers returned to the market.
    assert!(
        reducer > Micros(300_000),
        "reducer should burst beyond its 600 MHz share: {reducer}"
    );
    // And the neighbour feasts on the rest.
    let nb_freq = host.vcpu_freq_exact(neighbour, VcpuId::new(0));
    assert!(
        nb_freq.as_u32() > 1400,
        "neighbour should exceed its 1200 MHz guarantee: {nb_freq}"
    );
}
