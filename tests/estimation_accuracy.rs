//! §III.B.1's monitoring claim, quantified: reading a vCPU thread's
//! location only **once per second** still yields an accurate virtual
//! frequency estimate, because (i) busy threads rarely migrate and
//! (ii) loaded cores converge to the same frequency.
//!
//! We compare the paper's estimate (`û = share × f(last_core)`) against
//! the simulator's ground truth (placement-weighted delivered cycles) for
//! several governor/noise settings.

use vfc::controller::ControlMode;
use vfc::cpusched::dvfs::{Governor, GovernorKind};
use vfc::cpusched::engine::Engine;
use vfc::prelude::*;
use vfc::simcore::Micros;

fn host_with(kind: GovernorKind, noise: f64, seed: u64) -> SimHost {
    let spec = NodeSpec::chetemi();
    let gov = Governor::new(kind, spec.min_mhz, spec.max_mhz, seed).with_noise_std(noise);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, seed);
    SimHost::new(spec, seed).with_engine(engine)
}

/// Populate with the Table II mix, all saturating, run `periods` with the
/// controller, return mean absolute relative estimation error.
fn mean_estimation_error(kind: GovernorKind, noise: f64) -> f64 {
    let mut host = host_with(kind, noise, 11);
    let mut vms = Vec::new();
    for _ in 0..20 {
        vms.push(host.provision(&VmTemplate::small()));
    }
    for _ in 0..10 {
        vms.push(host.provision(&VmTemplate::large()));
    }
    for &vm in &vms {
        host.attach_workload(vm, Box::new(SteadyDemand::full()));
    }
    let mut ctl = Controller::new(
        ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
        host.topology_info(),
    );
    for _ in 0..20 {
        host.advance_period();
        ctl.iterate(&mut host).expect("sim backend");
    }

    let mut err_sum = 0.0;
    let mut n = 0.0;
    for &vm in &vms {
        for j in 0..host.instance(vm).nr_vcpus() {
            let exact = host.vcpu_freq_exact(vm, VcpuId::new(j)).as_f64();
            let est = host.vcpu_freq_estimate(vm, VcpuId::new(j)).as_f64();
            if exact > 0.0 {
                err_sum += (est - exact).abs() / exact;
                n += 1.0;
            }
        }
    }
    err_sum / n
}

#[test]
fn estimate_is_exact_under_uniform_frequency() {
    // Performance governor, no noise: the location of a vCPU cannot
    // matter, so the paper's method is exact (±1 MHz rounding).
    let err = mean_estimation_error(GovernorKind::Performance, 0.0);
    assert!(err < 0.01, "error {err} should be ≈0");
}

#[test]
fn estimate_stays_accurate_with_schedutil_and_noise() {
    // The realistic setting of the paper's testbed: utilization-driven
    // frequencies plus reading noise. On a loaded node all cores still
    // run near max, so once-per-second sampling stays within a few
    // percent — this is the claim of §III.B.1.
    let err = mean_estimation_error(GovernorKind::Schedutil, 10.0);
    assert!(err < 0.05, "error {err} exceeds 5 %");
}

#[test]
fn estimate_degrades_gracefully_under_powersave() {
    // With every core pinned at min frequency the estimate is again exact
    // (uniform frequencies) — the method only struggles when frequencies
    // are *heterogeneous*, which a loaded cloud node avoids.
    let err = mean_estimation_error(GovernorKind::Powersave, 0.0);
    assert!(err < 0.01, "error {err} should be ≈0 at uniform min freq");
}

#[test]
fn lightly_loaded_node_keeps_errors_bounded() {
    // Heterogeneous core frequencies (some cores idle at min, some busy
    // at max) are the estimate's worst case; check the error stays
    // bounded rather than exploding.
    let mut host = host_with(GovernorKind::Schedutil, 5.0, 23);
    let vm = host.provision(&VmTemplate::new("loner", 2, MHz(1200)));
    host.attach_workload(vm, Box::new(SteadyDemand::new(0.7)));
    let mut ctl = Controller::new(ControllerConfig::paper_defaults(), host.topology_info());
    for _ in 0..15 {
        host.advance_period();
        ctl.iterate(&mut host).expect("sim backend");
    }
    for j in 0..2 {
        let exact = host.vcpu_freq_exact(vm, VcpuId::new(j)).as_f64();
        let est = host.vcpu_freq_estimate(vm, VcpuId::new(j)).as_f64();
        let rel = (est - exact).abs() / exact.max(1.0);
        assert!(
            rel < 0.30,
            "worst-case estimation error too large: est {est} vs exact {exact}"
        );
    }
}
