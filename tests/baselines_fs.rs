//! The baseline policies over the **filesystem backend**: every policy
//! speaks the same `HostBackend` language, so Burst-VM caps and CFS
//! weights land in real files exactly like the controller's quotas.

use vfc::baselines::{BurstVmConfig, BurstVmPolicy, CfsSharesPolicy, HostPolicy, SharesConfig};
use vfc::cgroupfs::fixture::FixtureTree;
use vfc::cgroupfs::HostBackend;
use vfc::simcore::{MHz, Micros};

#[test]
fn burst_vm_policy_writes_real_caps() {
    let fx = FixtureTree::builder()
        .cpus(2, MHz(2400))
        .vm("burner", 1, &[11])
        .build();
    let mut backend = fx.backend();
    let mut policy = BurstVmPolicy::new(BurstVmConfig {
        launch_credit: 1_500_000, // 1.5 s of full burn
        ..BurstVmConfig::default()
    });

    // First sight establishes the baseline.
    policy.iterate(&mut backend).expect("fs backend");
    assert!(fx.vcpu_cpu_max("burner", 0).is_unlimited());

    // Burn through the credits at full speed: 1 s of usage per period.
    for _ in 0..3 {
        fx.add_vcpu_usage("burner", 0, Micros::SEC);
        policy.iterate(&mut backend).expect("fs backend");
    }
    // Exhausted: the 10 % baseline cap is on disk.
    let cap = fx.vcpu_cpu_max("burner", 0);
    assert_eq!(cap.quota, Some(Micros(10_000)), "10 % of a 100 ms period");

    // Idle long enough to accrue credits again: the cap lifts.
    for _ in 0..30 {
        policy.iterate(&mut backend).expect("fs backend");
    }
    assert!(
        fx.vcpu_cpu_max("burner", 0).is_unlimited(),
        "credits re-accrued at the baseline rate must uncap the VM"
    );
}

#[test]
fn shares_policy_writes_real_weights_on_v2_and_v1() {
    for v1 in [false, true] {
        let builder = FixtureTree::builder()
            .cpus(2, MHz(2400))
            .vm("premium", 2, &[21, 22]);
        let fx = if v1 {
            builder.v1().build()
        } else {
            builder.build()
        };
        let mut backend = fx.backend();
        backend.set_vfreq("premium", MHz(1800));
        let mut policy = CfsSharesPolicy::new(SharesConfig::default());
        policy.iterate(&mut backend).expect("fs backend");
        // 2 vCPUs × 1800 MHz → weight 3600 (v1 stores shares; the
        // backend converts back on read).
        let vm = backend.vms()[0].vm;
        let w = backend.vm_weight(vm).expect("weight readable");
        assert!(
            (3590..=3610).contains(&w),
            "v1={v1}: weight {w} should be ≈3600"
        );
    }
}
