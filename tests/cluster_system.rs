//! Cluster-level system tests through the facade: the full §IV.C-style
//! pipeline (admission → per-node control → accounting) at a size debug
//! builds handle comfortably.

use vfc::cluster::{ClusterManager, Strategy};
use vfc::cpusched::topology::NodeSpec;
use vfc::prelude::*;
use vfc::scenarios::cluster_eval::{run_strategy, ClusterScenario};

#[test]
fn frequency_cluster_consolidates_and_keeps_premiums_whole() {
    let scenario = ClusterScenario {
        smalls: 20,
        mediums: 6,
        larges: 8,
        periods: 30,
        seed: 5,
    };
    let nodes = vec![NodeSpec::chetemi(); 4];
    let report = run_strategy(scenario, nodes, Strategy::FrequencyControl);
    assert_eq!(report.deployed, 34);
    assert_eq!(report.rejected, 0);
    // 20·1000 + 6·4800 + 8·7200 = 106 400 MHz on 4×96 000: BestFit packs
    // into 2 nodes' worth of capacity… just over: 2 nodes hold 192 000,
    // so exactly 2 are enough.
    assert!(
        report.nodes_active <= 2,
        "Eq. 7 should consolidate onto 2 nodes, used {}",
        report.nodes_active
    );
    assert_eq!(report.migrations, 0);
    // The saturating premium class is kept whole.
    let large = report
        .slo_by_class
        .iter()
        .find(|(c, _)| c == "large")
        .map(|(_, s)| s.violation_rate())
        .unwrap_or(1.0);
    assert!(large < 0.1, "large violations {large}");
}

#[test]
fn mixed_hardware_cluster_accounts_per_family() {
    // chetemi + chiclet mix: Eq. 2 uses each node's own F_MAX, so a VM's
    // guarantee must hold wherever it lands.
    let mut manager = ClusterManager::new(
        vec![NodeSpec::chetemi(), NodeSpec::chiclet()],
        Strategy::FrequencyControl,
        11,
    );
    let mut ids = Vec::new();
    for _ in 0..20 {
        let id = manager
            .deploy(&VmTemplate::large(), Box::new(SteadyDemand::full()))
            .expect("20 larges fit 96k+153.6k MHz");
        ids.push(id);
    }
    for _ in 0..20 {
        manager.run_period();
    }
    for id in ids {
        let f = manager.vm_freq(id).expect("deployed VM has a frequency");
        assert!(f >= 1700.0, "{id} got {f} MHz, promised 1800");
    }
    let report = manager.report();
    assert_eq!(report.nodes_active, 2);
    assert!(report.energy_wh > 0.0);
}

#[test]
fn rejections_are_counted_not_fatal() {
    let mut manager = ClusterManager::new(
        vec![NodeSpec::custom("nano", 1, 1, 1, MHz(2400))],
        Strategy::FrequencyControl,
        1,
    );
    // 2400 MHz capacity: one 1800 MHz 1-vCPU VM fits, the second does not.
    assert!(manager
        .deploy(
            &VmTemplate::new("big", 1, MHz(1800)),
            Box::new(SteadyDemand::full())
        )
        .is_some());
    assert!(manager
        .deploy(
            &VmTemplate::new("big", 1, MHz(1800)),
            Box::new(SteadyDemand::full())
        )
        .is_none());
    manager.run_period();
    let report = manager.report();
    assert_eq!((report.deployed, report.rejected), (1, 1));
}
