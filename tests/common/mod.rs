//! Shared helpers for the daemon-lifecycle integration tests.
//!
//! The production daemon loop ([`vfc::controller::daemon::run_with_shutdown`])
//! owns its thread and never touches simulated time — on a real host the
//! world advances by itself between iterations. [`TickingHost`] recreates
//! that for [`SimHost`]: every `vms()` enumeration (exactly one per
//! controller iteration, plus one during boot reconciliation) advances the
//! simulation by one period first, so the daemon observes a host that
//! "ran" while it slept. Watched vCPUs get their ground-truth frequency
//! recorded after every advance, which is what the restart tests count
//! violated periods from.

#![allow(dead_code)]

use std::cell::{Ref, RefCell};
use vfc::cgroupfs::backend::{HostBackend, TopologyInfo, VmCgroupInfo};
use vfc::cgroupfs::{CpuMax, Result};
use vfc::simcore::{CpuId, MHz, Micros, Tid, VcpuId, VmId};
use vfc::vmm::SimHost;

/// A [`HostBackend`] decorator over [`SimHost`] that advances one
/// simulated period per `vms()` call and records watched vCPUs' exact
/// frequencies. Interior mutability is required because the monitoring
/// half of the trait takes `&self`.
pub struct TickingHost {
    inner: RefCell<SimHost>,
    watched: Vec<(VmId, VcpuId)>,
    freqs: RefCell<Vec<(VmId, VcpuId, MHz)>>,
}

impl TickingHost {
    /// Wrap a simulated host.
    pub fn new(host: SimHost) -> Self {
        TickingHost {
            inner: RefCell::new(host),
            watched: Vec::new(),
            freqs: RefCell::new(Vec::new()),
        }
    }

    /// Record this vCPU's exact frequency after every advanced period.
    pub fn watch(mut self, vm: VmId, vcpu: VcpuId) -> Self {
        self.watched.push((vm, vcpu));
        self
    }

    /// Mutable access to the wrapped host (between daemon runs).
    pub fn host_mut(&mut self) -> &mut SimHost {
        self.inner.get_mut()
    }

    /// Shared access to the wrapped host.
    pub fn host(&self) -> Ref<'_, SimHost> {
        self.inner.borrow()
    }

    /// Frequencies recorded for one watched vCPU, in period order.
    pub fn freqs_of(&self, vm: VmId, vcpu: VcpuId) -> Vec<MHz> {
        self.freqs
            .borrow()
            .iter()
            .filter(|(v, j, _)| *v == vm && *j == vcpu)
            .map(|(_, _, f)| *f)
            .collect()
    }

    /// Drop everything recorded so far (e.g. before the run under test).
    pub fn clear_freqs(&mut self) {
        self.freqs.get_mut().clear();
    }
}

impl HostBackend for TickingHost {
    fn topology(&self) -> TopologyInfo {
        self.inner.borrow().topology()
    }

    fn vms(&self) -> Vec<VmCgroupInfo> {
        let mut host = self.inner.borrow_mut();
        host.advance_period();
        let mut freqs = self.freqs.borrow_mut();
        for &(vm, vcpu) in &self.watched {
            freqs.push((vm, vcpu, host.vcpu_freq_exact(vm, vcpu)));
        }
        host.vms()
    }

    fn vcpu_usage(&self, vm: VmId, vcpu: VcpuId) -> Result<Micros> {
        self.inner.borrow().vcpu_usage(vm, vcpu)
    }

    fn vcpu_throttled(&self, vm: VmId, vcpu: VcpuId) -> Result<Micros> {
        self.inner.borrow().vcpu_throttled(vm, vcpu)
    }

    fn vcpu_threads(&self, vm: VmId, vcpu: VcpuId) -> Result<Vec<Tid>> {
        self.inner.borrow().vcpu_threads(vm, vcpu)
    }

    fn thread_last_cpu(&self, tid: Tid) -> Result<CpuId> {
        self.inner.borrow().thread_last_cpu(tid)
    }

    fn cpu_cur_freq(&self, cpu: CpuId) -> Result<MHz> {
        self.inner.borrow().cpu_cur_freq(cpu)
    }

    fn set_vcpu_max(&mut self, vm: VmId, vcpu: VcpuId, max: CpuMax) -> Result<()> {
        self.inner.get_mut().set_vcpu_max(vm, vcpu, max)
    }

    fn vcpu_max(&self, vm: VmId, vcpu: VcpuId) -> Result<CpuMax> {
        self.inner.borrow().vcpu_max(vm, vcpu)
    }

    fn set_vm_weight(&mut self, vm: VmId, weight: u32) -> Result<()> {
        self.inner.get_mut().set_vm_weight(vm, weight)
    }

    fn vm_weight(&self, vm: VmId) -> Result<u32> {
        self.inner.borrow().vm_weight(vm)
    }
}
