//! System-level property tests: random-but-feasible VM populations and
//! demands, run end-to-end through host + controller, must uphold the
//! paper's invariants.

use proptest::prelude::*;
use vfc::controller::ControlMode;
use vfc::cpusched::dvfs::{Governor, GovernorKind};
use vfc::cpusched::engine::Engine;
use vfc::prelude::*;
use vfc::simcore::Micros;

#[derive(Debug, Clone)]
struct VmPlan {
    vcpus: u32,
    vfreq_mhz: u32,
    demand: f64,
}

/// Random VM populations whose guarantees satisfy Eq. 7 on an 8-thread
/// 2.4 GHz node (capacity 19 200 MHz).
fn feasible_population() -> impl Strategy<Value = Vec<VmPlan>> {
    proptest::collection::vec(
        (1u32..=4, 200u32..=2400, 0.0f64..=1.0).prop_map(|(vcpus, vfreq, demand)| VmPlan {
            vcpus,
            vfreq_mhz: vfreq,
            demand,
        }),
        1..8,
    )
    .prop_map(|mut plans| {
        // Trim until Eq. 7 holds.
        while plans
            .iter()
            .map(|p| p.vcpus as u64 * p.vfreq_mhz as u64)
            .sum::<u64>()
            > 19_200
        {
            plans.pop();
        }
        plans
    })
    .prop_filter("at least one VM", |p| !p.is_empty())
}

fn run_population(plans: &[VmPlan], periods: u32) -> (SimHost, Controller, Vec<VmId>) {
    let spec = NodeSpec::custom("prop", 1, 4, 2, MHz(2400));
    let gov =
        Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, 1).with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, 77);
    let mut host = SimHost::new(spec, 77).with_engine(engine);
    let mut ids = Vec::new();
    for (i, p) in plans.iter().enumerate() {
        let vm = host.provision(&VmTemplate::new(
            &format!("p{i}"),
            p.vcpus,
            MHz(p.vfreq_mhz),
        ));
        host.attach_workload(vm, Box::new(SteadyDemand::new(p.demand)));
        ids.push(vm);
    }
    let mut ctl = Controller::new(
        ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
        host.topology_info(),
    );
    for _ in 0..periods {
        host.advance_period();
        ctl.iterate(&mut host).expect("sim backend");
    }
    (host, ctl, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn saturating_vms_meet_guarantees_and_capacity_holds(
        plans in feasible_population(),
    ) {
        let (mut host, mut ctl, ids) = run_population(&plans, 20);

        // One more iteration for a fresh report.
        host.advance_period();
        let report = ctl.iterate(&mut host).expect("sim backend");

        // Invariant 1: total allocation within C_MAX.
        let c_max = host.topology_info().c_max(Micros::SEC);
        prop_assert!(report.total_alloc() <= c_max);

        // Invariant 2: every *saturating* vCPU is at or above its
        // guaranteed frequency (±3 % for integer rounding).
        for (vm, plan) in ids.iter().zip(&plans) {
            if plan.demand > 0.99 {
                for j in 0..plan.vcpus {
                    let f = host.vcpu_freq_exact(*vm, VcpuId::new(j)).as_f64();
                    prop_assert!(
                        f >= plan.vfreq_mhz as f64 * 0.97 - 30.0,
                        "vm{} vcpu{}: {} < guarantee {}",
                        vm.as_u32(), j, f, plan.vfreq_mhz
                    );
                }
            }
        }

        // Invariant 3: credits are only held by VMs consuming below their
        // guarantee; fully-saturating VMs cannot accumulate unboundedly.
        for (vm, v) in report.credits.iter() {
            prop_assert!(*v < 40 * 8_000_000, "vm{} hoards {v} credits", vm.as_u32());
        }
    }

    #[test]
    fn partial_demand_is_never_inflated(
        demand in 0.05f64..0.5,
    ) {
        // A vCPU demanding d of a thread must consume ≈ d — the
        // controller must not allocate cycles the guest will not use in
        // a way that shows up as consumption.
        let plans = vec![VmPlan { vcpus: 2, vfreq_mhz: 1200, demand }];
        let (host, _ctl, ids) = run_population(&plans, 15);
        let f = host.vcpu_freq_exact(ids[0], VcpuId::new(0)).as_f64();
        let expected = demand * 2400.0;
        prop_assert!(
            (f - expected).abs() / expected < 0.15,
            "demand {demand}: consumed {f} MHz, expected ≈{expected}"
        );
    }
}
