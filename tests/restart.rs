//! Crash-safe warm restart, end to end (the `tests/degradation.rs`
//! family, aimed at the journal).
//!
//! Three layers of coverage:
//!
//! * **journal robustness** — proptests that `persist::Journal`
//!   round-trips arbitrary controller states through disk, and that
//!   truncated or bit-flipped journal files always degrade to a clean
//!   cold start (`LoadOutcome::Rejected`), never a panic and never a
//!   journal that skipped validation;
//! * **boot reconciliation** — against an on-disk cgroup fixture: a warm
//!   restart adopts the survivor's `cpu.max` untouched and uncaps the
//!   orphan cap of a VM the journal does not know, while a corrupt
//!   journal sweeps every limited cap (cold start);
//! * **the kill-and-restart round trip** — a daemon is killed mid-burst
//!   via the shutdown handle (warm handoff), and the restarted daemon
//!   either loads the journal (warm) or finds it corrupted (cold). Both
//!   worlds replay the identical simulated history; the burst VM's
//!   violated-period count after the warm restart must be strictly lower
//!   than after the cold one, because only the journal carries the
//!   credit wallet that buys its burst service back (Eq. 4 → Eq. 6).

mod common;

use common::TickingHost;
use proptest::prelude::*;
use vfc::controller::daemon::{run_with_shutdown, DaemonConfig, ShutdownHandle};
use vfc::controller::persist::{
    unix_now_ms, Journal, LoadOutcome, VcpuState, VmState, DEFAULT_MAX_AGE, JOURNAL_VERSION,
};
use vfc::controller::{ControlMode, ControllerConfig};
use vfc::cpusched::dvfs::{Governor, GovernorKind};
use vfc::cpusched::engine::Engine;
use vfc::prelude::*;
use vfc::vmm::workload::TraceWorkload;

/// Control period of the daemon under test. Small, because the daemon
/// loop sleeps `period − spent` in real time; the simulated window is
/// shrunk to match (10 ticks × 2 ms).
const PERIOD: Micros = Micros(20_000);

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vfc-restart-{tag}-{}", std::process::id()))
}

fn daemon_cfg(journal: &std::path::Path, iterations: Option<u64>) -> DaemonConfig {
    let mut controller = ControllerConfig::paper_defaults().with_mode(ControlMode::Full);
    controller.period = PERIOD;
    controller.window = Micros(2_000);
    DaemonConfig {
        controller,
        journal_path: Some(journal.to_path_buf()),
        iterations,
        ..DaemonConfig::default()
    }
}

// ---------------------------------------------------------------------
// Journal robustness (proptest)
// ---------------------------------------------------------------------

fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, 1..10).prop_map(|v| {
        v.into_iter()
            .map(|c| char::from(b'a' + c))
            .collect::<String>()
    })
}

fn arb_vcpu() -> impl Strategy<Value = VcpuState> {
    (
        0u32..8,
        proptest::collection::vec(0u64..2_000_000, 0..12),
        proptest::option::of(0u64..2_000_000),
        proptest::option::of(0u64..1u64 << 40),
        proptest::option::of(0u64..1u64 << 40),
    )
        .prop_map(|(vcpu, history, prev, usage, throttled)| VcpuState {
            vcpu,
            history,
            prev_alloc: prev.map(Micros),
            usage_baseline: usage.map(Micros),
            throttled_baseline: throttled.map(Micros),
        })
}

fn arb_journal() -> impl Strategy<Value = Journal> {
    (
        1u64..10_000_000,
        0u64..1u64 << 32,
        proptest::collection::vec(
            (
                arb_name(),
                0u64..1u64 << 40,
                proptest::collection::vec(arb_vcpu(), 0..4),
            ),
            0..6,
        ),
    )
        .prop_map(|(period_us, iterations, vms)| Journal {
            version: JOURNAL_VERSION,
            period_us,
            iterations,
            saved_unix_ms: unix_now_ms(),
            vms: vms
                .into_iter()
                .map(|(name, credits, vcpus)| VmState {
                    name,
                    credits,
                    vcpus,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any exportable controller state survives the disk round trip
    /// bit-identically.
    #[test]
    fn journal_roundtrips_arbitrary_states(journal in arb_journal()) {
        let path = tmp("roundtrip");
        journal.save(&path).unwrap();
        match Journal::load(&path, Micros(journal.period_us), DEFAULT_MAX_AGE) {
            LoadOutcome::Fresh(loaded) => prop_assert_eq!(loaded, journal),
            other => prop_assert!(false, "expected Fresh, got {:?}", other),
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A crash mid-`write(2)` (torn tail, partial page) leaves a strict
    /// prefix on disk. Every such prefix must be rejected — cold start —
    /// and must never panic the loader.
    #[test]
    fn truncated_journals_always_cold_start(journal in arb_journal(), cut in 0.0f64..1.0) {
        let path = tmp("truncate");
        journal.save(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap().trim_end().to_owned();
        let keep = 1 + ((body.len() - 2) as f64 * cut) as usize; // strict prefix
        std::fs::write(&path, &body[..keep]).unwrap();
        let outcome = Journal::load(&path, Micros(journal.period_us), DEFAULT_MAX_AGE);
        prop_assert!(
            matches!(outcome, LoadOutcome::Rejected(ref r) if r.contains("corrupt")),
            "truncation to {} of {} bytes must reject, got {:?}",
            keep, body.len(), outcome
        );
        let _ = std::fs::remove_file(&path);
    }

    /// A flipped bit (bad sector, cosmic ray) must never panic the
    /// loader, and anything it still accepts must have passed the full
    /// validation gauntlet — right schema version, right period.
    #[test]
    fn bitflipped_journals_never_panic_or_skip_validation(
        journal in arb_journal(),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let path = tmp("bitflip");
        journal.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        match Journal::load(&path, Micros(journal.period_us), DEFAULT_MAX_AGE) {
            LoadOutcome::Rejected(_) => {}
            LoadOutcome::Fresh(j) => {
                // The flip landed somewhere harmless (whitespace, a digit
                // of a non-validated field): acceptance still implies the
                // validated invariants hold.
                prop_assert_eq!(j.version, JOURNAL_VERSION);
                prop_assert_eq!(j.period_us, journal.period_us);
            }
            LoadOutcome::Missing => prop_assert!(false, "file exists; cannot be Missing"),
        }
        let _ = std::fs::remove_file(&path);
    }
}

// ---------------------------------------------------------------------
// Boot reconciliation against live cgroup state
// ---------------------------------------------------------------------

use vfc::cgroupfs::fixture::FixtureTree;
use vfc::cgroupfs::CpuMax;

fn two_vm_fixture() -> FixtureTree {
    FixtureTree::builder()
        .cpus(2, MHz(2400))
        .vm("web", 1, &[11])
        .vm("stray", 1, &[22])
        .build()
}

#[test]
fn warm_reconcile_adopts_survivor_caps_and_clears_orphans() {
    let fx = two_vm_fixture();
    let mut backend = fx.backend();
    let vms = backend.vms();
    let id = |name: &str| vms.iter().find(|v| v.name == name).unwrap().vm;
    let cap = CpuMax::with_period(Micros(5_000), Micros(100_000));
    backend
        .set_vcpu_max(id("web"), VcpuId::new(0), cap)
        .unwrap();
    backend
        .set_vcpu_max(id("stray"), VcpuId::new(0), cap)
        .unwrap();

    // The predecessor's journal knows "web" but has never seen "stray".
    let journal = fx.root().join("reconcile.journal");
    let cfg = daemon_cfg(&journal, Some(0));
    Journal {
        version: JOURNAL_VERSION,
        period_us: cfg.controller.period.as_u64(),
        iterations: 12,
        saved_unix_ms: unix_now_ms(),
        vms: vec![VmState {
            name: "web".into(),
            credits: 77_000,
            vcpus: vec![VcpuState {
                vcpu: 0,
                history: vec![4_000; 5],
                prev_alloc: Some(Micros(6_000)),
                usage_baseline: Some(Micros::ZERO),
                throttled_baseline: None,
            }],
        }],
    }
    .save(&journal)
    .unwrap();

    // `iterations: Some(0)` runs boot reconciliation and exits before the
    // first control iteration — the reconciled caps are exactly what the
    // loop would start from.
    let done = run_with_shutdown(cfg, &mut backend, &ShutdownHandle::new()).unwrap();
    assert_eq!(done, 0);
    assert_eq!(
        fx.vcpu_cpu_max("web", 0),
        cap,
        "survivor's live cap must be adopted, not rewritten"
    );
    assert!(
        fx.vcpu_cpu_max("stray", 0).is_unlimited(),
        "cap of a VM unknown to the journal is an orphan and must be cleared"
    );
}

#[test]
fn corrupt_journal_cold_starts_and_sweeps_every_cap() {
    let fx = two_vm_fixture();
    let mut backend = fx.backend();
    let vms = backend.vms();
    let cap = CpuMax::with_period(Micros(5_000), Micros(100_000));
    for vm in &vms {
        backend.set_vcpu_max(vm.vm, VcpuId::new(0), cap).unwrap();
    }

    let journal = fx.root().join("corrupt.journal");
    std::fs::write(&journal, "{ definitely not a journal").unwrap();
    let done = run_with_shutdown(
        daemon_cfg(&journal, Some(0)),
        &mut backend,
        &ShutdownHandle::new(),
    )
    .unwrap();
    assert_eq!(done, 0);
    for name in ["web", "stray"] {
        assert!(
            fx.vcpu_cpu_max(name, 0).is_unlimited(),
            "{name}: cold start must sweep the predecessor's cap"
        );
    }
}

// ---------------------------------------------------------------------
// The kill-and-restart round trip: warm strictly beats cold
// ---------------------------------------------------------------------

const F_MAX: MHz = MHz(2400);
const GUARANTEE: MHz = MHz(600);
/// Periods the web VM idles before its burst (wallet accrual).
const IDLE_PERIODS: usize = 25;
/// Iterations of the pre-crash daemon run (idle phase + burst-in-flight).
const CRASH_AFTER: u64 = 30;
/// Iterations of the restarted daemon run (the measured recovery window).
const RECOVERY_ITERATIONS: u64 = 8;
/// A recovery period counts as violated when the burst VM is served
/// below this — far above the all-broke fair split (~1600 MHz) and far
/// below wallet-funded full service (~2400 MHz).
const VIOLATION_MHZ: u32 = 1900;

/// A noise-free 2-thread host (1 core × 2 threads at 2.4 GHz) running
/// three 1-vCPU VMs guaranteed 600 MHz each: `web` idles for
/// [`IDLE_PERIODS`] periods, then demands everything; both hogs saturate
/// from the start. ΣC_i = 0.75 periods, C_MAX = 2 periods — the spare
/// 1.25 periods is what the wallet competes for.
fn burst_host(seed: u64) -> (TickingHost, VmId) {
    let spec = NodeSpec::custom("restart", 1, 1, 2, F_MAX);
    let gov =
        Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, 1).with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(2_000), gov, seed);
    let mut host = SimHost::new(spec, seed).with_engine(engine);
    let web = host.provision(&VmTemplate::new("web", 1, GUARANTEE));
    let hog_a = host.provision(&VmTemplate::new("hog-a", 1, GUARANTEE));
    let hog_b = host.provision(&VmTemplate::new("hog-b", 1, GUARANTEE));
    // 10 engine ticks per period: idle through the accrual phase, then a
    // full-demand burst that is still in flight when the daemon dies.
    let mut trace = vec![0.0; IDLE_PERIODS * 10];
    trace.push(1.0); // TraceWorkload holds the last value forever
    host.attach_workload(web, Box::new(TraceWorkload::new(trace)));
    for hog in [hog_a, hog_b] {
        host.attach_workload(hog, Box::new(SteadyDemand::full()));
    }
    (TickingHost::new(host).watch(web, VcpuId::new(0)), web)
}

/// Run the pre-crash daemon: killed mid-burst through the shutdown
/// handle — a warm handoff that flushes the journal and leaves every cap
/// in force. Returns the web VM's recorded pre-crash frequencies.
fn run_until_crash(backend: &mut TickingHost, web: VmId, journal: &std::path::Path) -> Vec<MHz> {
    let handle = ShutdownHandle::new();
    handle.request_after_iterations(CRASH_AFTER);
    let done = run_with_shutdown(daemon_cfg(journal, None), backend, &handle)
        .expect("pre-crash run must exit warm");
    assert_eq!(done, CRASH_AFTER);
    backend.freqs_of(web, VcpuId::new(0))
}

/// Restart the daemon over the surviving host state and count the burst
/// VM's violated recovery periods.
fn violations_after_restart(
    mut backend: TickingHost,
    web: VmId,
    journal: &std::path::Path,
) -> usize {
    backend.clear_freqs();
    let done = run_with_shutdown(
        daemon_cfg(journal, Some(RECOVERY_ITERATIONS)),
        &mut backend,
        &ShutdownHandle::new(),
    )
    .expect("restarted run");
    assert_eq!(done, RECOVERY_ITERATIONS);
    let freqs = backend.freqs_of(web, VcpuId::new(0));
    // One period advanced by boot reconciliation + one per iteration.
    assert_eq!(freqs.len(), RECOVERY_ITERATIONS as usize + 1);
    freqs.iter().filter(|f| f.as_u32() < VIOLATION_MHZ).count()
}

#[test]
fn kill_and_restart_mid_burst_warm_strictly_beats_cold() {
    let seed = 0xB007;

    // Warm world: the journal survives the crash.
    let (mut backend, web) = burst_host(seed);
    let warm_journal = tmp("warm.journal");
    let _ = std::fs::remove_file(&warm_journal);
    let warm_precrash = run_until_crash(&mut backend, web, &warm_journal);

    // The journal must carry what the warm restart claims to restore:
    // the frugal VM's wallet, its history ring and its last allocation.
    let journal = match Journal::load(&warm_journal, PERIOD, DEFAULT_MAX_AGE) {
        LoadOutcome::Fresh(j) => j,
        other => panic!("crash journal must be loadable, got {other:?}"),
    };
    assert_eq!(journal.iterations, CRASH_AFTER);
    let state = |prefix: &str| {
        journal
            .vms
            .iter()
            .find(|v| v.name.starts_with(prefix))
            .unwrap_or_else(|| panic!("{prefix} missing from journal"))
    };
    let (web_state, hog_state) = (state("web"), state("hog"));
    assert!(
        web_state.credits > hog_state.credits,
        "the idle-then-bursting VM must out-save the saturating hog: {} vs {}",
        web_state.credits,
        hog_state.credits
    );
    assert!(!web_state.vcpus[0].history.is_empty());
    assert!(web_state.vcpus[0].prev_alloc.is_some());

    let warm_violations = violations_after_restart(backend, web, &warm_journal);

    // Cold world: identical seed, identical pre-crash history — but the
    // crash also took the journal with it (torn disk, new host, …).
    let (mut backend, web_cold) = burst_host(seed);
    let cold_journal = tmp("cold.journal");
    let _ = std::fs::remove_file(&cold_journal);
    let cold_precrash = run_until_crash(&mut backend, web_cold, &cold_journal);
    assert_eq!(
        warm_precrash, cold_precrash,
        "both worlds must replay the identical pre-crash history"
    );
    let body = std::fs::read_to_string(&cold_journal).unwrap();
    std::fs::write(&cold_journal, &body[..body.len() / 2]).unwrap();
    let cold_violations = violations_after_restart(backend, web_cold, &cold_journal);

    eprintln!(
        "recovery violations (of {} periods): warm {warm_violations}, cold {cold_violations}",
        RECOVERY_ITERATIONS + 1
    );
    assert!(
        warm_violations < cold_violations,
        "warm restart must strictly beat cold in violated recovery periods: \
         warm {warm_violations} vs cold {cold_violations} \
         (of {} measured)",
        RECOVERY_ITERATIONS + 1
    );

    let _ = std::fs::remove_file(&warm_journal);
    let _ = std::fs::remove_file(&cold_journal);
}
