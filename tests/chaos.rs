//! Chaos suite: random seeded fault plans against the full control loop.
//!
//! A `FaultInjectingBackend` wraps the simulated host and injects
//! transient read/write failures, stale and zero reads, and whole-VM
//! disappearances — confined to one victim VM so the other tenants'
//! samples stay trustworthy. Whatever the dice do, the loop must:
//!
//! * never panic and never return `Err` from `Controller::iterate`;
//! * never allocate more than `C_MAX` in total (Eq. 1);
//! * keep every *fault-free* saturating vCPU at or above its guaranteed
//!   cycles `C_i` (Eq. 2);
//! * converge back to undegraded health once the fault storm stops.

mod common;

use common::TickingHost;
use proptest::prelude::*;
use vfc::cgroupfs::{FaultInjectingBackend, FaultPlan};
use vfc::controller::daemon::{run_with_shutdown, DaemonConfig, ShutdownHandle};
use vfc::controller::persist::{Journal, LoadOutcome, DEFAULT_MAX_AGE};
use vfc::controller::ControlMode;
use vfc::cpusched::dvfs::{Governor, GovernorKind};
use vfc::cpusched::engine::Engine;
use vfc::prelude::*;
use vfc::simcore::Micros;

/// A noise-free 8-thread 2.4 GHz node: the performance governor pins all
/// cores to f_max, so any allocation shortfall is the controller's fault,
/// not DVFS jitter.
fn quiet_host(seed: u64) -> SimHost {
    let spec = NodeSpec::custom("chaos", 1, 4, 2, MHz(2400));
    let gov =
        Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, 1).with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, seed);
    SimHost::new(spec, seed).with_engine(engine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chaos_on_one_vm_never_breaks_the_loop_or_the_bystanders(
        seed in 0u64..=u64::MAX,
        rate in 0.0f64..0.10,
        vanish in 0.0f64..0.05,
    ) {
        let mut host = quiet_host(seed ^ 0x9e37_79b9);
        let victim = host.provision(&VmTemplate::new("victim", 2, MHz(600)));
        let web = host.provision(&VmTemplate::new("web", 2, MHz(800)));
        let db = host.provision(&VmTemplate::new("db", 1, MHz(1200)));
        for vm in [victim, web, db] {
            host.attach_workload(vm, Box::new(SteadyDemand::full()));
        }
        let topo = host.topology_info();
        let c_max = topo.c_max(Micros::SEC);

        let plan = FaultPlan::random(rate)
            .with_vanish_rate(vanish)
            .with_target_vm(victim);
        let mut faulty = FaultInjectingBackend::new(host, plan, seed);
        let mut ctl = Controller::new(
            ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
            topo,
        );

        let mut last = None;
        for i in 0..6 {
            faulty.inner_mut().advance_period();
            let report = ctl.iterate(&mut faulty);
            prop_assert!(
                report.is_ok(),
                "iteration {i} must degrade, not abort: {:?}",
                report.err()
            );
            let report = report.unwrap();
            prop_assert!(
                report.total_alloc() <= c_max,
                "iteration {i} overallocates: {} > {c_max}",
                report.total_alloc()
            );
            last = Some(report);
        }

        // The victim's faults must never leak into the bystanders: every
        // fault-free saturating vCPU holds its guarantee.
        for v in &last.unwrap().vcpus {
            if v.addr.vm != victim {
                prop_assert!(
                    v.alloc >= v.guaranteed,
                    "{} {}: alloc {} below guarantee {}",
                    v.vm_name, v.addr.vcpu, v.alloc, v.guaranteed
                );
            }
        }

        // Storm over: the loop must converge back to clean, guaranteed
        // allocations (a vanished victim stays gone — that is recovery
        // too, just of the other kind).
        faulty.disarm();
        let mut final_report = None;
        for _ in 0..4 {
            faulty.inner_mut().advance_period();
            final_report = Some(ctl.iterate(&mut faulty).expect("fault-free iterate"));
        }
        let report = final_report.unwrap();
        prop_assert!(
            !report.health.degraded,
            "health must clear after the storm: {:?}",
            report.health
        );
        prop_assert!(report.total_alloc() <= c_max);
        for v in &report.vcpus {
            prop_assert!(
                v.alloc >= v.guaranteed,
                "post-storm {} {}: alloc {} below guarantee {}",
                v.vm_name, v.addr.vcpu, v.alloc, v.guaranteed
            );
        }
    }
}

/// Control period of the daemon-lifecycle chaos test; the simulated
/// window is shrunk to match (10 ticks × 2 ms) so the real-time-sleeping
/// daemon loop stays fast.
const DAEMON_PERIOD: Micros = Micros(20_000);

fn daemon_cfg(journal: &std::path::Path, iterations: Option<u64>) -> DaemonConfig {
    let mut controller = ControllerConfig::paper_defaults().with_mode(ControlMode::Full);
    controller.period = DAEMON_PERIOD;
    controller.window = Micros(2_000);
    DaemonConfig {
        controller,
        journal_path: Some(journal.to_path_buf()),
        iterations,
        // The storm is the test; the circuit breaker must not cut it short.
        max_consecutive_errors: 0,
        ..DaemonConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kill the daemon mid-run and restart it, while a fault plan keeps
    /// hammering one victim VM — the full production lifecycle
    /// ([`run_with_shutdown`]): boot reconciliation, the control loop,
    /// the warm handoff, and the journal-driven warm restart. Whatever
    /// the dice do to the victim, the *bystander* VMs must keep their
    /// guarantees through the crash window: the handoff leaves their caps
    /// in force and reconciliation adopts them, so service never dips.
    #[test]
    fn daemon_kill_and_restart_under_chaos_keeps_bystander_guarantees(
        seed in 0u64..=u64::MAX,
        rate in 0.0f64..0.15,
        kill_after in 3u64..6,
    ) {
        // 2 cores × 2 threads: ΣC_i ≈ 1.08 of 4 periods — uncontended
        // guarantees, contended burst.
        let spec = NodeSpec::custom("chaos", 1, 2, 2, MHz(2400));
        let gov = Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, 1)
            .with_noise_std(0.0);
        let engine = Engine::with_parts(spec.clone(), Micros(2_000), gov, seed);
        let mut host = SimHost::new(spec, seed).with_engine(engine);
        let victim = host.provision(&VmTemplate::new("victim", 1, MHz(600)));
        let web = host.provision(&VmTemplate::new("web", 1, MHz(800)));
        let db = host.provision(&VmTemplate::new("db", 1, MHz(1200)));
        for vm in [victim, web, db] {
            host.attach_workload(vm, Box::new(SteadyDemand::full()));
        }
        let ticking = TickingHost::new(host)
            .watch(web, VcpuId::new(0))
            .watch(db, VcpuId::new(0));
        let plan = FaultPlan::random(rate).with_target_vm(victim);
        let mut faulty = FaultInjectingBackend::new(ticking, plan, seed);

        let journal = std::env::temp_dir().join(format!(
            "vfc-chaos-restart-{}-{seed:016x}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&journal);

        // First daemon: killed mid-run via the shutdown handle — a warm
        // handoff that flushes the journal and leaves the caps in place.
        let handle = ShutdownHandle::new();
        handle.request_after_iterations(kill_after);
        let done = run_with_shutdown(daemon_cfg(&journal, None), &mut faulty, &handle);
        prop_assert_eq!(done.ok(), Some(kill_after));
        prop_assert!(
            matches!(
                Journal::load(&journal, DAEMON_PERIOD, DEFAULT_MAX_AGE),
                LoadOutcome::Fresh(_)
            ),
            "the handoff must leave a loadable journal behind"
        );

        // Second daemon: warm restart over the same (still faulting) host.
        faulty.inner_mut().clear_freqs();
        let recovery = 6u64;
        let done = run_with_shutdown(
            daemon_cfg(&journal, Some(recovery)),
            &mut faulty,
            &ShutdownHandle::new(),
        );
        prop_assert_eq!(done.ok(), Some(recovery));

        // Every period of the recovery window — including the
        // reconciliation period, when only the predecessor's caps hold
        // the line — must serve the saturating bystanders at or above
        // their guaranteed frequency (5 % scheduler-granularity slack).
        for (vm, mhz, name) in [(web, 800u32, "web"), (db, 1200u32, "db")] {
            let freqs = faulty.inner().freqs_of(vm, VcpuId::new(0));
            prop_assert_eq!(freqs.len(), recovery as usize + 1);
            for (i, f) in freqs.iter().enumerate() {
                prop_assert!(
                    f.as_u32() * 100 >= mhz * 95,
                    "{} recovery period {}: {} below the {} MHz guarantee",
                    name, i, f, mhz
                );
            }
        }
        let _ = std::fs::remove_file(&journal);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unscoped storm: every VM (and the host-global reads) can fault.
    /// No per-VM promises survive that, but the loop itself must.
    #[test]
    fn unscoped_chaos_never_panics_or_overallocates(
        seed in 0u64..=u64::MAX,
        rate in 0.0f64..0.10,
    ) {
        let mut host = quiet_host(seed);
        for (name, vcpus, mhz) in [("a", 2u32, 500u32), ("b", 2, 900), ("c", 1, 1500)] {
            let vm = host.provision(&VmTemplate::new(name, vcpus, MHz(mhz)));
            host.attach_workload(vm, Box::new(SteadyDemand::full()));
        }
        let topo = host.topology_info();
        let c_max = topo.c_max(Micros::SEC);

        let mut faulty =
            FaultInjectingBackend::new(host, FaultPlan::random(rate).with_vanish_rate(0.02), seed);
        let mut ctl = Controller::new(
            ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
            topo,
        );
        for i in 0..8 {
            faulty.inner_mut().advance_period();
            let report = ctl.iterate(&mut faulty);
            prop_assert!(report.is_ok(), "iteration {i}: {:?}", report.err());
            prop_assert!(report.unwrap().total_alloc() <= c_max);
        }
    }
}
