//! Chaos suite: random seeded fault plans against the full control loop.
//!
//! A `FaultInjectingBackend` wraps the simulated host and injects
//! transient read/write failures, stale and zero reads, and whole-VM
//! disappearances — confined to one victim VM so the other tenants'
//! samples stay trustworthy. Whatever the dice do, the loop must:
//!
//! * never panic and never return `Err` from `Controller::iterate`;
//! * never allocate more than `C_MAX` in total (Eq. 1);
//! * keep every *fault-free* saturating vCPU at or above its guaranteed
//!   cycles `C_i` (Eq. 2);
//! * converge back to undegraded health once the fault storm stops.

use proptest::prelude::*;
use vfc::cgroupfs::{FaultInjectingBackend, FaultPlan};
use vfc::controller::ControlMode;
use vfc::cpusched::dvfs::{Governor, GovernorKind};
use vfc::cpusched::engine::Engine;
use vfc::prelude::*;
use vfc::simcore::Micros;

/// A noise-free 8-thread 2.4 GHz node: the performance governor pins all
/// cores to f_max, so any allocation shortfall is the controller's fault,
/// not DVFS jitter.
fn quiet_host(seed: u64) -> SimHost {
    let spec = NodeSpec::custom("chaos", 1, 4, 2, MHz(2400));
    let gov =
        Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, 1).with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, seed);
    SimHost::new(spec, seed).with_engine(engine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chaos_on_one_vm_never_breaks_the_loop_or_the_bystanders(
        seed in 0u64..=u64::MAX,
        rate in 0.0f64..0.10,
        vanish in 0.0f64..0.05,
    ) {
        let mut host = quiet_host(seed ^ 0x9e37_79b9);
        let victim = host.provision(&VmTemplate::new("victim", 2, MHz(600)));
        let web = host.provision(&VmTemplate::new("web", 2, MHz(800)));
        let db = host.provision(&VmTemplate::new("db", 1, MHz(1200)));
        for vm in [victim, web, db] {
            host.attach_workload(vm, Box::new(SteadyDemand::full()));
        }
        let topo = host.topology_info();
        let c_max = topo.c_max(Micros::SEC);

        let plan = FaultPlan::random(rate)
            .with_vanish_rate(vanish)
            .with_target_vm(victim);
        let mut faulty = FaultInjectingBackend::new(host, plan, seed);
        let mut ctl = Controller::new(
            ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
            topo,
        );

        let mut last = None;
        for i in 0..6 {
            faulty.inner_mut().advance_period();
            let report = ctl.iterate(&mut faulty);
            prop_assert!(
                report.is_ok(),
                "iteration {i} must degrade, not abort: {:?}",
                report.err()
            );
            let report = report.unwrap();
            prop_assert!(
                report.total_alloc() <= c_max,
                "iteration {i} overallocates: {} > {c_max}",
                report.total_alloc()
            );
            last = Some(report);
        }

        // The victim's faults must never leak into the bystanders: every
        // fault-free saturating vCPU holds its guarantee.
        for v in &last.unwrap().vcpus {
            if v.addr.vm != victim {
                prop_assert!(
                    v.alloc >= v.guaranteed,
                    "{} {}: alloc {} below guarantee {}",
                    v.vm_name, v.addr.vcpu, v.alloc, v.guaranteed
                );
            }
        }

        // Storm over: the loop must converge back to clean, guaranteed
        // allocations (a vanished victim stays gone — that is recovery
        // too, just of the other kind).
        faulty.disarm();
        let mut final_report = None;
        for _ in 0..4 {
            faulty.inner_mut().advance_period();
            final_report = Some(ctl.iterate(&mut faulty).expect("fault-free iterate"));
        }
        let report = final_report.unwrap();
        prop_assert!(
            !report.health.degraded,
            "health must clear after the storm: {:?}",
            report.health
        );
        prop_assert!(report.total_alloc() <= c_max);
        for v in &report.vcpus {
            prop_assert!(
                v.alloc >= v.guaranteed,
                "post-storm {} {}: alloc {} below guarantee {}",
                v.vm_name, v.addr.vcpu, v.alloc, v.guaranteed
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unscoped storm: every VM (and the host-global reads) can fault.
    /// No per-VM promises survive that, but the loop itself must.
    #[test]
    fn unscoped_chaos_never_panics_or_overallocates(
        seed in 0u64..=u64::MAX,
        rate in 0.0f64..0.10,
    ) {
        let mut host = quiet_host(seed);
        for (name, vcpus, mhz) in [("a", 2u32, 500u32), ("b", 2, 900), ("c", 1, 1500)] {
            let vm = host.provision(&VmTemplate::new(name, vcpus, MHz(mhz)));
            host.attach_workload(vm, Box::new(SteadyDemand::full()));
        }
        let topo = host.topology_info();
        let c_max = topo.c_max(Micros::SEC);

        let mut faulty =
            FaultInjectingBackend::new(host, FaultPlan::random(rate).with_vanish_rate(0.02), seed);
        let mut ctl = Controller::new(
            ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
            topo,
        );
        for i in 0..8 {
            faulty.inner_mut().advance_period();
            let report = ctl.iterate(&mut faulty);
            prop_assert!(report.is_ok(), "iteration {i}: {:?}", report.err());
            prop_assert!(report.unwrap().total_alloc() <= c_max);
        }
    }
}
