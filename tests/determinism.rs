//! Reproducibility: identical seeds produce bit-identical experiment
//! data across the whole stack (host, governor noise, placement shuffle,
//! controller), and different seeds genuinely differ.

use vfc::controller::ControlMode;
use vfc::scenarios::eval1::{self, NodeKind};
use vfc::scenarios::runner::{run, Scale};
use vfc::simcore::Micros;

fn quick_series(seed: u64) -> Vec<(String, Vec<(Micros, f64)>)> {
    let mut spec = eval1::spec(NodeKind::Chetemi, ControlMode::Full, Scale::quick());
    spec.duration = Micros(300_000_000); // 30 iterations post-scale
    spec.seed = seed;
    let out = run(&spec);
    out.freq_series
        .names()
        .iter()
        .map(|n| {
            (
                n.clone(),
                out.freq_series.get(n).expect("named").points().to_vec(),
            )
        })
        .collect()
}

#[test]
fn same_seed_same_trace() {
    let a = quick_series(1234);
    let b = quick_series(1234);
    assert_eq!(a, b, "identical seeds must replay bit-identically");
}

#[test]
fn different_seed_different_trace() {
    let a = quick_series(1);
    let b = quick_series(2);
    assert_ne!(a, b, "noise/placement streams should differ per seed");
}

#[test]
fn placement_study_and_workload_are_deterministic() {
    use vfc::placement::cluster::{paper_workload, ArrivalOrder};
    let w1 = paper_workload(ArrivalOrder::Shuffled(99));
    let w2 = paper_workload(ArrivalOrder::Shuffled(99));
    assert_eq!(w1, w2);
    let s1 = vfc::scenarios::placement_eval::study(ArrivalOrder::Shuffled(99));
    let s2 = vfc::scenarios::placement_eval::study(ArrivalOrder::Shuffled(99));
    assert_eq!(s1.frequency.nodes_used, s2.frequency.nodes_used);
    assert_eq!(
        s1.frequency.max_large_per_chiclet,
        s2.frequency.max_large_per_chiclet
    );
}
