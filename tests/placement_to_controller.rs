//! The paper's two contributions, composed: VMs packed by the
//! frequency-aware placer onto one node are then *actually controllable* —
//! the controller delivers every placed VM its guaranteed frequency.
//! This is the contract §III.C relies on ("supported by the frequency
//! controller, instead of migration mechanism").

use vfc::controller::ControlMode;
use vfc::cpusched::dvfs::{Governor, GovernorKind};
use vfc::cpusched::engine::Engine;
use vfc::placement::cluster::{paper_workload, ArrivalOrder, Cluster};
use vfc::prelude::*;
use vfc::simcore::Micros;

#[test]
fn frequency_placed_node_is_controllable() {
    // Place the paper workload with Eq. 7, pick the most loaded node, and
    // realize it on a SimHost.
    let cluster = Cluster::paper_cluster();
    let workload = paper_workload(ArrivalOrder::RoundRobin);
    let placer = Placer::new(PlacementAlgorithm::BestFit, ConstraintMode::Frequency);
    let result = placer.place(&cluster.nodes, &workload);

    let bin = result
        .nodes
        .iter()
        .filter(|n| n.is_used())
        .max_by(|a, b| {
            a.freq_utilization()
                .partial_cmp(&b.freq_utilization())
                .expect("utilizations are finite")
        })
        .expect("at least one node is used");
    assert!(
        bin.freq_utilization() > 0.9,
        "Best-Fit should pack tightly, got {}",
        bin.freq_utilization()
    );

    // Realize the bin.
    let spec = bin.spec.clone();
    let gov =
        Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, 3).with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, 3);
    let mut host = SimHost::new(spec, 3).with_engine(engine);
    let mut placed = Vec::new();
    for req in &bin.placed {
        let vm = host.provision(&VmTemplate::new(&req.template, req.vcpus, req.vfreq));
        host.attach_workload(vm, Box::new(SteadyDemand::full()));
        placed.push((vm, req.vfreq));
    }

    let mut ctl = Controller::new(
        ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
        host.topology_info(),
    );
    for _ in 0..25 {
        host.advance_period();
        ctl.iterate(&mut host).expect("sim backend");
    }

    // Every placed VM gets its guarantee: the placement promise holds
    // without migrations.
    for (vm, vfreq) in &placed {
        for j in 0..host.instance(*vm).nr_vcpus() {
            let f = host.vcpu_freq_exact(*vm, VcpuId::new(j));
            assert!(
                f.as_u32() + 60 >= vfreq.as_u32(),
                "{} vcpu{}: got {f}, promised {vfreq}",
                host.instance(*vm).name,
                j
            );
        }
    }
}

#[test]
fn frequency_factor_overcommit_loses_the_guarantee() {
    // §III.C's warning, demonstrated: admit 20 % more frequency demand
    // than Eq. 7 allows and even the controller cannot conjure the
    // missing cycles — guarantees degrade proportionally (the
    // over-subscription guard shares the shortfall instead of starving
    // anyone completely).
    let spec = vfc::cpusched::topology::NodeSpec::custom("oc", 1, 2, 1, MHz(2400));
    let gov =
        Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, 9).with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, 9);
    let mut host = SimHost::new(spec, 9).with_engine(engine);

    // Capacity 4800 MHz; FrequencyFactor{1.2} admits up to 5760:
    // three 2-vCPU 900 MHz VMs = 5400 MHz of guarantees.
    let mode = ConstraintMode::FrequencyFactor { factor: 1.2 };
    let mut bin = vfc::placement::NodeBin::new(host.spec().clone());
    let mut vms = Vec::new();
    for _ in 0..3 {
        let req = vfc::placement::PlacementRequest::new("oc", 2, MHz(900), 2);
        assert!(mode.fits(&bin, &req));
        bin.place(&req);
        let vm = host.provision(&VmTemplate::new("oc", 2, MHz(900)));
        host.attach_workload(vm, Box::new(SteadyDemand::full()));
        vms.push(vm);
    }
    let mut ctl = Controller::new(
        ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
        host.topology_info(),
    );
    for _ in 0..20 {
        host.advance_period();
        ctl.iterate(&mut host).expect("sim backend");
    }
    for vm in vms {
        let f = host.vcpu_freq_exact(vm, VcpuId::new(0));
        // Everyone gets the same degraded share: 4800/6 = 800 < 900.
        assert!(
            (750..=860).contains(&f.as_u32()),
            "guarantee should degrade to ≈800 MHz, got {f}"
        );
    }
}

#[test]
fn core_count_overcommit_node_cannot_keep_promises_without_control() {
    // Contrast: pack a node with the ×1.8 consolidation factor and run it
    // WITHOUT the controller — some class must miss the frequency its
    // vCPU count implies, which is exactly why the paper replaces the
    // factor with Eq. 7 + control.
    let spec = vfc::cpusched::topology::NodeSpec::chiclet();
    let gov =
        Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, 5).with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, 5);
    let mut host = SimHost::new(spec, 5).with_engine(engine);

    // 28 large VMs (the paper's ×1.8 packing): 112 vCPUs on 64 threads.
    let mut vms = Vec::new();
    for _ in 0..28 {
        let vm = host.provision(&VmTemplate::large());
        host.attach_workload(vm, Box::new(SteadyDemand::full()));
        vms.push(vm);
    }
    for _ in 0..10 {
        host.advance_period();
    }
    // Uncontrolled fair sharing: each vCPU gets 64/112 of a 2.4 GHz
    // thread ≈ 1371 MHz < the 1800 MHz the template promises.
    let f = host.vcpu_freq_exact(vms[0], VcpuId::new(0));
    assert!(
        f.as_u32() < 1500,
        "over-committed node should miss the 1800 MHz promise, got {f}"
    );
}
