//! Telemetry system tests: the controller's self-measurement must be
//! internally consistent for *any* feasible workload, not just the
//! scripted scenarios.
//!
//! The load-bearing invariant is accounting: the six per-stage latency
//! histograms are carved out of the same wall clock as the iteration
//! histogram, so across any run the stage totals can never add up to
//! more than the iteration total (the in-loop telemetry bookkeeping is
//! charged to the iteration, never to a stage). If that ever breaks, the
//! overhead breakdown in EXPERIMENTS.md — and any dashboard built on
//! `vfc_stage_duration_seconds` — is lying.

use proptest::prelude::*;
use vfc::controller::telemetry::Stage;
use vfc::controller::ControlMode;
use vfc::prelude::*;
use vfc::vmm::workload::SteadyDemand;

#[derive(Debug, Clone)]
struct VmPlan {
    vcpus: u32,
    vfreq_mhz: u32,
    demand: f64,
}

/// Random VM populations feasible on an 8-thread 2.4 GHz node (Eq. 7).
fn feasible_population() -> impl Strategy<Value = Vec<VmPlan>> {
    proptest::collection::vec(
        (1u32..=4, 200u32..=2400, 0.0f64..=1.0).prop_map(|(vcpus, vfreq, demand)| VmPlan {
            vcpus,
            vfreq_mhz: vfreq,
            demand,
        }),
        1..8,
    )
    .prop_map(|mut plans| {
        while plans
            .iter()
            .map(|p| p.vcpus as u64 * p.vfreq_mhz as u64)
            .sum::<u64>()
            > 19_200
        {
            plans.pop();
        }
        plans
    })
    .prop_filter("at least one VM", |p| !p.is_empty())
}

const STAGES: [Stage; 6] = [
    Stage::Monitor,
    Stage::Estimate,
    Stage::Enforce,
    Stage::Auction,
    Stage::Distribute,
    Stage::Apply,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn stage_histogram_totals_never_exceed_iteration_wall_time(
        plans in feasible_population(),
        periods in 3u32..12,
    ) {
        let spec = NodeSpec::custom("telem", 1, 4, 2, MHz(2400));
        let mut host = SimHost::new(spec, 7);
        for (i, p) in plans.iter().enumerate() {
            let vm = host.provision(&VmTemplate::new(
                &format!("p{i}"),
                p.vcpus,
                MHz(p.vfreq_mhz),
            ));
            host.attach_workload(vm, Box::new(SteadyDemand::new(p.demand)));
        }
        let mut ctl = Controller::new(
            ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
            host.topology_info(),
        );
        for _ in 0..periods {
            host.advance_period();
            ctl.iterate(&mut host).expect("sim backend");
        }

        let metrics = ctl.telemetry();
        let iteration = metrics.iteration_snapshot();
        prop_assert_eq!(iteration.count, periods as u64);

        // Accounting invariant: every stage observed once per iteration,
        // and the stage sums fit inside the iteration sum. Exact in µs:
        // the stages are disjoint sub-intervals of the iteration window
        // and flooring each term can only shrink the left-hand side.
        let mut stage_sum_us = 0u64;
        for stage in STAGES {
            let snap = metrics.stage_snapshot(stage);
            prop_assert_eq!(snap.count, periods as u64, "stage {:?}", stage);
            prop_assert!(snap.p50_us <= snap.p95_us && snap.p95_us <= snap.p99_us);
            prop_assert!(snap.sum_us >= snap.max_us);
            stage_sum_us += snap.sum_us;
        }
        prop_assert!(
            stage_sum_us <= iteration.sum_us,
            "stages account for {stage_sum_us} µs but iterations only took {} µs",
            iteration.sum_us
        );

        // The exposition must agree with the snapshots it is built from.
        let page = metrics.render_prometheus();
        prop_assert!(page.contains(&format!("vfc_iterations_total {periods}")));
        prop_assert!(page.contains(&format!(
            "vfc_iteration_duration_seconds_count {}",
            iteration.count
        )));
        for line in page.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            prop_assert!(
                value.parse::<f64>().map(f64::is_finite).unwrap_or(false),
                "non-finite sample value in: {}", line
            );
        }
    }

    #[test]
    fn monitor_only_mode_never_observes_market_stages(
        periods in 1u32..8,
    ) {
        let spec = NodeSpec::custom("telem-mon", 1, 4, 2, MHz(2400));
        let mut host = SimHost::new(spec, 7);
        let vm = host.provision(&VmTemplate::new("solo", 2, MHz(800)));
        host.attach_workload(vm, Box::new(SteadyDemand::full()));
        let mut ctl = Controller::new(
            ControllerConfig::paper_defaults().with_mode(ControlMode::MonitorOnly),
            host.topology_info(),
        );
        for _ in 0..periods {
            host.advance_period();
            ctl.iterate(&mut host).expect("sim backend");
        }
        let metrics = ctl.telemetry();
        prop_assert_eq!(metrics.stage_snapshot(Stage::Monitor).count, periods as u64);
        prop_assert_eq!(metrics.stage_snapshot(Stage::Estimate).count, periods as u64);
        // Stages 3-6 never run in execution A; zero-duration samples
        // polluting their histograms would fake a sub-µs market.
        for stage in [Stage::Enforce, Stage::Auction, Stage::Distribute, Stage::Apply] {
            prop_assert_eq!(metrics.stage_snapshot(stage).count, 0, "stage {:?}", stage);
        }
    }
}
