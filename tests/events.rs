//! Pins for the event-driven cluster core: queue ordering properties,
//! same-seed byte-identical replays, legacy-vs-event-core equivalence,
//! trace-reader robustness, and the "quiet hosts are free" bound.

use proptest::prelude::*;
use proptest::Strategy as _;
use vfc::cluster::{
    ClusterManager, CsvTraceReader, EventDrivenCluster, FaultModel, GlobalVmId, Strategy,
    SyntheticTrace, TraceError, TraceReader, TraceVmSpec,
};
use vfc::cpusched::topology::NodeSpec;
use vfc::placement::algo::PlacementAlgorithm;
use vfc::simcore::{EventQueue, MHz};
use vfc::vmm::workload::{SteadyDemand, Workload};
use vfc::vmm::VmTemplate;

// ---------------------------------------------------------------------
// Event-queue ordering properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary interleavings of schedule/pop drain in nondecreasing
    /// timestamp order with FIFO tie-breaks — checked against a naive
    /// mirror model that picks min-by-(time, seq) each pop.
    #[test]
    fn queue_drains_in_order(ops in proptest::collection::vec(
        (0u8..=3, 0u64..=15), 1..80,
    )) {
        let mut q = EventQueue::new();
        let mut mirror: Vec<(u64, u64, u32)> = Vec::new();
        let mut payload = 0u32;
        for (choice, delta) in ops {
            if choice < 3 {
                // Schedule relative to `now` (never in the past).
                let t = q.now() + delta;
                let seq = q.schedule(t, payload);
                mirror.push((t, seq, payload));
                payload += 1;
            } else if let Some(got) = q.pop() {
                let best = mirror
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| (e.0, e.1))
                    .map(|(i, _)| i)
                    .expect("queue and mirror agree on emptiness");
                let want = mirror.remove(best);
                prop_assert_eq!((got.time, got.seq, got.event), want);
            } else {
                prop_assert!(mirror.is_empty());
            }
        }
        // Drain the rest: globally nondecreasing (time, seq).
        let mut last = (0u64, 0u64);
        while let Some(got) = q.pop() {
            prop_assert!((got.time, got.seq) >= last, "out of order");
            last = (got.time, got.seq);
            let best = mirror
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.0, e.1))
                .map(|(i, _)| i)
                .expect("mirror still has events");
            let want = mirror.remove(best);
            prop_assert_eq!((got.time, got.seq, got.event), want);
        }
        prop_assert!(mirror.is_empty());
    }
}

// ---------------------------------------------------------------------
// Same-seed determinism
// ---------------------------------------------------------------------

fn synthetic_run(trace_seed: u64, cluster_seed: u64) -> (Vec<String>, String) {
    let trace = SyntheticTrace::new(120, 40, trace_seed).generate();
    let nodes = vec![NodeSpec::custom("det", 1, 4, 2, MHz(2400)); 8];
    let mgr = ClusterManager::new(nodes, Strategy::FrequencyControl, cluster_seed);
    let mut cluster = EventDrivenCluster::new(mgr).with_workloads(
        cluster_seed,
        Box::new(|slot, _t, _rng| Box::new(SteadyDemand::new(0.3 + 0.05 * (slot % 10) as f64))),
    );
    cluster.enable_journal();
    cluster.load_trace(trace);
    cluster.run_until(90);
    let journal = cluster.journal().expect("enabled").to_vec();
    let report = serde_json::to_string(&cluster.report()).expect("serializable");
    (journal, report)
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let (j1, r1) = synthetic_run(9, 42);
    let (j2, r2) = synthetic_run(9, 42);
    assert!(!j1.is_empty(), "the run processed events");
    assert_eq!(j1, j2, "same-seed event journals must be byte-identical");
    assert_eq!(r1, r2, "same-seed reports must be byte-identical");

    let (j3, _) = synthetic_run(10, 42);
    assert_ne!(j1, j3, "a different trace seed must change the schedule");
}

// ---------------------------------------------------------------------
// Legacy run_period vs event core equivalence
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct EqVm {
    vcpus: u32,
    vfreq_mhz: u32,
    /// 0 = never departs; d ≥ 1 = departs at second d.
    depart_s: u64,
}

const EQ_HORIZON: u64 = 12;

fn eq_workload(slot: usize) -> Box<dyn Workload> {
    Box::new(SteadyDemand::new(0.25 + 0.08 * (slot % 9) as f64))
}

fn eq_fleet() -> Vec<NodeSpec> {
    vec![NodeSpec::custom("eq", 1, 2, 2, MHz(2400)); 3]
}

/// The contract (see `events` module docs): equivalence holds when no VM
/// lands on a host the event core previously skipped — here, all
/// arrivals precede period 1, departures are free, no faults, and the
/// frequency strategy never migrates.
fn legacy_report(plans: &[EqVm], seed: u64) -> String {
    let mut mgr = ClusterManager::new(eq_fleet(), Strategy::FrequencyControl, seed);
    let mut ids: Vec<Option<GlobalVmId>> = Vec::new();
    for (slot, p) in plans.iter().enumerate() {
        let t = VmTemplate::new(&format!("c{}", slot % 3), p.vcpus, MHz(p.vfreq_mhz));
        ids.push(
            mgr.try_deploy_with(&t, eq_workload(slot), PlacementAlgorithm::BestFit)
                .ok(),
        );
    }
    for period in 1..=EQ_HORIZON {
        for (slot, p) in plans.iter().enumerate() {
            if p.depart_s != 0 && p.depart_s + 1 == period {
                if let Some(id) = ids[slot] {
                    mgr.undeploy(id).expect("departs once");
                }
            }
        }
        mgr.run_period();
    }
    serde_json::to_string(&mgr.report()).expect("serializable")
}

fn event_report(plans: &[EqVm], seed: u64) -> String {
    let mgr = ClusterManager::new(eq_fleet(), Strategy::FrequencyControl, seed);
    let mut cluster = EventDrivenCluster::new(mgr)
        .with_workloads(0, Box::new(|slot, _t, _rng| eq_workload(slot)));
    for (slot, p) in plans.iter().enumerate() {
        cluster.schedule_vm(TraceVmSpec {
            trace_id: format!("eq-{slot}"),
            arrival: 0,
            departure: (p.depart_s != 0).then_some(p.depart_s),
            template: VmTemplate::new(&format!("c{}", slot % 3), p.vcpus, MHz(p.vfreq_mhz)),
        });
    }
    cluster.run_until(EQ_HORIZON);
    serde_json::to_string(&cluster.report()).expect("serializable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn event_core_matches_legacy_run_period(
        plans in proptest::collection::vec(
            (1u32..=2, 300u32..=1200, 0u64..=10).prop_map(|(vcpus, vfreq_mhz, depart_s)| EqVm {
                vcpus,
                vfreq_mhz,
                depart_s,
            }),
            1..10,
        ),
        seed in 0u64..1000,
    ) {
        let legacy = legacy_report(&plans, seed);
        let event = event_report(&plans, seed);
        prop_assert_eq!(legacy, event, "reports diverged for {:?}", plans);
    }
}

// ---------------------------------------------------------------------
// Trace-reader robustness
// ---------------------------------------------------------------------

#[test]
fn golden_sample_trace_parses() {
    let specs = CsvTraceReader::from_path("traces/sample_small.csv")
        .expect("committed trace exists")
        .read()
        .expect("committed trace is well-formed");
    assert_eq!(specs.len(), 40);
    let first = &specs[0];
    assert_eq!(first.trace_id, "web-000");
    assert_eq!(first.arrival, 0);
    assert_eq!(first.departure, Some(45));
    assert_eq!(first.template.vcpus, 2);
    assert_eq!(first.template.vfreq, MHz(500));
    assert_eq!(first.template.mem_gb, 4);
    assert_eq!(first.template.name, "small");
    // Long-running VMs have no departure.
    assert!(specs
        .iter()
        .any(|s| s.trace_id == "db-000" && s.departure.is_none()));
    // Every row yields a deployable template.
    for s in &specs {
        assert!(
            s.template.validate().is_ok(),
            "{}: invalid template",
            s.trace_id
        );
        assert_eq!(s.event_count(), 1 + usize::from(s.departure.is_some()));
    }
}

/// Every malformed row is a line-numbered `TraceError`, never a panic.
#[test]
fn malformed_rows_are_line_numbered_errors() {
    let header = "vm_id,arrival_s,departure_s,vcpus,vfreq_mhz,mem_gb,class\n";
    let cases: &[(&str, &str)] = &[
        ("a,-5,,2,500,4,small", "negative arrival_s"),
        ("a,0,-1,2,500,4,small", "negative departure_s"),
        ("a,10,5,2,500,4,small", "not after arrival_s"),
        ("a,10,10,2,500,4,small", "not after arrival_s"),
        ("a,0,50,0,500,4,small", "zero vcpus"),
        ("a,0,50,2,NaN,4,small", "non-finite vfreq_mhz"),
        ("a,0,50,2,inf,4,small", "non-finite vfreq_mhz"),
        ("a,0,50,2,-200,4,small", "out of range"),
        ("a,0,50,2,0,4,small", "out of range"),
        ("a,0,50,2,500,0,small", "zero mem_gb"),
        ("a,0,50,2,500,4,", "empty class"),
        (",0,50,2,500,4,small", "empty vm_id"),
        ("a,0,50,2,500,4", "expected 7 columns"),
        ("a,0,50,2,500,4,small,extra", "expected 7 columns"),
        ("a,zero,,2,500,4,small", "unparsable arrival_s"),
        ("a,0,soon,2,500,4,small", "unparsable departure_s"),
        ("a,0,50,two,500,4,small", "unparsable vcpus"),
        ("a,0,50,2,fast,4,small", "unparsable vfreq_mhz"),
        ("a,0,50,2,500,lots,small", "unparsable mem_gb"),
    ];
    for (row, want) in cases {
        let src = format!("{header}ok-1,0,30,2,500,4,small\n{row}\n");
        let err = CsvTraceReader::from_csv(&src)
            .read()
            .expect_err("malformed row must be rejected");
        match err {
            TraceError::Malformed { line, ref reason } => {
                assert_eq!(line, 3, "row {row:?} reported the wrong line");
                assert!(
                    reason.contains(want),
                    "row {row:?}: reason {reason:?} missing {want:?}"
                );
            }
            other => panic!("row {row:?}: unexpected error {other:?}"),
        }
    }

    // Duplicate ids are rejected on the *second* occurrence.
    let err = CsvTraceReader::from_csv(&format!(
        "{header}dup,0,30,2,500,4,small\ndup,5,40,2,500,4,small\n"
    ))
    .read()
    .expect_err("duplicate id");
    assert_eq!(
        err,
        TraceError::Malformed {
            line: 3,
            reason: "duplicate vm_id \"dup\"".into()
        }
    );

    // Missing files are I/O errors, not panics.
    assert!(matches!(
        CsvTraceReader::from_path("traces/no_such_trace.csv"),
        Err(TraceError::Io(_))
    ));
}

// ---------------------------------------------------------------------
// Quiet hosts are free
// ---------------------------------------------------------------------

#[test]
fn quiet_hosts_cost_nothing() {
    const NODES: usize = 40;
    const PERIODS: u64 = 30;
    const VMS: usize = 8;
    // First-Fit packs eight 2-vCPU @ 2400 MHz VMs (4800 MHz each) onto
    // the first four 9600 MHz nodes: 10 % of the fleet busy, 90 % idle.
    let fleet = vec![NodeSpec::custom("quiet", 1, 2, 2, MHz(2400)); NODES];
    let mgr = ClusterManager::new(fleet, Strategy::FrequencyControl, 7);
    let mut cluster = EventDrivenCluster::new(mgr).with_algorithm(PlacementAlgorithm::FirstFit);
    for i in 0..VMS {
        cluster.schedule_vm(TraceVmSpec {
            trace_id: format!("busy-{i}"),
            arrival: 0,
            departure: None,
            template: VmTemplate::new("std", 2, MHz(2400)),
        });
    }
    cluster.run_until(PERIODS);

    let report = cluster.report();
    assert_eq!(report.deployed, VMS);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.periods, PERIODS);
    assert_eq!(report.nodes_active, 4);

    // Idle hosts ran zero controller iterations; busy hosts ran one per
    // period.
    let totals = cluster.manager().health_totals();
    assert_eq!(totals.len(), NODES);
    let busy: Vec<_> = totals.iter().filter(|(_, t)| t.iterations > 0).collect();
    let idle = totals.len() - busy.len();
    assert_eq!(busy.len(), 4, "only the packed nodes may run controllers");
    assert!(idle >= NODES * 9 / 10, "90 % of hosts stay idle");
    for (name, t) in &busy {
        assert_eq!(t.iterations, PERIODS, "{name} advanced every period");
    }

    // Total events stay within the analytic bound: one arrival per VM,
    // one period event per *busy* node per period, one close per period
    // — idle hosts contribute nothing at all.
    let stats = cluster.stats();
    assert_eq!(stats.arrivals, VMS as u64);
    assert_eq!(stats.departures, 0);
    assert_eq!(stats.landings, 0);
    assert_eq!(stats.fault_ticks, 0);
    assert_eq!(stats.node_periods, 4 * PERIODS);
    assert_eq!(stats.closes, PERIODS);
    let bound = VMS as u64 + 4 * PERIODS + PERIODS;
    assert!(
        stats.events_processed <= bound,
        "{} events exceeds the analytic bound {bound}",
        stats.events_processed
    );
}

// ---------------------------------------------------------------------
// Fault machinery through the event core (smoke)
// ---------------------------------------------------------------------

#[test]
fn event_core_survives_faults_and_terminates() {
    let faults = FaultModel {
        seed: 3,
        node_crash_rate: 0.02,
        controller_crash_rate: 0.02,
        migration_fail_rate: 0.1,
        ..FaultModel::none()
    };
    let fleet = vec![NodeSpec::custom("f", 1, 2, 2, MHz(2400)); 6];
    let mgr = ClusterManager::with_faults(fleet, Strategy::FrequencyControl, 11, faults);
    let mut cluster = EventDrivenCluster::new(mgr);
    let trace = SyntheticTrace::new(60, 30, 5).generate();
    cluster.load_trace(trace);
    cluster.run_until(120);
    let report = cluster.report();
    let stats = cluster.stats();
    assert_eq!(report.periods, 120);
    assert!(stats.fault_ticks > 0, "fault machinery ran");
    assert!(report.faults.is_some(), "fault counters reported");
    // Deterministic under replay even with faults and landings.
    let mgr2 = ClusterManager::with_faults(
        vec![NodeSpec::custom("f", 1, 2, 2, MHz(2400)); 6],
        Strategy::FrequencyControl,
        11,
        FaultModel {
            seed: 3,
            node_crash_rate: 0.02,
            controller_crash_rate: 0.02,
            migration_fail_rate: 0.1,
            ..FaultModel::none()
        },
    );
    let mut cluster2 = EventDrivenCluster::new(mgr2);
    cluster2.load_trace(SyntheticTrace::new(60, 30, 5).generate());
    cluster2.run_until(120);
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&cluster2.report()).unwrap(),
        "fault-injected event runs replay bit-identically"
    );
}
