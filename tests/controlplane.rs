//! Control-plane system tests: the ISSUE's two end-to-end guarantees.
//!
//! * **Invariants under churn + faults** (proptest): random-but-seeded
//!   streams of tenant mutations (create / live-resize / delete) mixed
//!   with scripted node crashes must never produce an Eq. 7 violation on
//!   any node and never let a tenant's desired footprint exceed its
//!   quota on any axis, at any period.
//! * **Kill-and-restart**: the control plane persists only the spec log.
//!   Dropping the plane, the reconciler *and* the whole cluster — then
//!   rebuilding all three from the persisted log — must re-converge to
//!   the exact desired state (same specs, same generations, same
//!   enforced `F_v`).
//!
//! Plus the controller-layer half of the live-resize path over
//! [`TickingHost`] (the daemon-style backend from `tests/common`): a
//! mid-run `set_vfreq` must move the enforced frequency of a saturating
//! vCPU to the new guarantee within a few periods, with the credit
//! wallet clamped to the new ceiling at the moment of the resize.

mod common;

use common::TickingHost;
use proptest::prelude::*;
use vfc::cluster::{ClusterManager, FaultModel, Strategy as ClusterStrategy};
use vfc::controller::ControlMode;
use vfc::controlplane::{ControlPlane, RateLimit, Reconciler, SpecId, TenantQuota};
use vfc::cpusched::dvfs::{Governor, GovernorKind};
use vfc::cpusched::engine::Engine;
use vfc::prelude::*;
use vfc::simcore::Micros;

// ---------------------------------------------------------------------
// Churn + node faults (proptest)
// ---------------------------------------------------------------------

/// One admission call, drawn by proptest.
#[derive(Debug, Clone, Copy)]
struct Op {
    tenant: usize,
    /// 0–4 create, 5–7 resize, 8–9 delete (resize/delete fall back to
    /// create when the tenant owns nothing).
    action: u8,
    vcpus: u32,
    vfreq_mhz: u32,
}

fn arb_op(tenants: usize) -> impl Strategy<Value = Op> {
    (0..tenants, 0u8..10, 1u32..=2, 1u32..=6).prop_map(|(tenant, action, vcpus, f)| Op {
        tenant,
        action,
        vcpus,
        vfreq_mhz: 400 * f, // 400..=2400, always within the node's F_MAX
    })
}

/// Scripted node crashes: (period, node index) pairs within the run.
fn arb_crashes(periods: u64, nodes: usize) -> impl Strategy<Value = Vec<(u64, usize)>> {
    proptest::collection::vec((1..periods, 0..nodes), 0..4)
}

const TENANTS: usize = 3;
const NODES: usize = 5;
const PERIODS: u64 = 30;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn churn_with_node_faults_never_violates_eq7_or_quota(
        ops in proptest::collection::vec(arb_op(TENANTS), 10..60),
        crashes in arb_crashes(PERIODS, NODES),
    ) {
        let faults = FaultModel {
            seed: 11,
            scripted_node_crashes: crashes,
            repair_periods: 4,
            ..FaultModel::none()
        };
        let mut cluster = ClusterManager::with_faults(
            vec![NodeSpec::custom("prop", 1, 2, 2, MHz(2400)); NODES],
            ClusterStrategy::FrequencyControl,
            13,
            faults,
        );

        let mut plane = ControlPlane::new();
        plane.set_rate_limit(RateLimit { burst: 6, per_tick: 3 });
        let quota = TenantQuota { max_vms: 6, max_vcpus: 10, max_mhz: 12_000 };
        let tenants: Vec<String> = (0..TENANTS).map(|i| format!("t{i}")).collect();
        for t in &tenants {
            plane.add_tenant(t, quota);
        }
        let mut rec = Reconciler::default();

        let mut live: Vec<(SpecId, usize)> = Vec::new();
        let mut ops = ops.into_iter();
        for _ in 0..PERIODS {
            let loads = cluster.node_loads();
            for op in ops.by_ref().take(2) {
                let owned: Vec<SpecId> = live
                    .iter()
                    .filter(|(_, t)| *t == op.tenant)
                    .map(|(id, _)| *id)
                    .collect();
                if op.action < 5 || owned.is_empty() {
                    let template = VmTemplate::new("p", op.vcpus, MHz(op.vfreq_mhz));
                    if let Ok(id) = plane.create_vm(&tenants[op.tenant], template, &loads) {
                        live.push((id, op.tenant));
                    }
                } else if op.action < 8 {
                    let _ = plane.resize_vm(owned[0], MHz(op.vfreq_mhz), &loads);
                } else if plane.delete_vm(owned[0]).is_ok() {
                    live.retain(|(id, _)| *id != owned[0]);
                }
            }

            rec.reconcile(&mut plane, &mut cluster);
            cluster.run_period();

            // Invariant 1: no node ever exceeds its Eq. 7 budget.
            prop_assert_eq!(cluster.eq7_violations(), 0);
            // Invariant 2: no tenant's desired footprint exceeds quota.
            for t in &tenants {
                let u = plane.usage(t);
                prop_assert!(u.vms <= quota.max_vms, "{t}: {} VMs", u.vms);
                prop_assert!(u.vcpus <= quota.max_vcpus, "{t}: {} vCPUs", u.vcpus);
                prop_assert!(u.mhz <= quota.max_mhz, "{t}: {} MHz", u.mhz);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Kill-and-restart: re-convergence from the persisted spec log
// ---------------------------------------------------------------------

#[test]
fn reconciler_reconverges_from_persisted_spec_log_after_restart() {
    let dir = std::env::temp_dir().join(format!("vfc-cp-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("specs.json");
    let _ = std::fs::remove_file(&log);

    let quota = TenantQuota {
        max_vms: 8,
        max_vcpus: 16,
        max_mhz: 20_000,
    };
    let nodes = || vec![NodeSpec::custom("kr", 1, 2, 2, MHz(2400)); 3];

    // Life before the crash: three VMs, one live-resized (generation 2).
    let mut plane = ControlPlane::with_persistence(log.clone()).unwrap();
    plane.add_tenant("acme", quota);
    let mut cluster = ClusterManager::new(nodes(), ClusterStrategy::FrequencyControl, 3);
    let mut rec = Reconciler::default();
    let loads = cluster.node_loads();
    let a = plane
        .create_vm("acme", VmTemplate::new("a", 2, MHz(900)), &loads)
        .unwrap();
    let b = plane
        .create_vm("acme", VmTemplate::new("b", 1, MHz(1200)), &loads)
        .unwrap();
    let c = plane
        .create_vm("acme", VmTemplate::new("c", 1, MHz(600)), &loads)
        .unwrap();
    assert!(rec.reconcile(&mut plane, &mut cluster).converged);
    cluster.run_period();
    plane
        .resize_vm(a, MHz(1500), &cluster.node_loads())
        .unwrap();
    assert!(rec.reconcile(&mut plane, &mut cluster).converged);
    let usage_before = plane.usage("acme");

    // Crash: plane, reconciler AND cluster all vanish. Only the spec
    // log survives.
    drop((plane, cluster, rec));

    // Restart: replay the log, rebuild an empty cluster, re-converge.
    let mut plane = ControlPlane::with_persistence(log.clone()).unwrap();
    plane.add_tenant("acme", quota);
    let mut cluster = ClusterManager::new(nodes(), ClusterStrategy::FrequencyControl, 99);
    let mut rec = Reconciler::default();

    // The replayed desired state is intact before any reconciling.
    assert_eq!(plane.store().len(), 3);
    let sa = plane.store().get(a).unwrap();
    assert_eq!((sa.generation, sa.template.vfreq), (2, MHz(1500)));
    assert_eq!(plane.store().get(b).unwrap().generation, 1);
    assert_eq!(plane.usage("acme"), usage_before);

    // A fresh reconciler with empty bindings redeploys everything.
    assert!(!rec.is_converged(&plane));
    let mut converged = false;
    for _ in 0..6 {
        if rec.reconcile(&mut plane, &mut cluster).converged {
            converged = true;
            break;
        }
        cluster.run_period();
    }
    assert!(converged, "restarted reconciler never converged");
    for id in [a, b, c] {
        let spec = plane.store().get(id).unwrap();
        let vm = rec.binding(id).unwrap().vm;
        assert!(cluster.is_deployed(vm));
        assert_eq!(cluster.vm_template(vm).unwrap().vfreq, spec.template.vfreq);
        assert_eq!(rec.binding(id).unwrap().applied_generation, spec.generation);
    }
    assert_eq!(cluster.eq7_violations(), 0);

    // The log keeps appending after the restart.
    plane.delete_vm(c).unwrap();
    assert!(rec.reconcile(&mut plane, &mut cluster).converged);
    assert_eq!(plane.store().len(), 2);

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Controller-layer live resize over TickingHost
// ---------------------------------------------------------------------

#[test]
fn live_resize_moves_enforced_frequency_on_a_ticking_host() {
    // Two hardware threads (4800 MHz), exactly filled: a (2×1200) and
    // b (2×1200), all vCPUs saturating — each is pinned at its
    // guarantee, so the enforced frequency is observable directly.
    let spec = NodeSpec::custom("live", 1, 1, 2, MHz(2400));
    let gov =
        Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, 1).with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, 5);
    let mut host = SimHost::new(spec, 5).with_engine(engine);
    let a = host.provision(&VmTemplate::new("a", 2, MHz(1200)));
    let b = host.provision(&VmTemplate::new("b", 2, MHz(1200)));
    host.attach_workload(a, Box::new(SteadyDemand::full()));
    host.attach_workload(b, Box::new(SteadyDemand::full()));

    let mut th = TickingHost::new(host).watch(a, VcpuId::new(0));
    let mut ctl = Controller::new(
        ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
        th.host().topology_info(),
    );
    for _ in 0..15 {
        ctl.iterate(&mut th).unwrap();
    }
    let before = th.freqs_of(a, VcpuId::new(0));
    let settled: f64 = before[before.len() - 5..]
        .iter()
        .map(|f| f.as_f64())
        .sum::<f64>()
        / 5.0;
    assert!(
        settled >= 1100.0,
        "pre-resize enforced {settled} MHz, want ≈1200"
    );

    // Live resize a → 600 MHz: host first (source of truth), then the
    // controller hook; then a new VM fills the freed 1200 MHz so the
    // node stays exactly full and a cannot burst past its new cap.
    th.host_mut().set_vfreq(a, MHz(600));
    let c_new = ctl.set_vfreq(a, MHz(600));
    assert_eq!(c_new, Micros(250_000), "C_i = p·F_v/F_max (Eq. 2)");
    // Wallet clamped to the new ceiling: C_i^new × vCPUs × history_len.
    assert!(
        ctl.credit_of(a) <= 250_000 * 2 * 5,
        "wallet {} above the post-resize ceiling",
        ctl.credit_of(a)
    );
    let c = th.host_mut().provision(&VmTemplate::new("c", 1, MHz(1200)));
    th.host_mut()
        .attach_workload(c, Box::new(SteadyDemand::full()));

    for _ in 0..12 {
        ctl.iterate(&mut th).unwrap();
    }
    let all = th.freqs_of(a, VcpuId::new(0));
    let after: f64 = all[all.len() - 5..].iter().map(|f| f.as_f64()).sum::<f64>() / 5.0;
    assert!(
        (480.0..=760.0).contains(&after),
        "post-resize enforced {after} MHz, want ≈600"
    );
}
