//! Scripted degradation tests: precise fault sequences against the full
//! loop, asserting each rung of the ladder documented in
//! `vfc_controller::controller::HealthReport` — stale reuse, skip,
//! write retry, clean VM removal, and the daemon's circuit breaker.

use std::io::ErrorKind;
use vfc::cgroupfs::model::CpuMax;
use vfc::cgroupfs::{FaultInjectingBackend, FaultKind, FaultOp, FaultPlan};
use vfc::controller::daemon::{self, DaemonConfig};
use vfc::controller::ControlMode;
use vfc::cpusched::dvfs::{Governor, GovernorKind};
use vfc::cpusched::engine::Engine;
use vfc::prelude::*;
use vfc::simcore::Micros;

fn quiet_host(threads_per_core: u32, cores: u32, seed: u64) -> SimHost {
    let spec = NodeSpec::custom("degr", 1, cores, threads_per_core, MHz(2400));
    let gov =
        Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, 1).with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, seed);
    SimHost::new(spec, seed).with_engine(engine)
}

fn full_controller(host: &SimHost) -> Controller {
    Controller::new(
        ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
        host.topology_info(),
    )
}

#[test]
fn vm_disappearing_mid_iteration_is_dropped_cleanly() {
    let mut host = quiet_host(2, 4, 1);
    // The victim idles below its guarantee so it accumulates credits —
    // exactly the state that must not leak once it is gone.
    let victim = host.provision(&VmTemplate::new("victim", 2, MHz(600)));
    let other = host.provision(&VmTemplate::new("other", 2, MHz(800)));
    host.attach_workload(victim, Box::new(SteadyDemand::new(0.05)));
    host.attach_workload(other, Box::new(SteadyDemand::full()));
    let mut ctl = full_controller(&host);

    let faulty = &mut FaultInjectingBackend::new(host, FaultPlan::none(), 2);
    for _ in 0..3 {
        faulty.inner_mut().advance_period();
        ctl.iterate(faulty).unwrap();
    }
    assert!(
        ctl.credit_of(victim) > 0,
        "an idle VM below guarantee earns credits"
    );

    // The VM shuts down between the `vms()` listing and the per-vCPU
    // reads: the listing is stale, every read fails as vanished.
    faulty.vanish_vm(victim);
    faulty.inner_mut().advance_period();
    let report = ctl.iterate(faulty).unwrap();
    assert_eq!(report.health.vanished_vms, vec![victim]);
    assert!(report.health.degraded);
    assert!(
        report.vcpus.iter().all(|v| v.addr.vm != victim),
        "no allocation rows for a vanished VM"
    );
    assert!(
        report.credits.iter().all(|(vm, _)| *vm != victim),
        "wallet purged with the VM"
    );
    assert_eq!(ctl.credit_of(victim), 0);

    // The period after, the listing no longer contains it and health is
    // clean again: no dangling retries, no stale quota writes.
    faulty.inner_mut().advance_period();
    let report = ctl.iterate(faulty).unwrap();
    assert!(!report.health.degraded, "{:?}", report.health);
    assert!(report.vcpus.iter().all(|v| v.addr.vm != victim));
    for v in &report.vcpus {
        assert!(v.alloc >= v.guaranteed);
    }
}

#[test]
fn real_deprovision_between_iterations_drops_wallet() {
    let mut host = quiet_host(2, 4, 3);
    let victim = host.provision(&VmTemplate::new("victim", 2, MHz(600)));
    let other = host.provision(&VmTemplate::new("other", 1, MHz(800)));
    host.attach_workload(victim, Box::new(SteadyDemand::new(0.05)));
    host.attach_workload(other, Box::new(SteadyDemand::full()));
    let mut ctl = full_controller(&host);

    for _ in 0..3 {
        host.advance_period();
        ctl.iterate(&mut host).unwrap();
    }
    assert!(ctl.credit_of(victim) > 0);

    // An actual teardown, processed at the next tick boundary: the VM is
    // simply absent from the next listing — no error ever surfaces.
    host.schedule_deprovision(victim);
    host.advance_period();
    let report = ctl.iterate(&mut host).unwrap();
    assert!(!report.health.degraded, "{:?}", report.health);
    assert!(report.vcpus.iter().all(|v| v.addr.vm != victim));
    assert!(report.credits.iter().all(|(vm, _)| *vm != victim));
    assert_eq!(ctl.credit_of(victim), 0);
}

#[test]
fn ebusy_write_is_retried_next_period() {
    // 2 threads, 4 saturating vCPUs: every allocation is below a full
    // period, so every vCPU carries a real (limited) `cpu.max` cap.
    let mut host = quiet_host(2, 1, 5);
    let a = host.provision(&VmTemplate::new("a", 2, MHz(600)));
    let b = host.provision(&VmTemplate::new("b", 2, MHz(600)));
    host.attach_workload(a, Box::new(SteadyDemand::full()));
    host.attach_workload(b, Box::new(SteadyDemand::full()));
    let mut cfg = ControllerConfig::paper_defaults().with_mode(ControlMode::Full);
    // No stale grace: a failed read skips the vCPU immediately, which is
    // what leaves its pending write with no fresh allocation to replace it.
    cfg.stale_sample_ttl = 0;
    let mut ctl = Controller::new(cfg, host.topology_info());

    let faulty = &mut FaultInjectingBackend::new(host, FaultPlan::none(), 6);
    for _ in 0..3 {
        faulty.inner_mut().advance_period();
        ctl.iterate(faulty).unwrap();
    }
    let addr = VcpuAddr::new(a, VcpuId::new(0));
    assert!(
        !faulty
            .inner()
            .vcpu_max(a, addr.vcpu)
            .unwrap()
            .is_unlimited(),
        "contended vCPU must be capped"
    );

    // Drop VM a's demand so this period computes a genuinely *different*
    // capping — an unchanged one would be elided (syscall dedup) and the
    // scripted fault would have no write to intercept.
    faulty
        .inner_mut()
        .attach_workload(a, Box::new(SteadyDemand::new(0.15)));

    // The kernel bounces this period's `cpu.max` write with EBUSY.
    faulty.script_fault(
        FaultOp::SetVcpuMax,
        Some(a),
        Some(addr.vcpu),
        FaultKind::Io(ErrorKind::ResourceBusy),
        1,
    );
    faulty.inner_mut().advance_period();
    let report = ctl.iterate(faulty).unwrap();
    assert_eq!(report.health.write_errors, 1);
    assert_eq!(report.health.write_retries, 0);
    assert!(report.health.degraded);

    // Next period the same vCPU's read also fails, so no fresh allocation
    // supersedes the pending one: the failed write is re-issued as-is.
    faulty.script_fault(
        FaultOp::VcpuUsage,
        Some(a),
        Some(addr.vcpu),
        FaultKind::Io(ErrorKind::Interrupted),
        1,
    );
    faulty.inner_mut().advance_period();
    let report = ctl.iterate(faulty).unwrap();
    assert_eq!(report.health.write_retries, 1);
    assert_eq!(report.health.write_errors, 0, "the retry succeeds");
    assert_eq!(report.health.skipped_vcpus, vec![addr]);
    assert!(!faulty
        .inner()
        .vcpu_max(a, addr.vcpu)
        .unwrap()
        .is_unlimited());

    // Fully clean again afterwards.
    faulty.inner_mut().advance_period();
    let report = ctl.iterate(faulty).unwrap();
    assert!(!report.health.degraded, "{:?}", report.health);
}

#[test]
fn single_vcpu_read_failure_never_aborts_iterate() {
    let mut host = quiet_host(2, 4, 7);
    let a = host.provision(&VmTemplate::new("a", 2, MHz(600)));
    let b = host.provision(&VmTemplate::new("b", 2, MHz(800)));
    host.attach_workload(a, Box::new(SteadyDemand::full()));
    host.attach_workload(b, Box::new(SteadyDemand::full()));
    let mut ctl = full_controller(&host);

    let faulty = &mut FaultInjectingBackend::new(host, FaultPlan::none(), 8);
    faulty.inner_mut().advance_period();
    ctl.iterate(faulty).unwrap();

    // Default TTL (2): the first failure is answered from the stale
    // cache, so the vCPU still gets a full report row.
    let addr = VcpuAddr::new(a, VcpuId::new(1));
    faulty.script_fault(
        FaultOp::VcpuUsage,
        Some(a),
        Some(addr.vcpu),
        FaultKind::Io(ErrorKind::Interrupted),
        1,
    );
    faulty.inner_mut().advance_period();
    let report = ctl
        .iterate(faulty)
        .expect("a single failing read must not abort");
    assert_eq!(report.health.read_errors, 1);
    assert_eq!(report.health.stale_reused, 1);
    assert!(report.health.skipped_vcpus.is_empty());
    assert!(report.vcpu(addr).is_some(), "stale reuse keeps the row");
    assert_eq!(report.vcpus.len(), 4);
}

#[test]
fn circuit_breaker_uncaps_everything_and_exits() {
    let mut host = quiet_host(2, 1, 9);
    let a = host.provision(&VmTemplate::new("a", 2, MHz(600)));
    host.attach_workload(a, Box::new(SteadyDemand::full()));
    // Caps left over from the controller's previous life.
    for j in 0..2 {
        host.set_vcpu_max(a, VcpuId::new(j), CpuMax::limited(Micros(25_000)))
            .unwrap();
    }

    // Every usage read fails, forever: the host is unobservable.
    let plan = FaultPlan::none()
        .with_rate(FaultOp::VcpuUsage, 1.0)
        .with_kinds(&[FaultKind::Io(ErrorKind::Interrupted)]);
    let mut faulty = FaultInjectingBackend::new(host, plan, 10);

    let mut cfg = DaemonConfig::default();
    cfg.controller.mode = ControlMode::Full;
    cfg.controller.period = Micros(1000); // keep the test's sleeps tiny
    cfg.iterations = Some(50);
    cfg.max_consecutive_errors = 3;
    let err = daemon::run_with_backend(cfg, &mut faulty).unwrap_err();
    assert!(err.contains("circuit breaker"), "{err}");

    for j in 0..2 {
        assert!(
            faulty
                .inner()
                .vcpu_max(a, VcpuId::new(j))
                .unwrap()
                .is_unlimited(),
            "tenants must be left uncapped, never half-throttled"
        );
    }
}

#[test]
fn disabled_circuit_breaker_soldiers_on() {
    let mut host = quiet_host(2, 1, 11);
    let a = host.provision(&VmTemplate::new("a", 1, MHz(600)));
    host.attach_workload(a, Box::new(SteadyDemand::full()));
    let plan = FaultPlan::none()
        .with_rate(FaultOp::VcpuUsage, 1.0)
        .with_kinds(&[FaultKind::Io(ErrorKind::Interrupted)]);
    let mut faulty = FaultInjectingBackend::new(host, plan, 12);

    let mut cfg = DaemonConfig::default();
    cfg.controller.mode = ControlMode::Full;
    cfg.controller.period = Micros(1000);
    cfg.iterations = Some(5);
    cfg.max_consecutive_errors = 0; // breaker off
    assert_eq!(daemon::run_with_backend(cfg, &mut faulty), Ok(5));
}
