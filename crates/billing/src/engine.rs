//! The billing engine: metering intake, the persistent ledger, and the
//! `vfc_bill_*` telemetry families, behind one object the control plane
//! (or an experiment driver) owns.
//!
//! Per period the owner aggregates cluster usage into
//! [`TenantPeriodUsage`] rows and calls [`BillingEngine::meter_period`];
//! the engine appends ledger records, prices them incrementally and
//! bumps the revenue/penalty counters. [`BillingEngine::checkpoint`]
//! persists the ledger atomically; [`BillingEngine::with_ledger`]
//! replays it after a restart — counters and invoices come back exactly
//! as if the process had never died.

use crate::invoice::{self, Invoice, SpecAudit};
use crate::ledger::{LedgerError, UsageLedger, UsageRecord};
use crate::pricing::{price_record, PricingConfig, SlaClass};
use std::io;
use std::path::PathBuf;
use vfc_telemetry::{MetricId, Registry};

/// Class labels of `vfc_bill_class_revenue_microcents_total`, in index
/// order.
const CLASS_LABELS: [&str; 2] = ["guaranteed", "burstable"];

/// One tenant's aggregated usage for one period at one frequency tier —
/// the metering intake row (a [`UsageRecord`] minus the positions the
/// engine assigns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantPeriodUsage {
    /// Tenant billed.
    pub tenant: String,
    /// Frequency tier (`F_v`), MHz.
    pub vfreq_mhz: u32,
    /// VM-periods aggregated.
    pub vm_periods: u64,
    /// Reserved work, MHz·s.
    pub guaranteed_mhz_s: u64,
    /// Delivered work, MHz·s.
    pub delivered_mhz_s: u64,
    /// Auction-won cycles, µs of `F^MAX`.
    pub auction_usec: u64,
    /// Credits minted, µs.
    pub minted_usec: u64,
    /// Share of cluster-wasted market cycles, µs.
    pub wasted_share_usec: u64,
    /// Demanding VM-periods.
    pub demanding_vm_periods: u64,
    /// Violated VM-periods.
    pub violated_vm_periods: u64,
}

/// See module docs.
#[derive(Debug)]
pub struct BillingEngine {
    cfg: PricingConfig,
    ledger: UsageLedger,
    path: Option<PathBuf>,
    registry: Registry,
    revenue: MetricId,
    penalties: MetricId,
    class_revenue: MetricId,
    spot_price: MetricId,
    periods_metered: MetricId,
    records_total: MetricId,
}

impl BillingEngine {
    /// A fresh engine with an empty, unpersisted ledger.
    pub fn new(cfg: PricingConfig) -> Self {
        let mut r = Registry::new();
        let revenue = r.counter_dyn(
            "vfc_bill_revenue_microcents_total",
            "Gross revenue billed per tenant (µ¢)",
            "tenant",
        );
        let penalties = r.counter_dyn(
            "vfc_bill_penalty_microcents_total",
            "SLO penalty credits owed back per tenant (µ¢)",
            "tenant",
        );
        let class_revenue = r.counter_vec(
            "vfc_bill_class_revenue_microcents_total",
            "Gross revenue billed per SLA class (µ¢)",
            "class",
            &CLASS_LABELS,
        );
        let spot_price = r.gauge(
            "vfc_bill_spot_price_microcents_per_ghz_s",
            "Spot rate for auction-won cycles at F_MAX (µ¢ per GHz·s; 0 = no burstable tenants)",
        );
        let periods_metered = r.counter(
            "vfc_bill_periods_metered_total",
            "Periods the metering pipeline processed",
        );
        let records_total = r.counter(
            "vfc_bill_usage_records_total",
            "Usage records appended to the ledger",
        );
        let mut engine = BillingEngine {
            cfg,
            ledger: UsageLedger::new(),
            path: None,
            registry: r,
            revenue,
            penalties,
            class_revenue,
            spot_price,
            periods_metered,
            records_total,
        };
        engine.refresh_spot_gauge();
        engine
    }

    /// An engine persisted at `path`: loads and replays an existing
    /// ledger (telemetry counters come back as if uninterrupted), or
    /// starts fresh when the file does not exist yet. Any defect in an
    /// existing file is a hard error — billing never guesses.
    pub fn with_ledger(cfg: PricingConfig, path: PathBuf) -> Result<Self, LedgerError> {
        let mut engine = BillingEngine::new(cfg);
        match UsageLedger::load(&path) {
            Ok(ledger) => {
                let mut last = None;
                for r in ledger.records() {
                    if last != Some(r.period) {
                        engine.registry.inc(engine.periods_metered, 0, 1);
                        last = Some(r.period);
                    }
                    engine.account(r);
                }
                engine.ledger = ledger;
            }
            Err(LedgerError::Missing) => {}
            Err(e) => return Err(e),
        }
        engine.path = Some(path);
        Ok(engine)
    }

    /// The pricing configuration in force.
    pub fn config(&self) -> &PricingConfig {
        &self.cfg
    }

    /// The in-memory ledger (append order).
    pub fn ledger(&self) -> &UsageLedger {
        &self.ledger
    }

    /// Meter one period: append one ledger record per intake row (rows
    /// are sorted by tenant then tier, so ledgers are deterministic for
    /// a given usage set) and bill them incrementally.
    pub fn meter_period(&mut self, period: u64, mut usage: Vec<TenantPeriodUsage>) {
        usage.sort_by(|a, b| (&a.tenant, a.vfreq_mhz).cmp(&(&b.tenant, b.vfreq_mhz)));
        self.registry.inc(self.periods_metered, 0, 1);
        for u in usage {
            let record = UsageRecord {
                seq: 0, // assigned by the ledger
                period,
                tenant: u.tenant,
                vfreq_mhz: u.vfreq_mhz,
                vm_periods: u.vm_periods,
                guaranteed_mhz_s: u.guaranteed_mhz_s,
                delivered_mhz_s: u.delivered_mhz_s,
                auction_usec: u.auction_usec,
                minted_usec: u.minted_usec,
                wasted_share_usec: u.wasted_share_usec,
                demanding_vm_periods: u.demanding_vm_periods,
                violated_vm_periods: u.violated_vm_periods,
            };
            self.ledger.push(record);
            let r = self.ledger.records().last().expect("just pushed");
            let (revenue, penalties, class_revenue, records_total) = (
                self.revenue,
                self.penalties,
                self.class_revenue,
                self.records_total,
            );
            let charge = price_record(&self.cfg, r);
            let class_idx = match self.cfg.class_of(&r.tenant) {
                SlaClass::Guaranteed { .. } => 0,
                SlaClass::Burstable { .. } => 1,
            };
            self.registry.inc_dyn(revenue, &r.tenant, charge.gross());
            self.registry
                .inc_dyn(penalties, &r.tenant, charge.penalty_microcents);
            self.registry.inc(class_revenue, class_idx, charge.gross());
            self.registry.inc(records_total, 0, 1);
        }
    }

    /// Bill one already-appended record onto the telemetry counters
    /// (replay path).
    fn account(&mut self, r: &UsageRecord) {
        let charge = price_record(&self.cfg, r);
        let class_idx = match self.cfg.class_of(&r.tenant) {
            SlaClass::Guaranteed { .. } => 0,
            SlaClass::Burstable { .. } => 1,
        };
        self.registry
            .inc_dyn(self.revenue, &r.tenant, charge.gross());
        self.registry
            .inc_dyn(self.penalties, &r.tenant, charge.penalty_microcents);
        self.registry
            .inc(self.class_revenue, class_idx, charge.gross());
        self.registry.inc(self.records_total, 0, 1);
    }

    /// Persist the ledger atomically (no-op without a path).
    pub fn checkpoint(&self) -> io::Result<()> {
        match &self.path {
            Some(p) => self.ledger.save(p),
            None => Ok(()),
        }
    }

    /// Generate `tenant`'s invoice over everything metered so far.
    pub fn invoice(&self, tenant: &str, audit: SpecAudit) -> Invoice {
        invoice::generate(tenant, audit, &self.ledger, &self.cfg)
    }

    /// `tenant`'s raw usage records, append order.
    pub fn history(&self, tenant: &str) -> Vec<&UsageRecord> {
        self.ledger
            .records()
            .iter()
            .filter(|r| r.tenant == tenant)
            .collect()
    }

    /// The `vfc_bill_*` registry (for merged expositions).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Render the `vfc_bill_*` families as a Prometheus text page.
    pub fn render_telemetry(&self) -> String {
        vfc_telemetry::render(&self.registry, None)
    }

    /// Recompute the spot-price gauge: the curve rate at `F^MAX` times
    /// the highest spot multiplier any burstable tenant pays (0 when no
    /// tenant is burstable).
    fn refresh_spot_gauge(&mut self) {
        let rate = self
            .cfg
            .curve
            .rate_microcents_per_ghz_s(self.cfg.fmax_mhz, self.cfg.fmax_mhz);
        let max_mult = self
            .cfg
            .classes
            .values()
            .filter_map(|c| match c {
                SlaClass::Burstable {
                    spot_multiplier_pct,
                    ..
                } => Some(*spot_multiplier_pct as u64),
                SlaClass::Guaranteed { .. } => None,
            })
            .max()
            .unwrap_or(0);
        let spot = rate as u128 * max_mult as u128 / 100;
        self.registry.set(self.spot_price, 0, spot as u64);
    }

    /// Replace a tenant's SLA class (affects pricing of future records
    /// and of invoices generated from now on) and refresh the spot
    /// gauge.
    pub fn set_class(&mut self, tenant: &str, class: SlaClass) {
        self.cfg.classes.insert(tenant.to_owned(), class);
        self.refresh_spot_gauge();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::PriceCurve;

    fn usage(tenant: &str, violated: u64) -> TenantPeriodUsage {
        TenantPeriodUsage {
            tenant: tenant.to_owned(),
            vfreq_mhz: 500,
            vm_periods: 2,
            guaranteed_mhz_s: 2_000,
            delivered_mhz_s: 1_800,
            auction_usec: 100_000,
            minted_usec: 40,
            wasted_share_usec: 7,
            demanding_vm_periods: 2,
            violated_vm_periods: violated,
        }
    }

    fn config() -> PricingConfig {
        let mut cfg = PricingConfig::linear(1_000, 2_400);
        cfg.classes.insert(
            "burst".to_owned(),
            SlaClass::Burstable {
                base_discount_pct: 50,
                spot_multiplier_pct: 150,
            },
        );
        cfg
    }

    #[test]
    fn metering_bills_to_telemetry() {
        let mut e = BillingEngine::new(config());
        e.meter_period(1, vec![usage("acme", 1), usage("burst", 0)]);
        let page = e.render_telemetry();
        // acme (guaranteed, default penalty 10000): 2 GHz·s → 2000 µ¢.
        assert!(page.contains("vfc_bill_revenue_microcents_total{tenant=\"acme\"} 2000"));
        assert!(page.contains("vfc_bill_penalty_microcents_total{tenant=\"acme\"} 10000"));
        assert!(page.contains("vfc_bill_class_revenue_microcents_total{class=\"guaranteed\"} 2000"));
        // spot gauge: 1000 µ¢ × 150 %.
        assert!(page.contains("vfc_bill_spot_price_microcents_per_ghz_s 1500"));
        assert!(page.contains("vfc_bill_periods_metered_total 1"));
        assert!(page.contains("vfc_bill_usage_records_total 2"));
    }

    #[test]
    fn restart_replays_ledger_and_telemetry() {
        let dir = std::env::temp_dir().join(format!("vfc-engine-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("usage.ledger");
        std::fs::remove_file(&path).ok();

        // Uninterrupted reference run.
        let mut reference = BillingEngine::new(config());
        for p in 1..=6u64 {
            reference.meter_period(p, vec![usage("acme", p % 2), usage("burst", 0)]);
        }

        // Killed-and-restarted run: checkpoint after period 3, rebuild,
        // continue.
        let mut first = BillingEngine::with_ledger(config(), path.clone()).unwrap();
        for p in 1..=3u64 {
            first.meter_period(p, vec![usage("acme", p % 2), usage("burst", 0)]);
        }
        first.checkpoint().unwrap();
        drop(first); // the crash

        let mut second = BillingEngine::with_ledger(config(), path.clone()).unwrap();
        for p in 4..=6u64 {
            second.meter_period(p, vec![usage("acme", p % 2), usage("burst", 0)]);
        }

        assert_eq!(second.ledger().records(), reference.ledger().records());
        assert_eq!(second.render_telemetry(), reference.render_telemetry());
        let audit = SpecAudit::default();
        assert_eq!(
            second.invoice("acme", audit).render_json(),
            reference.invoice("acme", audit).render_json()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_ledger_fails_closed() {
        let dir = std::env::temp_dir().join(format!("vfc-engine-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("usage.ledger");
        let mut e = BillingEngine::with_ledger(config(), path.clone()).unwrap();
        e.meter_period(1, vec![usage("acme", 0)]);
        e.checkpoint().unwrap();
        // Chop the seal off: simulated torn write.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.rsplit_once("{\"seal\"").unwrap().0.to_owned();
        std::fs::write(&path, cut).unwrap();
        match BillingEngine::with_ledger(config(), path.clone()) {
            Err(LedgerError::Truncated { .. }) => {}
            other => panic!("want truncation rejection, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spot_gauge_tracks_class_changes() {
        let mut e = BillingEngine::new(PricingConfig {
            curve: PriceCurve::Linear {
                microcents_per_ghz_s: 800,
            },
            classes: Default::default(),
            fmax_mhz: 2_400,
        });
        assert!(e
            .render_telemetry()
            .contains("vfc_bill_spot_price_microcents_per_ghz_s 0"));
        e.set_class(
            "t",
            SlaClass::Burstable {
                base_discount_pct: 0,
                spot_multiplier_pct: 200,
            },
        );
        assert!(e
            .render_telemetry()
            .contains("vfc_bill_spot_price_microcents_per_ghz_s 1600"));
    }
}
