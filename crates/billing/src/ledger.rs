//! The crash-safe usage ledger: every metered tenant-period, appended in
//! order and persisted atomically.
//!
//! The on-disk format is JSON lines:
//!
//! ```text
//! {"version":1}
//! {"seq":0,"period":1,"tenant":"acme","vfreq_mhz":500, ...}
//! {"seq":1,"period":1,"tenant":"bob","vfreq_mhz":1200, ...}
//! {"seal":2}
//! ```
//!
//! * line 1 is the format header;
//! * every record carries a `seq` that must be exactly its position —
//!   a gap or repeat means the file was hand-edited or interleaved;
//! * the last line is a **seal** holding the record count. A file
//!   without a seal, or whose seal disagrees with the record count, was
//!   truncated mid-write and is rejected as a whole — a bill must never
//!   silently shrink.
//!
//! Persistence uses the same discipline as `vfc_controller::persist`:
//! write `<path>.tmp`, fsync, rename. A crash leaves either the old
//! complete file or the new complete file, never a torn one. Loading
//! never panics: every defect maps to a typed [`LedgerError`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// On-disk format version this build writes and accepts.
pub const LEDGER_VERSION: u32 = 1;

/// One metered tenant-period at one guaranteed frequency: what a tenant's
/// VMs running at `vfreq_mhz` were promised, received and traded during
/// one control period. The `(period, tenant, vfreq_mhz)` granularity
/// preserves the frequency tier, which tiered price curves bill on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsageRecord {
    /// Position in the ledger (assigned on append; contiguous from 0).
    pub seq: u64,
    /// Control period the usage occurred in (1-based).
    pub period: u64,
    /// Tenant billed for this usage.
    pub tenant: String,
    /// Guaranteed virtual frequency per vCPU (`F_v`), MHz — the price
    /// tier.
    pub vfreq_mhz: u32,
    /// VM-periods aggregated into this record.
    pub vm_periods: u64,
    /// Reserved work: Σ `k_v × F_v` over those VM-periods, MHz·s.
    pub guaranteed_mhz_s: u64,
    /// Work actually delivered (exact per-vCPU frequencies), MHz·s.
    pub delivered_mhz_s: u64,
    /// Auction-won cycles (credits spent, Alg. 1), µs of `F^MAX` time.
    pub auction_usec: u64,
    /// Credits minted by under-consumption (Eq. 4), µs.
    pub minted_usec: u64,
    /// This tenant's share of market cycles the cluster wasted, µs.
    pub wasted_share_usec: u64,
    /// VM-periods in which a VM demanded at least its guarantee.
    pub demanding_vm_periods: u64,
    /// Of those, VM-periods below the delivery tolerance (violations).
    pub violated_vm_periods: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    version: u32,
}

#[derive(Debug, Serialize, Deserialize)]
struct Seal {
    seal: u64,
}

/// Why a ledger file was rejected. Every variant is a *validated* error:
/// loading never panics and never returns a silently shortened ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The file does not exist (a fresh deployment, not a defect).
    Missing,
    /// The file could not be read (permissions, I/O, bad UTF-8).
    Io(String),
    /// The header is missing, malformed, or a version this build does
    /// not speak.
    Version(String),
    /// A line failed to parse or appeared after the seal.
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A record's `seq` broke contiguity.
    Gap {
        /// 1-based line number of the offending record.
        line: usize,
        /// The `seq` the chain required.
        expected: u64,
        /// The `seq` actually present.
        found: u64,
    },
    /// No seal, or the seal disagrees with the record count — the tail
    /// was truncated mid-write.
    Truncated {
        /// The count the seal claims, if a seal was present at all.
        sealed: Option<u64>,
        /// Records actually present.
        found: u64,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Missing => write!(f, "ledger file missing"),
            LedgerError::Io(e) => write!(f, "ledger io: {e}"),
            LedgerError::Version(e) => write!(f, "ledger header: {e}"),
            LedgerError::Corrupt { line, reason } => {
                write!(f, "ledger corrupt at line {line}: {reason}")
            }
            LedgerError::Gap {
                line,
                expected,
                found,
            } => write!(
                f,
                "ledger seq gap at line {line}: expected {expected}, found {found}"
            ),
            LedgerError::Truncated { sealed, found } => match sealed {
                Some(n) => write!(f, "ledger truncated: seal says {n}, found {found} records"),
                None => write!(f, "ledger truncated: no seal after {found} records"),
            },
        }
    }
}

impl std::error::Error for LedgerError {}

/// The in-memory ledger: an append-only record list. Appends assign
/// `seq`; [`UsageLedger::save`] persists the whole ledger atomically
/// (callers checkpoint at period granularity, so rewrites stay small —
/// one line per tenant×tier×period).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsageLedger {
    records: Vec<UsageRecord>,
}

impl UsageLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        UsageLedger::default()
    }

    /// Append a record; its `seq` is overwritten with the next position.
    pub fn push(&mut self, mut record: UsageRecord) {
        record.seq = self.records.len() as u64;
        self.records.push(record);
    }

    /// All records, in append order.
    pub fn records(&self) -> &[UsageRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been metered yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Render the full on-disk form (header, records, seal).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64 + self.records.len() * 160);
        out.push_str(
            &serde_json::to_string(&Header {
                version: LEDGER_VERSION,
            })
            .expect("header serializes"),
        );
        out.push('\n');
        for r in &self.records {
            out.push_str(&serde_json::to_string(r).expect("record serializes"));
            out.push('\n');
        }
        out.push_str(
            &serde_json::to_string(&Seal {
                seal: self.records.len() as u64,
            })
            .expect("seal serializes"),
        );
        out.push('\n');
        out
    }

    /// Persist atomically: write `<path>.tmp`, fsync, rename over
    /// `path`. After a crash at any point the file at `path` is either
    /// the previous complete ledger or this one — never a torn mix.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = tmp_path(path);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(self.render().as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)
    }

    /// Load and fully validate a ledger file. See [`LedgerError`] for
    /// the rejection taxonomy; in particular a truncated tail rejects
    /// the whole file rather than returning a silently short bill.
    pub fn load(path: &Path) -> Result<Self, LedgerError> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(LedgerError::Missing),
            Err(e) => return Err(LedgerError::Io(e.to_string())),
        };
        Self::parse(&text)
    }

    /// Validate the textual form (the testable core of [`UsageLedger::load`]).
    pub fn parse(text: &str) -> Result<Self, LedgerError> {
        let mut lines = text.lines().enumerate();
        let Some((_, header)) = lines.next() else {
            return Err(LedgerError::Version("empty file".to_owned()));
        };
        match serde_json::from_str::<Header>(header) {
            Ok(h) if h.version == LEDGER_VERSION => {}
            Ok(h) => {
                return Err(LedgerError::Version(format!(
                    "version {} not supported (want {LEDGER_VERSION})",
                    h.version
                )))
            }
            Err(e) => return Err(LedgerError::Version(e.to_string())),
        }
        let mut records = Vec::new();
        let mut sealed: Option<u64> = None;
        for (idx, line) in lines {
            let lineno = idx + 1; // 1-based
            if sealed.is_some() {
                return Err(LedgerError::Corrupt {
                    line: lineno,
                    reason: "content after seal".to_owned(),
                });
            }
            if let Ok(s) = serde_json::from_str::<Seal>(line) {
                sealed = Some(s.seal);
                continue;
            }
            let record: UsageRecord =
                serde_json::from_str(line).map_err(|e| LedgerError::Corrupt {
                    line: lineno,
                    reason: e.to_string(),
                })?;
            let expected = records.len() as u64;
            if record.seq != expected {
                return Err(LedgerError::Gap {
                    line: lineno,
                    expected,
                    found: record.seq,
                });
            }
            records.push(record);
        }
        let found = records.len() as u64;
        match sealed {
            Some(n) if n == found => Ok(UsageLedger { records }),
            sealed => Err(LedgerError::Truncated { sealed, found }),
        }
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn record(seq: u64, period: u64, tenant: &str) -> UsageRecord {
        UsageRecord {
            seq,
            period,
            tenant: tenant.to_owned(),
            vfreq_mhz: 500,
            vm_periods: 2,
            guaranteed_mhz_s: 2_000,
            delivered_mhz_s: 1_900,
            auction_usec: 120,
            minted_usec: 80,
            wasted_share_usec: 10,
            demanding_vm_periods: 2,
            violated_vm_periods: 1,
        }
    }

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vfc-ledger-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_through_disk() {
        let path = dir("rt").join("usage.ledger");
        let mut l = UsageLedger::new();
        l.push(record(9, 1, "acme")); // seq is overwritten
        l.push(record(9, 1, "bob"));
        l.push(record(9, 2, "acme"));
        l.save(&path).unwrap();
        let back = UsageLedger::load(&path).unwrap();
        assert_eq!(back, l);
        assert_eq!(back.records()[2].seq, 2);
        assert!(!path.with_extension("ledger.tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_distinguished() {
        let path = dir("missing").join("never-written.ledger");
        assert_eq!(UsageLedger::load(&path), Err(LedgerError::Missing));
    }

    #[test]
    fn truncated_tail_is_rejected_not_shortened() {
        let mut l = UsageLedger::new();
        l.push(record(0, 1, "acme"));
        l.push(record(0, 1, "bob"));
        let full = l.render();
        // Drop the seal line: mid-write crash shape.
        let cut = full.rsplit_once("{\"seal\"").unwrap().0;
        match UsageLedger::parse(cut) {
            Err(LedgerError::Truncated {
                sealed: None,
                found: 2,
            }) => {}
            other => panic!("want truncation, got {other:?}"),
        }
        // Drop the last record but keep the (now wrong) seal.
        let lines: Vec<&str> = full.lines().collect();
        let missing_rec = format!("{}\n{}\n{}\n", lines[0], lines[1], lines[3]);
        match UsageLedger::parse(&missing_rec) {
            Err(LedgerError::Truncated {
                sealed: Some(2),
                found: 1,
            }) => {}
            other => panic!("want seal mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_line_and_gap_are_typed() {
        let mut l = UsageLedger::new();
        l.push(record(0, 1, "acme"));
        let mut text = l.render();
        text = text.replace("\"tenant\":\"acme\"", "\"tenant\":42");
        match UsageLedger::parse(&text) {
            Err(LedgerError::Corrupt { line: 2, .. }) => {}
            other => panic!("want corrupt line 2, got {other:?}"),
        }
        let mut skipped = UsageLedger::new();
        skipped.push(record(0, 1, "acme"));
        // Seal stays correct (1 record), so the gap is what trips.
        let gap = skipped.render().replace("\"seq\":0", "\"seq\":3");
        match UsageLedger::parse(&gap) {
            Err(LedgerError::Gap {
                line: 2,
                expected: 0,
                found: 3,
            }) => {}
            other => panic!("want gap, got {other:?}"),
        }
    }

    #[test]
    fn content_after_seal_is_corrupt() {
        let mut l = UsageLedger::new();
        l.push(record(0, 1, "acme"));
        let text = format!("{}{{\"seq\":1}}\n", l.render());
        match UsageLedger::parse(&text) {
            Err(LedgerError::Corrupt { line: 4, .. }) => {}
            other => panic!("want trailing corrupt, got {other:?}"),
        }
    }
}
