//! Price curves and SLA classes: how metered virtual-frequency usage
//! becomes money.
//!
//! Following Lučanin et al.'s performance-based pricing, the billable
//! quantity is CPU frequency actually provisioned over time — here
//! MHz·seconds of virtual frequency, the exact quantity the controller
//! enforces. All arithmetic is integer (µ¢, microcents) so invoices are
//! bit-deterministic across runs and platforms; curves and classes are
//! serde round-trippable so deployments can load them from JSON.

use serde::{Deserialize, Serialize};

/// One step of a [`PriceCurve::TieredStep`] curve.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriceTier {
    /// The tier applies to guaranteed frequencies up to this, MHz
    /// (inclusive). Tiers must be sorted ascending; frequencies above
    /// the last tier pay the last tier's rate.
    pub up_to_mhz: u32,
    /// Rate for the tier, µ¢ per GHz·second.
    pub microcents_per_ghz_s: u64,
}

/// A frequency-tiered price curve: µ¢ per GHz·second as a function of
/// the VM's guaranteed virtual frequency `F_v`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PriceCurve {
    /// One flat rate regardless of `F_v`.
    Linear {
        /// Rate, µ¢ per GHz·second.
        microcents_per_ghz_s: u64,
    },
    /// Stepwise rates by `F_v` bracket (small/medium/large pricing).
    TieredStep {
        /// Brackets, sorted ascending by [`PriceTier::up_to_mhz`].
        tiers: Vec<PriceTier>,
    },
    /// Convex in `F_v`: high guarantees pay a superlinear premium, the
    /// shape both Lučanin papers argue matches scarcity of fast cores:
    /// `base + premium × (F_v / F^MAX)²`.
    Convex {
        /// Rate floor, µ¢ per GHz·second.
        base_microcents_per_ghz_s: u64,
        /// Premium at `F_v = F^MAX`, µ¢ per GHz·second.
        premium_microcents_per_ghz_s: u64,
    },
}

impl PriceCurve {
    /// The rate (µ¢ per GHz·s) for a VM guaranteed `vfreq_mhz` on hosts
    /// with `fmax_mhz` cores.
    pub fn rate_microcents_per_ghz_s(&self, vfreq_mhz: u32, fmax_mhz: u32) -> u64 {
        match self {
            PriceCurve::Linear {
                microcents_per_ghz_s,
            } => *microcents_per_ghz_s,
            PriceCurve::TieredStep { tiers } => tiers
                .iter()
                .find(|t| vfreq_mhz <= t.up_to_mhz)
                .or_else(|| tiers.last())
                .map(|t| t.microcents_per_ghz_s)
                .unwrap_or(0),
            PriceCurve::Convex {
                base_microcents_per_ghz_s,
                premium_microcents_per_ghz_s,
            } => {
                let f = vfreq_mhz.min(fmax_mhz) as u128;
                let fmax = (fmax_mhz as u128).max(1);
                let premium = *premium_microcents_per_ghz_s as u128 * f * f / (fmax * fmax);
                base_microcents_per_ghz_s + premium as u64
            }
        }
    }

    /// Charge for `mhz_s` MHz·seconds delivered/reserved at tier
    /// `vfreq_mhz`: `rate × mhz_s / 1000` (µ¢), floor-rounded.
    pub fn charge_microcents(&self, vfreq_mhz: u32, fmax_mhz: u32, mhz_s: u64) -> u64 {
        let rate = self.rate_microcents_per_ghz_s(vfreq_mhz, fmax_mhz) as u128;
        (rate * mhz_s as u128 / 1_000) as u64
    }

    /// Short identifier for reports (`linear` / `tiered` / `convex`).
    pub fn kind(&self) -> &'static str {
        match self {
            PriceCurve::Linear { .. } => "linear",
            PriceCurve::TieredStep { .. } => "tiered",
            PriceCurve::Convex { .. } => "convex",
        }
    }
}

/// The service class a tenant buys. Determines *what* is billed: the
/// reservation (with a compensation scheme) or the delivery (with a
/// spot market for bursts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlaClass {
    /// Fixed `F_v`: the tenant pays the curve on *reserved* MHz·s
    /// whether used or not, and receives a penalty credit for every
    /// violated VM-period (the guarantee is the product).
    Guaranteed {
        /// Credit per violated VM-period, µ¢.
        penalty_microcents_per_violation: u64,
    },
    /// Cheap base `F_v`: the tenant pays a discounted curve on
    /// *delivered* MHz·s (capped at the guarantee) and pays auction-won
    /// burst cycles at a spot multiplier. No violation compensation.
    Burstable {
        /// Percent off the curve for base (guaranteed-tier) delivery.
        base_discount_pct: u32,
        /// Spot price for auction-won cycles, percent of the curve rate
        /// (e.g. 150 = 1.5×).
        spot_multiplier_pct: u32,
    },
}

impl SlaClass {
    /// Class label used in telemetry and invoices.
    pub fn name(&self) -> &'static str {
        match self {
            SlaClass::Guaranteed { .. } => "guaranteed",
            SlaClass::Burstable { .. } => "burstable",
        }
    }
}

impl Default for SlaClass {
    /// Tenants default to the paper's implicit contract: a hard
    /// guarantee, with a 1 ¢ credit per violated VM-period.
    fn default() -> Self {
        SlaClass::Guaranteed {
            penalty_microcents_per_violation: 10_000,
        }
    }
}

/// Everything needed to price a usage ledger: the curve, each tenant's
/// SLA class (absent tenants default to [`SlaClass::default`]), and the
/// host `F^MAX` that converts auction µs into MHz·s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PricingConfig {
    /// The price curve in force.
    pub curve: PriceCurve,
    /// Tenant → SLA class.
    pub classes: std::collections::BTreeMap<String, SlaClass>,
    /// Host core frequency `F^MAX`, MHz (auction cycles are µs of this).
    pub fmax_mhz: u32,
}

impl PricingConfig {
    /// A linear-curve config with no per-tenant overrides.
    pub fn linear(microcents_per_ghz_s: u64, fmax_mhz: u32) -> Self {
        PricingConfig {
            curve: PriceCurve::Linear {
                microcents_per_ghz_s,
            },
            classes: Default::default(),
            fmax_mhz,
        }
    }

    /// The SLA class in force for `tenant`.
    pub fn class_of(&self, tenant: &str) -> SlaClass {
        self.classes.get(tenant).cloned().unwrap_or_default()
    }

    /// Convert auction-won µs of `F^MAX` time into MHz·s.
    pub fn auction_usec_to_mhz_s(&self, usec: u64) -> u64 {
        (usec as u128 * self.fmax_mhz as u128 / 1_000_000) as u64
    }
}

/// The priced outcome of one [`crate::ledger::UsageRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordCharge {
    /// Curve charge for the base usage (reserved or delivered MHz·s,
    /// by class), µ¢.
    pub base_microcents: u64,
    /// Spot charge for auction-won cycles (burstable only), µ¢.
    pub spot_microcents: u64,
    /// Penalty credit owed back to the tenant (guaranteed only), µ¢.
    pub penalty_microcents: u64,
}

impl RecordCharge {
    /// Gross revenue (before penalty credits), µ¢.
    pub fn gross(&self) -> u64 {
        self.base_microcents + self.spot_microcents
    }

    /// Net revenue after penalty credits, µ¢ (may be negative).
    pub fn net(&self) -> i64 {
        self.gross() as i64 - self.penalty_microcents as i64
    }
}

/// Price one usage record under `cfg`. Pure and integer-only: the same
/// record and config produce the same charge on every platform.
pub fn price_record(cfg: &PricingConfig, r: &crate::ledger::UsageRecord) -> RecordCharge {
    match cfg.class_of(&r.tenant) {
        SlaClass::Guaranteed {
            penalty_microcents_per_violation,
        } => RecordCharge {
            base_microcents: cfg.curve.charge_microcents(
                r.vfreq_mhz,
                cfg.fmax_mhz,
                r.guaranteed_mhz_s,
            ),
            spot_microcents: 0,
            penalty_microcents: penalty_microcents_per_violation * r.violated_vm_periods,
        },
        SlaClass::Burstable {
            base_discount_pct,
            spot_multiplier_pct,
        } => {
            let base_mhz_s = r.delivered_mhz_s.min(r.guaranteed_mhz_s);
            let full = cfg
                .curve
                .charge_microcents(r.vfreq_mhz, cfg.fmax_mhz, base_mhz_s)
                as u128;
            let discounted = full * (100u128.saturating_sub(base_discount_pct as u128)) / 100;
            let burst_mhz_s = cfg.auction_usec_to_mhz_s(r.auction_usec);
            let spot = cfg
                .curve
                .charge_microcents(r.vfreq_mhz, cfg.fmax_mhz, burst_mhz_s)
                as u128
                * spot_multiplier_pct as u128
                / 100;
            RecordCharge {
                base_microcents: discounted as u64,
                spot_microcents: spot as u64,
                penalty_microcents: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::UsageRecord;

    fn rec(tenant: &str) -> UsageRecord {
        UsageRecord {
            seq: 0,
            period: 1,
            tenant: tenant.to_owned(),
            vfreq_mhz: 1_200,
            vm_periods: 1,
            guaranteed_mhz_s: 4_800,
            delivered_mhz_s: 5_200,
            auction_usec: 100_000, // 0.1 s of F_MAX
            minted_usec: 0,
            wasted_share_usec: 0,
            demanding_vm_periods: 1,
            violated_vm_periods: 1,
        }
    }

    #[test]
    fn tiered_curve_picks_the_bracket() {
        let c = PriceCurve::TieredStep {
            tiers: vec![
                PriceTier {
                    up_to_mhz: 500,
                    microcents_per_ghz_s: 100,
                },
                PriceTier {
                    up_to_mhz: 1_200,
                    microcents_per_ghz_s: 250,
                },
            ],
        };
        assert_eq!(c.rate_microcents_per_ghz_s(400, 2_400), 100);
        assert_eq!(c.rate_microcents_per_ghz_s(500, 2_400), 100);
        assert_eq!(c.rate_microcents_per_ghz_s(501, 2_400), 250);
        // Above the last tier: last rate.
        assert_eq!(c.rate_microcents_per_ghz_s(1_800, 2_400), 250);
    }

    #[test]
    fn convex_curve_is_quadratic_in_vfreq() {
        let c = PriceCurve::Convex {
            base_microcents_per_ghz_s: 100,
            premium_microcents_per_ghz_s: 400,
        };
        assert_eq!(c.rate_microcents_per_ghz_s(0, 2_400), 100);
        assert_eq!(c.rate_microcents_per_ghz_s(1_200, 2_400), 200); // +400/4
        assert_eq!(c.rate_microcents_per_ghz_s(2_400, 2_400), 500);
    }

    #[test]
    fn guaranteed_bills_reservation_and_credits_violations() {
        let mut cfg = PricingConfig::linear(1_000, 2_400);
        cfg.classes.insert(
            "acme".to_owned(),
            SlaClass::Guaranteed {
                penalty_microcents_per_violation: 77,
            },
        );
        let ch = price_record(&cfg, &rec("acme"));
        // 4800 MHz·s = 4.8 GHz·s at 1000 µ¢ → 4800 µ¢, delivery ignored.
        assert_eq!(ch.base_microcents, 4_800);
        assert_eq!(ch.spot_microcents, 0);
        assert_eq!(ch.penalty_microcents, 77);
        assert_eq!(ch.net(), 4_800 - 77);
    }

    #[test]
    fn burstable_bills_delivery_plus_spot() {
        let mut cfg = PricingConfig::linear(1_000, 2_400);
        cfg.classes.insert(
            "acme".to_owned(),
            SlaClass::Burstable {
                base_discount_pct: 50,
                spot_multiplier_pct: 150,
            },
        );
        let ch = price_record(&cfg, &rec("acme"));
        // Base: min(5200, 4800) = 4.8 GHz·s × 1000 × 50 % = 2400 µ¢.
        assert_eq!(ch.base_microcents, 2_400);
        // Spot: 0.1 s × 2400 MHz = 240 MHz·s = 0.24 GHz·s × 1000 × 150 %.
        assert_eq!(ch.spot_microcents, 360);
        assert_eq!(ch.penalty_microcents, 0);
    }

    #[test]
    fn config_round_trips_through_json() {
        let mut cfg = PricingConfig {
            curve: PriceCurve::Convex {
                base_microcents_per_ghz_s: 10,
                premium_microcents_per_ghz_s: 90,
            },
            classes: Default::default(),
            fmax_mhz: 2_400,
        };
        cfg.classes.insert(
            "b".to_owned(),
            SlaClass::Burstable {
                base_discount_pct: 40,
                spot_multiplier_pct: 200,
            },
        );
        let json = serde_json::to_string(&cfg).unwrap();
        let back: PricingConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
