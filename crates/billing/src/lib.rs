#![warn(missing_docs)]

//! Performance-based pricing for virtual frequency scaling.
//!
//! The controller's credit/market machinery (Eqs. 4–6 of the paper) is
//! already a micro-economy; this crate turns it into revenue, following
//! the performance-based pricing model of Lučanin et al. ("A Cloud
//! Controller for Performance-Based Pricing"): tenants are charged as a
//! function of the CPU frequency actually provisioned — exactly the
//! virtual frequency `F_v` the rest of this workspace monitors, resizes
//! and journals.
//!
//! * [`ledger`] — the crash-safe usage ledger: per-tenant, per-period
//!   [`ledger::UsageRecord`]s in a sealed JSON-lines file written with
//!   the tmp+fsync+rename discipline of `vfc_controller::persist`;
//!   loading validates the seal and seq chain and rejects truncation —
//!   a bill never silently shrinks;
//! * [`pricing`] — frequency-tiered price curves
//!   ([`pricing::PriceCurve`]: linear / tiered-step / convex) and SLA
//!   classes ([`pricing::SlaClass`]: *Guaranteed* bills the reservation
//!   and credits violations, *Burstable* bills delivery plus
//!   auction-won cycles at a spot multiplier), all integer µ¢
//!   arithmetic;
//! * [`invoice`] — deterministic line-itemed invoices
//!   ([`invoice::generate`]): same spec audit + ledger + config ⇒
//!   byte-identical JSON;
//! * [`engine`] — [`engine::BillingEngine`]: metering intake, the
//!   persistent ledger and the `vfc_bill_*` telemetry families behind
//!   one object; restart replays the ledger so counters and invoices
//!   survive crashes.
//!
//! The crate sits *below* the control plane: it never sees specs or
//! clusters, only aggregated usage rows and audit counts. See
//! `docs/BILLING.md` for the schemas and the revenue-vs-SLO experiment.

pub mod engine;
pub mod invoice;
pub mod ledger;
pub mod pricing;

pub use engine::{BillingEngine, TenantPeriodUsage};
pub use invoice::{generate as generate_invoice, Invoice, InvoiceLine, InvoiceTotals, SpecAudit};
pub use ledger::{LedgerError, UsageLedger, UsageRecord, LEDGER_VERSION};
pub use pricing::{price_record, PriceCurve, PriceTier, PricingConfig, RecordCharge, SlaClass};
