//! Deterministic invoice generation: fold a tenant's usage ledger and
//! spec-store audit trail into line items under a pricing config.
//!
//! Determinism contract (pinned by a proptest): the same audit counts,
//! ledger contents and pricing config produce a **byte-identical**
//! rendered invoice, regardless of how the ledger was loaded or how
//! many times generation runs. Everything is integer arithmetic over
//! `BTreeMap`-ordered groups; no floats, no hash iteration, no clocks.

use crate::ledger::UsageLedger;
use crate::pricing::{price_record, PricingConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counts replayed from the control plane's spec-store event log — the
/// audit trail tying the bill to declared intent. The billing crate
/// stays below the control plane in the dependency order, so the caller
/// folds its `SpecEvent` log into these counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecAudit {
    /// VM specs the tenant created.
    pub creates: u64,
    /// Resize events on the tenant's specs.
    pub resizes: u64,
    /// Specs the tenant deleted.
    pub deletes: u64,
}

/// One invoice line: a charge or credit over one frequency tier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvoiceLine {
    /// Human-readable description.
    pub description: String,
    /// Frequency tier (`F_v`, MHz) the line bills; 0 for tier-less
    /// lines (penalty credits).
    pub vfreq_mhz: u32,
    /// Billed quantity: MHz·s for usage lines, VM-periods for penalty
    /// lines.
    pub quantity: u64,
    /// Signed amount, µ¢ (credits are negative).
    pub amount_microcents: i64,
}

/// Roll-up totals of an invoice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvoiceTotals {
    /// Gross charges (base + spot), µ¢.
    pub charges_microcents: u64,
    /// Penalty credits owed back, µ¢.
    pub penalty_microcents: u64,
    /// Net amount due, µ¢ (charges − credits; may be negative).
    pub net_microcents: i64,
    /// Total reserved work, MHz·s.
    pub guaranteed_mhz_s: u64,
    /// Total delivered work, MHz·s.
    pub delivered_mhz_s: u64,
    /// Total auction-won cycles, µs of `F^MAX`.
    pub auction_usec: u64,
    /// VM-periods that demanded the guarantee.
    pub demanding_vm_periods: u64,
    /// Of those, violated VM-periods.
    pub violated_vm_periods: u64,
}

/// A tenant's line-itemed bill over the metered span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invoice {
    /// Invoice format version (bumped with the schema).
    pub version: u32,
    /// The billed tenant.
    pub tenant: String,
    /// SLA class in force (`guaranteed` / `burstable`).
    pub class: String,
    /// Price curve kind (`linear` / `tiered` / `convex`).
    pub curve: String,
    /// First metered period covered, 0 when nothing was metered.
    pub first_period: u64,
    /// Last metered period covered, 0 when nothing was metered.
    pub last_period: u64,
    /// Distinct periods with metered usage.
    pub periods: u64,
    /// Spec-store audit counts (creates / resizes / deletes).
    pub audit: SpecAudit,
    /// Charge and credit lines, frequency tiers ascending, credits last.
    pub lines: Vec<InvoiceLine>,
    /// Roll-up totals.
    pub totals: InvoiceTotals,
}

/// Invoice schema version rendered into every invoice.
pub const INVOICE_VERSION: u32 = 1;

impl Invoice {
    /// Render as pretty JSON plus a trailing newline — the byte-stable
    /// form served by `GET /tenants/{id}/bill` and pinned by the golden
    /// test.
    pub fn render_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("invoice serializes");
        s.push('\n');
        s
    }
}

/// Generate `tenant`'s invoice from the ledger under `cfg`. Pure: see
/// the module-level determinism contract.
pub fn generate(
    tenant: &str,
    audit: SpecAudit,
    ledger: &UsageLedger,
    cfg: &PricingConfig,
) -> Invoice {
    let class = cfg.class_of(tenant);
    // Per-tier accumulation, tiers ascending (BTreeMap order).
    #[derive(Default)]
    struct Tier {
        base: u64,
        spot: u64,
        base_qty_mhz_s: u64,
        spot_qty_mhz_s: u64,
    }
    let mut tiers: BTreeMap<u32, Tier> = BTreeMap::new();
    let mut totals = InvoiceTotals::default();
    let mut penalty_vm_periods = 0u64;
    let mut first_period = 0u64;
    let mut last_period = 0u64;
    let mut periods = 0u64;
    for r in ledger.records().iter().filter(|r| r.tenant == tenant) {
        if periods == 0 || r.period < first_period {
            first_period = r.period;
        }
        if r.period != last_period {
            periods += 1; // records are appended in period order
            last_period = r.period;
        }
        let charge = price_record(cfg, r);
        let t = tiers.entry(r.vfreq_mhz).or_default();
        t.base += charge.base_microcents;
        t.spot += charge.spot_microcents;
        t.base_qty_mhz_s += match class {
            crate::pricing::SlaClass::Guaranteed { .. } => r.guaranteed_mhz_s,
            crate::pricing::SlaClass::Burstable { .. } => r.delivered_mhz_s.min(r.guaranteed_mhz_s),
        };
        if let crate::pricing::SlaClass::Burstable { .. } = class {
            t.spot_qty_mhz_s += cfg.auction_usec_to_mhz_s(r.auction_usec);
        }
        totals.charges_microcents += charge.gross();
        totals.penalty_microcents += charge.penalty_microcents;
        totals.guaranteed_mhz_s += r.guaranteed_mhz_s;
        totals.delivered_mhz_s += r.delivered_mhz_s;
        totals.auction_usec += r.auction_usec;
        totals.demanding_vm_periods += r.demanding_vm_periods;
        totals.violated_vm_periods += r.violated_vm_periods;
        if charge.penalty_microcents > 0 {
            penalty_vm_periods += r.violated_vm_periods;
        }
    }
    totals.net_microcents = totals.charges_microcents as i64 - totals.penalty_microcents as i64;

    let mut lines = Vec::new();
    for (vfreq, t) in &tiers {
        if t.base > 0 || t.base_qty_mhz_s > 0 {
            let what = match class {
                crate::pricing::SlaClass::Guaranteed { .. } => "reserved",
                crate::pricing::SlaClass::Burstable { .. } => "delivered",
            };
            lines.push(InvoiceLine {
                description: format!("{what} capacity @ {vfreq} MHz"),
                vfreq_mhz: *vfreq,
                quantity: t.base_qty_mhz_s,
                amount_microcents: t.base as i64,
            });
        }
        if t.spot > 0 || t.spot_qty_mhz_s > 0 {
            lines.push(InvoiceLine {
                description: format!("auction-won burst cycles @ {vfreq} MHz (spot)"),
                vfreq_mhz: *vfreq,
                quantity: t.spot_qty_mhz_s,
                amount_microcents: t.spot as i64,
            });
        }
    }
    if totals.penalty_microcents > 0 {
        lines.push(InvoiceLine {
            description: "SLO penalty credit (violated VM-periods)".to_owned(),
            vfreq_mhz: 0,
            quantity: penalty_vm_periods,
            amount_microcents: -(totals.penalty_microcents as i64),
        });
    }

    Invoice {
        version: INVOICE_VERSION,
        tenant: tenant.to_owned(),
        class: class.name().to_owned(),
        curve: cfg.curve.kind().to_owned(),
        first_period,
        last_period,
        periods,
        audit,
        lines,
        totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::UsageRecord;
    use crate::pricing::SlaClass;

    fn ledger() -> UsageLedger {
        let mut l = UsageLedger::new();
        for period in 1..=3u64 {
            for (tenant, vfreq) in [("acme", 500u32), ("acme", 1_200), ("bob", 500)] {
                l.push(UsageRecord {
                    seq: 0,
                    period,
                    tenant: tenant.to_owned(),
                    vfreq_mhz: vfreq,
                    vm_periods: 2,
                    guaranteed_mhz_s: vfreq as u64 * 4,
                    delivered_mhz_s: vfreq as u64 * 4 - 100,
                    auction_usec: 50_000,
                    minted_usec: 10,
                    wasted_share_usec: 5,
                    demanding_vm_periods: 2,
                    violated_vm_periods: u64::from(period == 2),
                });
            }
        }
        l
    }

    #[test]
    fn invoice_groups_by_tier_and_sums() {
        let cfg = PricingConfig::linear(1_000, 2_400);
        let inv = generate("acme", SpecAudit::default(), &ledger(), &cfg);
        assert_eq!(inv.class, "guaranteed");
        assert_eq!(inv.periods, 3);
        assert_eq!((inv.first_period, inv.last_period), (1, 3));
        // Two tiers (500, 1200) plus one penalty credit line.
        assert_eq!(inv.lines.len(), 3);
        assert_eq!(inv.lines[0].vfreq_mhz, 500);
        assert_eq!(inv.lines[1].vfreq_mhz, 1_200);
        assert!(inv.lines[2].amount_microcents < 0);
        assert_eq!(
            inv.totals.net_microcents,
            inv.totals.charges_microcents as i64 - inv.totals.penalty_microcents as i64
        );
        // Reserved: 3 periods × (2000 + 4800) MHz·s = 20.4 GHz·s → 20400 µ¢.
        assert_eq!(inv.totals.charges_microcents, 20_400);
    }

    #[test]
    fn burstable_invoice_has_spot_lines_and_no_penalty() {
        let mut cfg = PricingConfig::linear(1_000, 2_400);
        cfg.classes.insert(
            "acme".to_owned(),
            SlaClass::Burstable {
                base_discount_pct: 50,
                spot_multiplier_pct: 200,
            },
        );
        let inv = generate("acme", SpecAudit::default(), &ledger(), &cfg);
        assert_eq!(inv.class, "burstable");
        assert!(inv
            .lines
            .iter()
            .any(|l| l.description.contains("spot") && l.amount_microcents > 0));
        assert_eq!(inv.totals.penalty_microcents, 0);
    }

    #[test]
    fn rendering_is_stable_across_regeneration() {
        let cfg = PricingConfig::linear(1_000, 2_400);
        let a = generate("acme", SpecAudit::default(), &ledger(), &cfg).render_json();
        let b = generate("acme", SpecAudit::default(), &ledger(), &cfg).render_json();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_tenant_gets_an_empty_bill() {
        let cfg = PricingConfig::linear(1_000, 2_400);
        let inv = generate("ghost", SpecAudit::default(), &ledger(), &cfg);
        assert_eq!(inv.periods, 0);
        assert!(inv.lines.is_empty());
        assert_eq!(inv.totals, InvoiceTotals::default());
    }
}
