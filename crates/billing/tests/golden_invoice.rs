//! Golden-file test: the rendered invoice JSON is pinned byte-for-byte.
//!
//! The invoice is an interface — `GET /tenants/{id}/bill` serves these
//! exact bytes, and downstream billing exports parse them — so the test
//! compares against committed fixtures instead of spot-checking fields,
//! mirroring the telemetry crate's `.prom` golden convention.
//! Regenerate deliberately with:
//!
//! ```text
//! VFC_BLESS=1 cargo test -p vfc-billing --test golden_invoice
//! ```
//!
//! and review the diff like any other interface change.

use std::path::PathBuf;
use vfc_billing::{
    generate_invoice, PriceCurve, PriceTier, PricingConfig, SlaClass, SpecAudit, UsageLedger,
    UsageRecord,
};

/// A fixed two-tenant ledger exercising both SLA classes, two
/// frequency tiers, violations and auction cycles.
fn golden_ledger() -> UsageLedger {
    let mut ledger = UsageLedger::new();
    for period in 1..=4u64 {
        for (tenant, vfreq, vms) in [
            ("acme", 500u32, 3u64),
            ("acme", 1_200, 1),
            ("bolt", 1_800, 2),
        ] {
            ledger.push(UsageRecord {
                seq: 0, // assigned by push
                period,
                tenant: tenant.to_owned(),
                vfreq_mhz: vfreq,
                vm_periods: vms,
                guaranteed_mhz_s: vfreq as u64 * 2 * vms,
                delivered_mhz_s: vfreq as u64 * 2 * vms - 150 * period,
                auction_usec: 40_000 * period,
                minted_usec: 9_000,
                wasted_share_usec: 1_250,
                demanding_vm_periods: vms,
                violated_vm_periods: u64::from(period == 3),
            });
        }
    }
    ledger
}

fn golden_config() -> PricingConfig {
    let mut cfg = PricingConfig {
        curve: PriceCurve::TieredStep {
            tiers: vec![
                PriceTier {
                    up_to_mhz: 800,
                    microcents_per_ghz_s: 700,
                },
                PriceTier {
                    up_to_mhz: 2_400,
                    microcents_per_ghz_s: 1_400,
                },
            ],
        },
        classes: Default::default(),
        fmax_mhz: 2_400,
    };
    cfg.classes.insert(
        "acme".to_owned(),
        SlaClass::Guaranteed {
            penalty_microcents_per_violation: 10_000,
        },
    );
    cfg.classes.insert(
        "bolt".to_owned(),
        SlaClass::Burstable {
            base_discount_pct: 40,
            spot_multiplier_pct: 250,
        },
    );
    cfg
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn compare_or_bless(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("VFC_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run with VFC_BLESS=1 to create)",
            path.display()
        )
    });
    assert!(
        got == want,
        "invoice drifted from {} — if intentional, re-bless with VFC_BLESS=1\n--- got ---\n{got}\n--- want ---\n{want}",
        path.display()
    );
}

#[test]
fn guaranteed_invoice_matches_golden() {
    let inv = generate_invoice(
        "acme",
        SpecAudit {
            creates: 4,
            resizes: 2,
            deletes: 1,
        },
        &golden_ledger(),
        &golden_config(),
    );
    compare_or_bless("invoice_guaranteed.json", &inv.render_json());
}

#[test]
fn burstable_invoice_matches_golden() {
    let inv = generate_invoice(
        "bolt",
        SpecAudit {
            creates: 2,
            resizes: 0,
            deletes: 0,
        },
        &golden_ledger(),
        &golden_config(),
    );
    compare_or_bless("invoice_burstable.json", &inv.render_json());
}
