//! Property tests pinning the billing determinism contract:
//!
//! * **replay is deterministic and lossless** — the same usage rows
//!   produce the same sealed ledger bytes, survive a save/load round
//!   trip record-for-record, and render the **byte-identical** invoice
//!   whether generated from the in-memory ledger or the reloaded one;
//! * **a damaged ledger fails closed** — truncating the tail or
//!   corrupting a line yields a typed [`LedgerError`], never a panic
//!   and never an `Ok` with a silently shorter (cheaper) bill.

use proptest::prelude::*;
use vfc_billing::{
    generate_invoice, LedgerError, PriceCurve, PriceTier, PricingConfig, SlaClass, SpecAudit,
    UsageLedger, UsageRecord,
};

const TENANTS: [&str; 3] = ["acme", "bob", "carol"];
const TIERS: [u32; 3] = [500, 1_200, 1_800];

/// Deterministically expand compact proptest draws into usage records.
fn build_ledger(rows: &[(u8, u8, u64, u64, u64, u8)]) -> UsageLedger {
    let mut ledger = UsageLedger::new();
    for (i, (tenant, tier, delivered, auction, minted, dv)) in rows.iter().enumerate() {
        let vfreq = TIERS[*tier as usize % TIERS.len()];
        // One draw packs both SLO counts: low bits demanding, high bits
        // violated (the vendored proptest stops at 6-tuples).
        let demanding = u64::from(*dv % 4) + 1;
        let violated = u64::from(*dv / 4 % 4);
        ledger.push(UsageRecord {
            seq: 0, // assigned by push
            period: 1 + i as u64 / 3,
            tenant: TENANTS[*tenant as usize % TENANTS.len()].to_owned(),
            vfreq_mhz: vfreq,
            vm_periods: demanding,
            guaranteed_mhz_s: vfreq as u64 * 2 * demanding,
            delivered_mhz_s: *delivered,
            auction_usec: *auction,
            minted_usec: *minted,
            wasted_share_usec: minted / 2,
            demanding_vm_periods: demanding,
            violated_vm_periods: violated.min(demanding),
        });
    }
    ledger
}

fn configs() -> Vec<PricingConfig> {
    let mut linear = PricingConfig::linear(1_000, 2_400);
    linear.classes.insert(
        "bob".to_owned(),
        SlaClass::Burstable {
            base_discount_pct: 40,
            spot_multiplier_pct: 250,
        },
    );
    let mut tiered = linear.clone();
    tiered.curve = PriceCurve::TieredStep {
        tiers: vec![
            PriceTier {
                up_to_mhz: 800,
                microcents_per_ghz_s: 700,
            },
            PriceTier {
                up_to_mhz: 2_400,
                microcents_per_ghz_s: 1_400,
            },
        ],
    };
    let mut convex = linear.clone();
    convex.curve = PriceCurve::Convex {
        base_microcents_per_ghz_s: 600,
        premium_microcents_per_ghz_s: 900,
    };
    vec![linear, tiered, convex]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_replay_is_deterministic_and_lossless(
        rows in proptest::collection::vec(
            (0u8..3, 0u8..3, 0u64..20_000, 0u64..2_000_000, 0u64..50_000, 0u8..16),
            1..24,
        ),
    ) {
        let ledger = build_ledger(&rows);

        // Same rows → same sealed bytes.
        prop_assert_eq!(ledger.render(), build_ledger(&rows).render());

        // Save/load round trip loses nothing.
        let dir = std::env::temp_dir().join(format!(
            "vfc-prop-invoice-{}-{}", std::process::id(), rows.len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("usage.ledger");
        ledger.save(&path).unwrap();
        let reloaded = UsageLedger::load(&path).unwrap();
        prop_assert_eq!(reloaded.records(), ledger.records());
        std::fs::remove_dir_all(&dir).ok();

        // Byte-identical invoices from either copy, under every curve.
        for cfg in configs() {
            for tenant in TENANTS {
                let a = generate_invoice(tenant, SpecAudit::default(), &ledger, &cfg)
                    .render_json();
                let b = generate_invoice(tenant, SpecAudit::default(), &reloaded, &cfg)
                    .render_json();
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn prop_damaged_ledgers_fail_closed(
        rows in proptest::collection::vec(
            (0u8..3, 0u8..3, 0u64..20_000, 0u64..2_000_000, 0u64..50_000, 0u8..16),
            1..16,
        ),
        chop in 2usize..64,
        corrupt_line in 0usize..16,
    ) {
        let text = build_ledger(&rows).render();

        // Truncated tail: the seal is damaged or gone → typed error.
        let cut = text.len().saturating_sub(chop.min(text.len() - 1));
        let truncated = &text[..cut];
        match UsageLedger::parse(truncated) {
            Err(
                LedgerError::Truncated { .. }
                | LedgerError::Corrupt { .. }
                | LedgerError::Version(_),
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
            Ok(l) => prop_assert!(
                false,
                "truncated ledger parsed as Ok with {} records",
                l.records().len()
            ),
        }

        // A corrupted record line is rejected, never a shorter bill.
        let mut lines: Vec<&str> = text.lines().collect();
        let idx = 1 + corrupt_line % (lines.len() - 2).max(1);
        lines[idx] = "{\"not\":\"a record\"}";
        let garbled = lines.join("\n");
        prop_assert!(UsageLedger::parse(&garbled).is_err());
    }
}
