//! Residual-index microbenchmarks: the O(log n) placement queries at
//! the `trace` experiment's fleet width, isolated from the full replay
//! so a placement regression is caught even when the event core hides
//! it. One sample = one query + one incremental `set` churn, the exact
//! per-admission work `ClusterManager::place_with` performs.
//!
//! `placement/ff_1200` and `placement/bf_1200` are budget rows in
//! BENCH_controller.json, re-run by tools/bench_gate.sh.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vfc_placement::index::ResidualIndex;
use vfc_simcore::SplitMix64;

/// A 1200-slot index with a realistic residual spread: a third of the
/// fleet nearly full, a third half-used, a third nearly empty.
fn fleet_index(rng: &mut SplitMix64) -> ResidualIndex {
    let mut index = ResidualIndex::new(1200);
    for slot in 0..1200 {
        let units = match slot % 3 {
            0 => rng.next_below(2_000),
            1 => 8_000 + rng.next_below(4_000),
            _ => 16_000 + rng.next_below(3_200),
        };
        index.set(slot, units, 8 + rng.next_below(56));
    }
    index
}

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");

    let mut rng = SplitMix64::new(0x1DEC_5EED);
    let index = fleet_index(&mut rng);
    let demands: Vec<(u64, u64)> = (0..512)
        .map(|_| (600 + rng.next_below(7_200), 4 + rng.next_below(12)))
        .collect();

    let mut i = 0usize;
    let mut churn = index.clone();
    group.bench_function("ff_1200", |b| {
        b.iter(|| {
            let (units, mem) = demands[i % demands.len()];
            i += 1;
            let hit = churn.first_fit(black_box(units), black_box(mem), None);
            if let Some(slot) = hit {
                // Claim + release: the incremental maintenance the
                // manager pays on every placement transition.
                churn.set(slot, units.saturating_sub(1), mem);
            }
            black_box(hit)
        });
    });

    let mut i = 0usize;
    let mut churn = index.clone();
    group.bench_function("bf_1200", |b| {
        b.iter(|| {
            let (units, mem) = demands[i % demands.len()];
            i += 1;
            let hit = churn.best_fit(black_box(units), black_box(mem), None);
            if let Some(slot) = hit {
                churn.set(slot, units.saturating_sub(1), mem);
            }
            black_box(hit)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
