//! The evaluation cluster and workload of §IV.C.

use crate::model::PlacementRequest;
use serde::{Deserialize, Serialize};
use vfc_cpusched::topology::NodeSpec;
use vfc_simcore::SplitMix64;
use vfc_vmm::VmTemplate;

/// A named set of nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    /// The nodes, in placement order.
    pub nodes: Vec<NodeSpec>,
}

impl Cluster {
    /// Cluster over the given nodes.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        Cluster { nodes }
    }

    /// The paper's cluster: 12 *chetemi* + 10 *chiclet* (22 nodes).
    pub fn paper_cluster() -> Self {
        let mut nodes = vec![NodeSpec::chetemi(); 12];
        nodes.extend(vec![NodeSpec::chiclet(); 10]);
        Cluster::new(nodes)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Any nodes at all?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total frequency capacity of the cluster, MHz.
    pub fn freq_capacity_mhz(&self) -> u64 {
        self.nodes.iter().map(|n| n.freq_capacity_mhz()).sum()
    }
}

/// In which order VM requests arrive at the placer. Bin-packing results
/// depend on it; the paper does not state theirs, so the harness reports
/// several.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalOrder {
    /// All smalls, then mediums, then larges (grouped by template).
    Grouped,
    /// Template-interleaved round-robin.
    RoundRobin,
    /// Seeded uniform shuffle — closest to a real arrival stream.
    Shuffled(u64),
}

/// The paper's workload: 250 small (2 vCPU @ 500 MHz) + 50 medium
/// (4 @ 1200) + 100 large (4 @ 1800), in the requested arrival order.
pub fn paper_workload(order: ArrivalOrder) -> Vec<PlacementRequest> {
    let small = PlacementRequest::from(&VmTemplate::small());
    let medium = PlacementRequest::from(&VmTemplate::medium());
    let large = PlacementRequest::from(&VmTemplate::large());

    let mut out: Vec<PlacementRequest> = Vec::with_capacity(400);
    match order {
        ArrivalOrder::Grouped => {
            out.extend(std::iter::repeat_n(small, 250));
            out.extend(std::iter::repeat_n(medium, 50));
            out.extend(std::iter::repeat_n(large, 100));
        }
        ArrivalOrder::RoundRobin => {
            // Interleave proportionally: 5 small : 1 medium : 2 large.
            let (mut s, mut m, mut l) = (250, 50, 100);
            while s + m + l > 0 {
                for _ in 0..5 {
                    if s > 0 {
                        out.push(small.clone());
                        s -= 1;
                    }
                }
                if m > 0 {
                    out.push(medium.clone());
                    m -= 1;
                }
                for _ in 0..2 {
                    if l > 0 {
                        out.push(large.clone());
                        l -= 1;
                    }
                }
            }
        }
        ArrivalOrder::Shuffled(seed) => {
            out.extend(std::iter::repeat_n(small, 250));
            out.extend(std::iter::repeat_n(medium, 50));
            out.extend(std::iter::repeat_n(large, 100));
            SplitMix64::new(seed).shuffle(&mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_section_ivc() {
        let c = Cluster::paper_cluster();
        assert_eq!(c.len(), 22);
        let chetemi = c.nodes.iter().filter(|n| n.name == "chetemi").count();
        let chiclet = c.nodes.iter().filter(|n| n.name == "chiclet").count();
        assert_eq!((chetemi, chiclet), (12, 10));
        // 12×96 000 + 10×153 600 MHz.
        assert_eq!(c.freq_capacity_mhz(), 1_152_000 + 1_536_000);
    }

    #[test]
    fn workload_counts_are_exact_in_every_order() {
        for order in [
            ArrivalOrder::Grouped,
            ArrivalOrder::RoundRobin,
            ArrivalOrder::Shuffled(7),
        ] {
            let w = paper_workload(order);
            assert_eq!(w.len(), 400);
            let count = |t: &str| w.iter().filter(|r| r.template == t).count();
            assert_eq!(count("small"), 250);
            assert_eq!(count("medium"), 50);
            assert_eq!(count("large"), 100);
            // Total demand: 250·1000 + 50·4800 + 100·7200 MHz.
            let demand: u64 = w.iter().map(|r| r.freq_demand_mhz()).sum();
            assert_eq!(demand, 1_210_000);
        }
    }

    #[test]
    fn workload_fits_the_cluster_frequency_wise() {
        let c = Cluster::paper_cluster();
        let w = paper_workload(ArrivalOrder::Grouped);
        let demand: u64 = w.iter().map(|r| r.freq_demand_mhz()).sum();
        assert!(demand <= c.freq_capacity_mhz());
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let a = paper_workload(ArrivalOrder::Shuffled(3));
        let b = paper_workload(ArrivalOrder::Shuffled(3));
        let c = paper_workload(ArrivalOrder::Shuffled(4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn round_robin_interleaves() {
        let w = paper_workload(ArrivalOrder::RoundRobin);
        // The first 8 arrivals contain all three classes.
        let head: Vec<&str> = w[..8].iter().map(|r| r.template.as_str()).collect();
        assert!(head.contains(&"small"));
        assert!(head.contains(&"medium"));
        assert!(head.contains(&"large"));
    }
}
