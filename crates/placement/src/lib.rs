#![warn(missing_docs)]

//! VM placement with virtual-frequency awareness (§III.C, §IV.C).
//!
//! The paper's secondary contribution: once every VM carries a guaranteed
//! virtual frequency, the placement constraint "number of vCPUs ≤ number
//! of CPU cores" can be replaced by the **core splitting constraint**
//! (Eq. 7):
//!
//! ```text
//! Σ_{i ∈ I_n} k_i^vCPU · F_i  ≤  k_n^CPU · F_n^MAX
//! ```
//!
//! so a 3 GHz core can host e.g. three 1 GHz vCPUs *without*
//! overcommitment — the frequency controller enforces the shares that the
//! placement promised.
//!
//! * [`model`] — node bins and placement state;
//! * [`constraint`] — the two constraint modes (classic core-count with an
//!   optional consolidation factor, and Eq. 7);
//! * [`algo`] — First-Fit / Best-Fit / Worst-Fit placement;
//! * [`index`] — the residual-capacity index answering the same three
//!   heuristics in O(log n) for incremental (deploy/undeploy) callers;
//! * [`cluster`] — the evaluation cluster (12 *chetemi* + 10 *chiclet*)
//!   and workload (250 small + 50 medium + 100 large), with several
//!   arrival orders;
//! * [`energy`] — cluster power accounting (shut down unused nodes).

pub mod algo;
pub mod cluster;
pub mod constraint;
pub mod energy;
pub mod index;
pub mod model;

pub use algo::{PlacementAlgorithm, PlacementResult, Placer};
pub use cluster::{ArrivalOrder, Cluster};
pub use constraint::ConstraintMode;
pub use index::ResidualIndex;
pub use model::{NodeBin, PlacementRequest};
