//! Cluster energy accounting for placement results (§IV.C: unused nodes
//! "can be reused for additional workload, or shutdown in order to reduce
//! the energy consumption").

use crate::algo::PlacementResult;
use serde::{Deserialize, Serialize};
use vfc_cpusched::power::node_power_w;
use vfc_simcore::Micros;

/// Energy summary of a placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Nodes hosting at least one VM.
    pub nodes_used: usize,
    /// Cluster size.
    pub nodes_total: usize,
    /// Cluster draw with unused nodes shut down, Watts.
    pub power_used_only_w: f64,
    /// Cluster draw if every node stayed on (idle floor for empty ones).
    pub power_all_on_w: f64,
}

impl EnergyReport {
    /// Power saved by shutting down the unused nodes, Watts.
    pub fn savings_w(&self) -> f64 {
        self.power_all_on_w - self.power_used_only_w
    }

    /// Relative saving in [0, 1].
    pub fn savings_ratio(&self) -> f64 {
        if self.power_all_on_w <= 0.0 {
            0.0
        } else {
            self.savings_w() / self.power_all_on_w
        }
    }

    /// Energy over a time horizon with unused nodes off, Joules.
    pub fn energy_used_only_j(&self, horizon: Micros) -> f64 {
        self.power_used_only_w * horizon.as_secs_f64()
    }
}

/// Compute the energy report of a placement. Each used node is assumed to
/// run at its frequency-constraint utilization with loaded cores at
/// `F^MAX` (the controller guarantees exactly that load shape).
pub fn energy_of(result: &PlacementResult) -> EnergyReport {
    let mut power_used = 0.0;
    let mut power_all = 0.0;
    let mut used = 0usize;
    for bin in &result.nodes {
        let idle = node_power_w(&bin.spec, 0.0, bin.spec.min_mhz);
        if bin.is_used() {
            used += 1;
            let p = node_power_w(&bin.spec, bin.freq_utilization(), bin.spec.max_mhz);
            power_used += p;
            power_all += p;
        } else {
            power_all += idle;
        }
    }
    EnergyReport {
        nodes_used: used,
        nodes_total: result.nodes.len(),
        power_used_only_w: power_used,
        power_all_on_w: power_all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{PlacementAlgorithm, Placer};
    use crate::constraint::ConstraintMode;
    use crate::model::PlacementRequest;
    use vfc_cpusched::topology::NodeSpec;
    use vfc_simcore::MHz;

    fn place_smalls(count: usize, nodes: usize) -> PlacementResult {
        let cluster = vec![NodeSpec::chetemi(); nodes];
        let reqs: Vec<PlacementRequest> = (0..count)
            .map(|_| PlacementRequest::new("small", 2, MHz(500), 1))
            .collect();
        Placer::new(PlacementAlgorithm::BestFit, ConstraintMode::Frequency).place(&cluster, &reqs)
    }

    #[test]
    fn empty_cluster_spends_nothing_when_off() {
        let result = place_smalls(0, 3);
        let report = energy_of(&result);
        assert_eq!(report.nodes_used, 0);
        assert_eq!(report.power_used_only_w, 0.0);
        assert!(report.power_all_on_w > 0.0, "idle floor if left on");
        assert!((report.savings_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn consolidation_saves_energy() {
        // 96 smalls fit one chetemi under Eq. 7: two spare nodes off.
        let result = place_smalls(96, 3);
        let report = energy_of(&result);
        assert_eq!(report.nodes_used, 1);
        assert!(report.savings_w() > 0.0);
        assert!(report.power_used_only_w < report.power_all_on_w);
        assert!(report.energy_used_only_j(Micros::from_secs(10)) > 0.0);
    }

    #[test]
    fn loaded_nodes_draw_more_than_idle() {
        let result = place_smalls(96, 1);
        let report = energy_of(&result);
        let spec = NodeSpec::chetemi();
        assert!(report.power_used_only_w > spec.idle_power_w);
        assert!(report.power_used_only_w <= spec.max_power_w);
    }
}
