//! Placement feasibility constraints.

use crate::model::{NodeBin, PlacementRequest};
use serde::{Deserialize, Serialize};

/// Which capacity rule decides whether a VM fits on a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConstraintMode {
    /// The classic rule: total vCPUs ≤ hardware threads × `factor`.
    /// `factor = 1.0` is no overcommitment; the paper's §IV.C compares
    /// against `factor = 1.8`.
    CoreCount {
        /// Overcommitment multiplier on the thread count.
        factor: f64,
    },
    /// The paper's core splitting constraint (Eq. 7):
    /// `Σ k^vCPU·F ≤ k^CPU·F^MAX`.
    Frequency,
    /// Eq. 7 with a consolidation factor on the right-hand side, the
    /// variant §III.C sketches ("multiply by 1.2 the number of available
    /// cores") while warning it "could lead in the loss of the guarantee
    /// of the vCPU frequency" — which `tests/placement_to_controller.rs`
    /// demonstrates.
    FrequencyFactor {
        /// Overcommitment multiplier on the frequency capacity.
        factor: f64,
    },
}

impl ConstraintMode {
    /// Classic constraint without overcommitment.
    pub fn core_count() -> Self {
        ConstraintMode::CoreCount { factor: 1.0 }
    }

    /// Does `vm` fit on `bin` in addition to what is already there?
    /// Memory is always checked — the paper assumes it never binds, and
    /// with these workloads it doesn't, but the rule is cheap.
    pub fn fits(&self, bin: &NodeBin, vm: &PlacementRequest) -> bool {
        if bin.used_mem_gb() + vm.mem_gb as u64 > bin.spec.mem_gb as u64 {
            return false;
        }
        match self {
            ConstraintMode::CoreCount { factor } => {
                let cap = (bin.spec.nr_threads() as f64 * factor).floor() as u64;
                bin.used_vcpus() + vm.vcpus as u64 <= cap
            }
            ConstraintMode::Frequency => {
                // A single vCPU can also never need more than one thread
                // at F^MAX; Eq. 2 clamps F to F^MAX, so the aggregate
                // check is sufficient.
                bin.used_freq_mhz() + vm.freq_demand_mhz() <= bin.spec.freq_capacity_mhz()
            }
            ConstraintMode::FrequencyFactor { factor } => {
                let cap = (bin.spec.freq_capacity_mhz() as f64 * factor).floor() as u64;
                bin.used_freq_mhz() + vm.freq_demand_mhz() <= cap
            }
        }
    }

    /// Remaining capacity of a bin in this mode's unit (for Best/Worst
    /// Fit ranking): vCPU slots or MHz.
    pub fn remaining(&self, bin: &NodeBin) -> u64 {
        match self {
            ConstraintMode::CoreCount { factor } => {
                let cap = (bin.spec.nr_threads() as f64 * factor).floor() as u64;
                cap.saturating_sub(bin.used_vcpus())
            }
            ConstraintMode::Frequency => bin
                .spec
                .freq_capacity_mhz()
                .saturating_sub(bin.used_freq_mhz()),
            ConstraintMode::FrequencyFactor { factor } => {
                let cap = (bin.spec.freq_capacity_mhz() as f64 * factor).floor() as u64;
                cap.saturating_sub(bin.used_freq_mhz())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfc_cpusched::topology::NodeSpec;
    use vfc_simcore::MHz;

    fn small() -> PlacementRequest {
        // 2 GB so memory (256 GB) never binds before frequency in these
        // tests — `memory_always_binds` covers the memory rule.
        PlacementRequest::new("small", 2, MHz(500), 2)
    }

    fn large() -> PlacementRequest {
        PlacementRequest::new("large", 4, MHz(1800), 2)
    }

    #[test]
    fn core_count_limits_vcpus() {
        let mode = ConstraintMode::core_count();
        let mut bin = NodeBin::new(NodeSpec::chetemi()); // 40 threads
        for _ in 0..20 {
            assert!(mode.fits(&bin, &small()));
            bin.place(&small());
        }
        // 40 vCPUs used: nothing more fits without a factor.
        assert!(!mode.fits(&bin, &small()));
        // With a 1.8 consolidation factor, capacity is 72 vCPUs.
        let relaxed = ConstraintMode::CoreCount { factor: 1.8 };
        assert!(relaxed.fits(&bin, &small()));
    }

    #[test]
    fn frequency_mode_packs_beyond_the_core_count() {
        // The paper's §III.C point: a 2.4 GHz thread can carry several
        // low-frequency vCPUs. chetemi: 96 000 MHz capacity → 96 smalls
        // (192 vCPUs!) fit frequency-wise.
        let mode = ConstraintMode::Frequency;
        let mut bin = NodeBin::new(NodeSpec::chetemi());
        for _ in 0..96 {
            assert!(mode.fits(&bin, &small()));
            bin.place(&small());
        }
        assert!(!mode.fits(&bin, &small()));
        assert_eq!(bin.used_vcpus(), 192);
    }

    #[test]
    fn frequency_mode_respects_eq7_for_the_paper_mix() {
        // Table II mix exactly fills 92 000 of chetemi's 96 000 MHz.
        let mode = ConstraintMode::Frequency;
        let mut bin = NodeBin::new(NodeSpec::chetemi());
        for _ in 0..20 {
            assert!(mode.fits(&bin, &small()));
            bin.place(&small());
        }
        for _ in 0..10 {
            assert!(mode.fits(&bin, &large()));
            bin.place(&large());
        }
        assert_eq!(bin.used_freq_mhz(), 92_000);
        // 4 000 MHz left: another large (7 200) does not fit, a small
        // (1 000) does.
        assert!(!mode.fits(&bin, &large()));
        assert!(mode.fits(&bin, &small()));
    }

    #[test]
    fn frequency_factor_overcommits_eq7() {
        let strict = ConstraintMode::Frequency;
        let relaxed = ConstraintMode::FrequencyFactor { factor: 1.2 };
        let mut bin = NodeBin::new(NodeSpec::chetemi()); // 96 000 MHz
                                                         // Fill exactly to Eq. 7 with larges (13 × 7 200 = 93 600).
        for _ in 0..13 {
            bin.place(&large());
        }
        assert!(!strict.fits(&bin, &large()));
        // The 1.2 factor allows 115 200 MHz: exactly three more larges
        // (16 × 7 200 = 115 200).
        for _ in 0..3 {
            assert!(relaxed.fits(&bin, &large()));
            bin.place(&large());
        }
        assert_eq!(relaxed.remaining(&bin), 0);
        assert!(!relaxed.fits(&bin, &small()));
        assert!(!relaxed.fits(&bin, &large()));
    }

    #[test]
    fn memory_always_binds() {
        let mode = ConstraintMode::Frequency;
        let spec = NodeSpec::custom("tiny-mem", 1, 4, 2, MHz(2400));
        // tiny-mem has 64 GB; a 65 GB VM cannot fit.
        let bin = NodeBin::new(spec);
        let fat = PlacementRequest::new("fat", 1, MHz(100), 65);
        assert!(!mode.fits(&bin, &fat));
    }

    #[test]
    fn remaining_capacity_per_mode() {
        let mut bin = NodeBin::new(NodeSpec::chetemi());
        bin.place(&large());
        assert_eq!(ConstraintMode::core_count().remaining(&bin), 36);
        assert_eq!(ConstraintMode::Frequency.remaining(&bin), 96_000 - 7_200);
    }
}
