//! Residual-capacity placement index: O(log n) First/Best/Worst-Fit.
//!
//! The cluster manager answers every placement question — admission,
//! evacuation, migration fallback, control-plane feasibility — by
//! scanning all `n` node bins and applying [`ConstraintMode::fits`].
//! That scan is exact but linear, and at trace scale (1,200 nodes,
//! ~100k arrivals/evacuations) it dominates the placement cost.
//!
//! This index replaces the scan with two incrementally-maintained
//! structures over the *residual* capacity of each slot:
//!
//! - a **segment tree** over slot order holding, per subtree, the
//!   maximum residual constraint units and the maximum residual memory.
//!   First-Fit descends to the leftmost feasible leaf in O(log n)
//!   (both maxima bound the subtree, so infeasible subtrees prune; a
//!   subtree where the two maxima come from different leaves may force
//!   a backtrack, but memory almost never binds — the paper's own
//!   assumption — so the descent is logarithmic in practice);
//! - an **ordered set** of `(residual units, slot)` pairs. Best-Fit
//!   starts at `(demand, 0)` and walks up: the first entry whose slot
//!   also has the memory is the tightest feasible node with the lowest
//!   index among ties. Worst-Fit walks down from the top, scanning each
//!   equal-residual group in ascending slot order.
//!
//! The tie-break orders reproduce the linear scans **exactly**:
//! First-Fit = lowest feasible index; Best-Fit = `min_by_key
//! ((remaining, index))`; Worst-Fit = `max_by_key((remaining,
//! usize::MAX - index))`. `tests/` pins this byte-for-byte against the
//! linear oracle over random deploy/undeploy/crash/resize sequences.
//!
//! The index does not own bins. The owner calls [`ResidualIndex::set`]
//! with the slot's current residuals after *every* mutation (place,
//! remove, resize, node repair) and [`ResidualIndex::deactivate`] when
//! a slot leaves the candidate set (node crash). Residuals are in the
//! owner's constraint units ([`ConstraintMode::remaining`]): MHz under
//! Eq. 7, vCPU slots under core-count.

use std::collections::BTreeSet;

/// See module docs.
#[derive(Debug, Clone)]
pub struct ResidualIndex {
    /// Number of slots (leaves in use).
    len: usize,
    /// Power-of-two leaf span of the segment tree.
    span: usize,
    /// Per subtree: max over active leaves of `units + 1` (0 = none
    /// active). The +1 shift lets a zero-residual active slot still
    /// satisfy a zero-unit demand, exactly like the linear scan.
    seg_units: Vec<u64>,
    /// Per subtree: max over active leaves of `mem + 1`.
    seg_mem: Vec<u64>,
    /// Current residual units per active slot (stale for inactive).
    units: Vec<u64>,
    /// Current residual memory per active slot (stale for inactive).
    mem: Vec<u64>,
    /// Is the slot a placement candidate at all?
    active: Vec<bool>,
    /// Active slots keyed by `(residual units, slot)`.
    by_units: BTreeSet<(u64, usize)>,
}

impl ResidualIndex {
    /// An index over `len` slots, all inactive. Activate each with
    /// [`ResidualIndex::set`].
    pub fn new(len: usize) -> Self {
        let span = len.next_power_of_two().max(1);
        ResidualIndex {
            len,
            span,
            seg_units: vec![0; 2 * span],
            seg_mem: vec![0; 2 * span],
            units: vec![0; len],
            mem: vec![0; len],
            active: vec![false; len],
            by_units: BTreeSet::new(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Any slots at all?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `slot` currently a candidate?
    pub fn is_active(&self, slot: usize) -> bool {
        self.active.get(slot).copied().unwrap_or(false)
    }

    /// Activate `slot` (or update an active one) with its current
    /// residual capacity.
    pub fn set(&mut self, slot: usize, units: u64, mem: u64) {
        assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        if self.active[slot] {
            if self.units[slot] == units && self.mem[slot] == mem {
                return;
            }
            self.by_units.remove(&(self.units[slot], slot));
        }
        self.active[slot] = true;
        self.units[slot] = units;
        self.mem[slot] = mem;
        self.by_units.insert((units, slot));
        self.write_leaf(slot, units + 1, mem + 1);
    }

    /// Remove `slot` from the candidate set (node down).
    pub fn deactivate(&mut self, slot: usize) {
        assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        if !self.active[slot] {
            return;
        }
        self.active[slot] = false;
        self.by_units.remove(&(self.units[slot], slot));
        self.write_leaf(slot, 0, 0);
    }

    /// Set a leaf's shifted values and re-establish the maxima up the
    /// tree.
    fn write_leaf(&mut self, slot: usize, units_v: u64, mem_v: u64) {
        let mut i = self.span + slot;
        self.seg_units[i] = units_v;
        self.seg_mem[i] = mem_v;
        while i > 1 {
            i /= 2;
            self.seg_units[i] = self.seg_units[2 * i].max(self.seg_units[2 * i + 1]);
            self.seg_mem[i] = self.seg_mem[2 * i].max(self.seg_mem[2 * i + 1]);
        }
    }

    #[inline]
    fn feasible(&self, slot: usize, units: u64, mem: u64, exclude: Option<usize>) -> bool {
        self.active[slot]
            && Some(slot) != exclude
            && self.units[slot] >= units
            && self.mem[slot] >= mem
    }

    /// Lowest active slot with `residual units ≥ units` and `residual
    /// mem ≥ mem`, skipping `exclude` — the First-Fit answer.
    pub fn first_fit(&self, units: u64, mem: u64, exclude: Option<usize>) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        // Shifted thresholds: leaf value is residual+1 for active slots.
        let (tu, tm) = (units.saturating_add(1), mem.saturating_add(1));
        self.descend(1, tu, tm, units, mem, exclude)
    }

    /// Leftmost feasible leaf under segment-tree node `i`, with
    /// backtracking (needed because the two maxima, and the excluded
    /// slot, can make a promising subtree fail at leaf level).
    fn descend(
        &self,
        i: usize,
        tu: u64,
        tm: u64,
        units: u64,
        mem: u64,
        exclude: Option<usize>,
    ) -> Option<usize> {
        if self.seg_units[i] < tu || self.seg_mem[i] < tm {
            return None;
        }
        if i >= self.span {
            let slot = i - self.span;
            return (slot < self.len && self.feasible(slot, units, mem, exclude)).then_some(slot);
        }
        self.descend(2 * i, tu, tm, units, mem, exclude)
            .or_else(|| self.descend(2 * i + 1, tu, tm, units, mem, exclude))
    }

    /// Feasible slot with the least residual units (ties: lowest slot),
    /// skipping `exclude` — the Best-Fit answer.
    pub fn best_fit(&self, units: u64, mem: u64, exclude: Option<usize>) -> Option<usize> {
        self.by_units
            .range((units, 0)..)
            .find(|&&(_, slot)| Some(slot) != exclude && self.mem[slot] >= mem)
            .map(|&(_, slot)| slot)
    }

    /// Feasible slot with the most residual units (ties: lowest slot),
    /// skipping `exclude` — the Worst-Fit answer.
    pub fn worst_fit(&self, units: u64, mem: u64, exclude: Option<usize>) -> Option<usize> {
        let mut group = None;
        for &(r, _) in self.by_units.range((units, 0)..).rev() {
            if group == Some(r) {
                continue; // group already scanned below
            }
            group = Some(r);
            // Equal-residual slots in ascending order: lowest index wins
            // within the highest feasible residual, exactly like
            // `max_by_key((remaining, usize::MAX - i))`.
            for &(_, slot) in self.by_units.range((r, 0)..=(r, usize::MAX)) {
                if Some(slot) != exclude && self.mem[slot] >= mem {
                    return Some(slot);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linear reference over the same state.
    struct Oracle {
        slots: Vec<Option<(u64, u64)>>, // (units, mem), None = inactive
    }

    impl Oracle {
        fn candidates<'a>(
            &'a self,
            units: u64,
            mem: u64,
            exclude: Option<usize>,
        ) -> impl Iterator<Item = (usize, u64)> + 'a {
            self.slots
                .iter()
                .enumerate()
                .filter_map(move |(i, s)| s.map(|(u, m)| (i, u, m)))
                .filter(move |&(i, u, m)| Some(i) != exclude && u >= units && m >= mem)
                .map(|(i, u, _)| (i, u))
        }

        fn first(&self, units: u64, mem: u64, exclude: Option<usize>) -> Option<usize> {
            self.candidates(units, mem, exclude).next().map(|(i, _)| i)
        }

        fn best(&self, units: u64, mem: u64, exclude: Option<usize>) -> Option<usize> {
            self.candidates(units, mem, exclude)
                .min_by_key(|&(i, u)| (u, i))
                .map(|(i, _)| i)
        }

        fn worst(&self, units: u64, mem: u64, exclude: Option<usize>) -> Option<usize> {
            self.candidates(units, mem, exclude)
                .max_by_key(|&(i, u)| (u, usize::MAX - i))
                .map(|(i, _)| i)
        }
    }

    #[test]
    fn empty_index_answers_none() {
        let idx = ResidualIndex::new(0);
        assert!(idx.is_empty());
        assert_eq!(idx.first_fit(0, 0, None), None);
        assert_eq!(idx.best_fit(0, 0, None), None);
        assert_eq!(idx.worst_fit(0, 0, None), None);
    }

    #[test]
    fn basic_queries_and_tie_breaks() {
        let mut idx = ResidualIndex::new(4);
        for (i, (u, m)) in [(50, 10), (30, 10), (30, 10), (80, 10)].iter().enumerate() {
            idx.set(i, *u, *m);
        }
        assert_eq!(idx.first_fit(40, 0, None), Some(0));
        assert_eq!(idx.first_fit(20, 0, None), Some(0));
        // Tightest fit for 20 is 30 residual; tie between 1 and 2 →
        // lowest index.
        assert_eq!(idx.best_fit(20, 0, None), Some(1));
        assert_eq!(idx.worst_fit(20, 0, None), Some(3));
        // Exclusion moves the answer.
        assert_eq!(idx.best_fit(20, 0, Some(1)), Some(2));
        assert_eq!(idx.worst_fit(20, 0, Some(3)), Some(0));
        // Memory binds independently of units.
        assert_eq!(idx.first_fit(20, 11, None), None);
        assert_eq!(idx.best_fit(20, 10, None), Some(1));
    }

    #[test]
    fn zero_residual_active_slot_matches_zero_demand() {
        let mut idx = ResidualIndex::new(2);
        idx.set(0, 0, 0);
        assert_eq!(idx.first_fit(0, 0, None), Some(0));
        assert_eq!(idx.best_fit(0, 0, None), Some(0));
        assert_eq!(idx.first_fit(1, 0, None), None);
    }

    #[test]
    fn deactivate_removes_and_set_restores() {
        let mut idx = ResidualIndex::new(3);
        idx.set(0, 10, 10);
        idx.set(1, 20, 10);
        idx.set(2, 30, 10);
        idx.deactivate(0);
        assert!(!idx.is_active(0));
        assert_eq!(idx.first_fit(5, 5, None), Some(1));
        idx.deactivate(1);
        assert_eq!(idx.best_fit(5, 5, None), Some(2));
        idx.set(0, 40, 10);
        assert_eq!(idx.first_fit(35, 5, None), Some(0));
        assert_eq!(idx.worst_fit(5, 5, None), Some(0));
        // Double deactivate is a no-op.
        idx.deactivate(1);
        assert_eq!(idx.best_fit(5, 5, None), Some(2));
    }

    #[test]
    fn worst_fit_ties_prefer_lowest_slot() {
        let mut idx = ResidualIndex::new(5);
        for i in 0..5 {
            idx.set(i, 100, 10);
        }
        assert_eq!(idx.worst_fit(1, 1, None), Some(0));
        assert_eq!(idx.worst_fit(1, 1, Some(0)), Some(1));
        // Memory knocks out the low slots within the top group.
        idx.set(0, 100, 0);
        idx.set(1, 100, 0);
        assert_eq!(idx.worst_fit(1, 1, None), Some(2));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Set(usize, u64, u64),
            Deactivate(usize),
            Query(u8, u64, u64, Option<usize>),
        }

        fn arb_op(n: usize) -> impl Strategy<Value = Op> {
            prop_oneof![
                (0..n, 0u64..200, 0u64..50).prop_map(|(s, u, m)| Op::Set(s, u, m)),
                (0..n).prop_map(Op::Deactivate),
                (0u8..3, 0u64..200, 0u64..50, proptest::option::of(0..n))
                    .prop_map(|(a, u, m, e)| Op::Query(a, u, m, e)),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn prop_index_matches_linear_oracle(
                n in 1usize..40,
                ops in proptest::collection::vec(arb_op(39), 1..120),
            ) {
                let mut idx = ResidualIndex::new(n);
                let mut oracle = Oracle { slots: vec![None; n] };
                for op in ops {
                    match op {
                        Op::Set(s, u, m) if s < n => {
                            idx.set(s, u, m);
                            oracle.slots[s] = Some((u, m));
                        }
                        Op::Deactivate(s) if s < n => {
                            idx.deactivate(s);
                            oracle.slots[s] = None;
                        }
                        Op::Query(a, u, m, e) => {
                            let e = e.filter(|&x| x < n);
                            let (got, want) = match a {
                                0 => (idx.first_fit(u, m, e), oracle.first(u, m, e)),
                                1 => (idx.best_fit(u, m, e), oracle.best(u, m, e)),
                                _ => (idx.worst_fit(u, m, e), oracle.worst(u, m, e)),
                            };
                            prop_assert_eq!(got, want, "algo {} units {} mem {}", a, u, m);
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
