//! Placement state: requests and node bins.

use serde::{Deserialize, Serialize};
use vfc_cpusched::topology::NodeSpec;
use vfc_simcore::MHz;
use vfc_vmm::VmTemplate;

/// A VM to place. Thin, copy-friendly view of a template.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementRequest {
    /// Template name (for per-template reporting).
    pub template: String,
    /// vCPU count (`k^vCPU`).
    pub vcpus: u32,
    /// Guaranteed virtual frequency (`F`).
    pub vfreq: MHz,
    /// Provisioned memory.
    pub mem_gb: u32,
}

impl PlacementRequest {
    /// Build a request from raw capacities.
    pub fn new(template: &str, vcpus: u32, vfreq: MHz, mem_gb: u32) -> Self {
        PlacementRequest {
            template: template.to_owned(),
            vcpus,
            vfreq,
            mem_gb,
        }
    }

    /// Frequency-weighted demand `k^vCPU × F` (left side of Eq. 7).
    pub fn freq_demand_mhz(&self) -> u64 {
        self.vcpus as u64 * self.vfreq.as_u32() as u64
    }
}

impl From<&VmTemplate> for PlacementRequest {
    fn from(t: &VmTemplate) -> Self {
        PlacementRequest {
            template: t.name.clone(),
            vcpus: t.vcpus,
            vfreq: t.vfreq,
            mem_gb: t.mem_gb,
        }
    }
}

/// One physical node during placement: its spec plus what has been packed
/// onto it so far.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeBin {
    /// The node's hardware description.
    pub spec: NodeSpec,
    /// Requests placed here, in arrival order.
    pub placed: Vec<PlacementRequest>,
    used_vcpus: u64,
    used_freq_mhz: u64,
    used_mem_gb: u64,
}

impl NodeBin {
    /// An empty bin over the given node.
    pub fn new(spec: NodeSpec) -> Self {
        NodeBin {
            spec,
            placed: Vec::new(),
            used_vcpus: 0,
            used_freq_mhz: 0,
            used_mem_gb: 0,
        }
    }

    /// vCPUs placed so far.
    pub fn used_vcpus(&self) -> u64 {
        self.used_vcpus
    }

    /// Frequency-weighted load placed so far (MHz).
    pub fn used_freq_mhz(&self) -> u64 {
        self.used_freq_mhz
    }

    /// Memory placed so far (GB).
    pub fn used_mem_gb(&self) -> u64 {
        self.used_mem_gb
    }

    /// Is anything placed here?
    pub fn is_used(&self) -> bool {
        !self.placed.is_empty()
    }

    /// Record a placement (feasibility is the constraint's job).
    pub fn place(&mut self, vm: &PlacementRequest) {
        self.used_vcpus += vm.vcpus as u64;
        self.used_freq_mhz += vm.freq_demand_mhz();
        self.used_mem_gb += vm.mem_gb as u64;
        self.placed.push(vm.clone());
    }

    /// Remove one placed instance matching `vm` (migration source side).
    /// Returns `false` if no matching instance is placed here.
    pub fn remove(&mut self, vm: &PlacementRequest) -> bool {
        match self.placed.iter().position(|p| p == vm) {
            Some(i) => {
                self.placed.swap_remove(i);
                self.used_vcpus -= vm.vcpus as u64;
                self.used_freq_mhz -= vm.freq_demand_mhz();
                self.used_mem_gb -= vm.mem_gb as u64;
                true
            }
            None => false,
        }
    }

    /// Number of placed instances of a template.
    pub fn count_of(&self, template: &str) -> usize {
        self.placed
            .iter()
            .filter(|p| p.template == template)
            .count()
    }

    /// Frequency-capacity utilization in [0, 1] (Eq. 7 load ratio).
    pub fn freq_utilization(&self) -> f64 {
        let cap = self.spec.freq_capacity_mhz();
        if cap == 0 {
            0.0
        } else {
            self.used_freq_mhz as f64 / cap as f64
        }
    }

    /// vCPU-count utilization relative to hardware threads.
    pub fn vcpu_utilization(&self) -> f64 {
        let cap = self.spec.nr_threads() as f64;
        if cap == 0.0 {
            0.0
        } else {
            self.used_vcpus as f64 / cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_from_template() {
        let t = VmTemplate::large();
        let r = PlacementRequest::from(&t);
        assert_eq!(r.template, "large");
        assert_eq!(r.vcpus, 4);
        assert_eq!(r.freq_demand_mhz(), 7200);
    }

    #[test]
    fn bin_accounting() {
        let mut bin = NodeBin::new(NodeSpec::chetemi());
        assert!(!bin.is_used());
        let small = PlacementRequest::new("small", 2, MHz(500), 4);
        let large = PlacementRequest::new("large", 4, MHz(1800), 8);
        bin.place(&small);
        bin.place(&small);
        bin.place(&large);
        assert!(bin.is_used());
        assert_eq!(bin.used_vcpus(), 8);
        assert_eq!(bin.used_freq_mhz(), 2 * 1000 + 7200);
        assert_eq!(bin.used_mem_gb(), 16);
        assert_eq!(bin.count_of("small"), 2);
        assert_eq!(bin.count_of("large"), 1);
        assert_eq!(bin.count_of("medium"), 0);
    }

    #[test]
    fn remove_reverses_place() {
        let mut bin = NodeBin::new(NodeSpec::chetemi());
        let small = PlacementRequest::new("small", 2, MHz(500), 4);
        bin.place(&small);
        bin.place(&small);
        assert!(bin.remove(&small));
        assert_eq!(bin.used_vcpus(), 2);
        assert_eq!(bin.used_freq_mhz(), 1000);
        assert_eq!(bin.used_mem_gb(), 4);
        assert!(bin.remove(&small));
        assert!(!bin.is_used());
        assert!(!bin.remove(&small), "nothing left to remove");
    }

    #[test]
    fn utilizations() {
        let mut bin = NodeBin::new(NodeSpec::chetemi()); // 40 thr, 96 000 MHz
        bin.place(&PlacementRequest::new("x", 20, MHz(2400), 1));
        assert!((bin.freq_utilization() - 0.5).abs() < 1e-12);
        assert!((bin.vcpu_utilization() - 0.5).abs() < 1e-12);
    }
}
