//! Placement algorithms: First-Fit, Best-Fit, Worst-Fit.

use crate::constraint::ConstraintMode;
use crate::model::{NodeBin, PlacementRequest};
use serde::{Deserialize, Serialize};
use vfc_cpusched::topology::NodeSpec;

/// Bin-packing heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementAlgorithm {
    /// First node (in cluster order) that fits.
    FirstFit,
    /// Feasible node with the *least* remaining capacity (tightest fit).
    BestFit,
    /// Feasible node with the *most* remaining capacity.
    WorstFit,
}

/// Outcome of placing a workload on a cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementResult {
    /// Final state of every node, in cluster order.
    pub nodes: Vec<NodeBin>,
    /// Node index per request, in request order; `None` = unplaceable.
    pub assignments: Vec<Option<usize>>,
    /// Requests that fit nowhere.
    pub unplaced: usize,
}

impl PlacementResult {
    /// Number of nodes hosting at least one VM.
    pub fn nodes_used(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_used()).count()
    }

    /// Highest per-node instance count of a template, with the node's
    /// family name — the paper reports e.g. "48 small VMs on a chetemi".
    pub fn max_per_node(&self, template: &str) -> Option<(usize, String)> {
        self.nodes
            .iter()
            .map(|n| (n.count_of(template), n.spec.name.clone()))
            .max_by_key(|(c, _)| *c)
            .filter(|(c, _)| *c > 0)
    }

    /// Mean frequency-capacity utilization over the *used* nodes.
    pub fn mean_used_utilization(&self) -> f64 {
        let used: Vec<&NodeBin> = self.nodes.iter().filter(|n| n.is_used()).collect();
        if used.is_empty() {
            0.0
        } else {
            used.iter().map(|n| n.freq_utilization()).sum::<f64>() / used.len() as f64
        }
    }
}

/// A configured placer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placer {
    /// Bin-packing heuristic in use.
    pub algorithm: PlacementAlgorithm,
    /// Feasibility rule in use.
    pub mode: ConstraintMode,
}

impl Placer {
    /// Combine a heuristic with a constraint.
    pub fn new(algorithm: PlacementAlgorithm, mode: ConstraintMode) -> Self {
        Placer { algorithm, mode }
    }

    /// Place every request, in order, onto the cluster.
    pub fn place(&self, cluster: &[NodeSpec], requests: &[PlacementRequest]) -> PlacementResult {
        let mut nodes: Vec<NodeBin> = cluster.iter().cloned().map(NodeBin::new).collect();
        let mut assignments = Vec::with_capacity(requests.len());
        let mut unplaced = 0usize;

        for vm in requests {
            let candidate = match self.algorithm {
                PlacementAlgorithm::FirstFit => {
                    nodes.iter().position(|bin| self.mode.fits(bin, vm))
                }
                PlacementAlgorithm::BestFit => nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, bin)| self.mode.fits(bin, vm))
                    // Tightest fit; lowest index breaks ties for
                    // determinism.
                    .min_by_key(|(i, bin)| (self.mode.remaining(bin), *i))
                    .map(|(i, _)| i),
                PlacementAlgorithm::WorstFit => nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, bin)| self.mode.fits(bin, vm))
                    .max_by_key(|(i, bin)| (self.mode.remaining(bin), usize::MAX - *i))
                    .map(|(i, _)| i),
            };
            match candidate {
                Some(i) => {
                    nodes[i].place(vm);
                    assignments.push(Some(i));
                }
                None => {
                    unplaced += 1;
                    assignments.push(None);
                }
            }
        }

        PlacementResult {
            nodes,
            assignments,
            unplaced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vfc_simcore::MHz;

    fn small() -> PlacementRequest {
        PlacementRequest::new("small", 2, MHz(500), 1)
    }

    fn large() -> PlacementRequest {
        PlacementRequest::new("large", 4, MHz(1800), 1)
    }

    fn two_node_cluster() -> Vec<NodeSpec> {
        vec![NodeSpec::chetemi(), NodeSpec::chiclet()]
    }

    #[test]
    fn first_fit_uses_cluster_order() {
        let placer = Placer::new(PlacementAlgorithm::FirstFit, ConstraintMode::Frequency);
        let result = placer.place(&two_node_cluster(), &[small(), small()]);
        assert_eq!(result.assignments, vec![Some(0), Some(0)]);
        assert_eq!(result.nodes_used(), 1);
        assert_eq!(result.unplaced, 0);
    }

    #[test]
    fn best_fit_prefers_the_tighter_node() {
        // chetemi (96 000 MHz) is tighter than chiclet (153 600): BestFit
        // fills chetemi first even if chiclet is listed first.
        let cluster = vec![NodeSpec::chiclet(), NodeSpec::chetemi()];
        let placer = Placer::new(PlacementAlgorithm::BestFit, ConstraintMode::Frequency);
        let result = placer.place(&cluster, &[small()]);
        assert_eq!(result.assignments, vec![Some(1)]);
    }

    #[test]
    fn worst_fit_prefers_the_emptier_node() {
        let cluster = vec![NodeSpec::chetemi(), NodeSpec::chiclet()];
        let placer = Placer::new(PlacementAlgorithm::WorstFit, ConstraintMode::Frequency);
        let result = placer.place(&cluster, &[small(), small()]);
        // Both land on chiclet: after one small, chiclet still has more
        // remaining than chetemi.
        assert_eq!(result.assignments, vec![Some(1), Some(1)]);
    }

    #[test]
    fn overflow_is_reported_unplaced() {
        let cluster = vec![NodeSpec::custom("nano", 1, 1, 1, MHz(2400))];
        let placer = Placer::new(PlacementAlgorithm::FirstFit, ConstraintMode::core_count());
        // nano has one thread: the 4-vCPU large can never fit.
        let result = placer.place(&cluster, &[large()]);
        assert_eq!(result.unplaced, 1);
        assert_eq!(result.assignments, vec![None]);
        assert_eq!(result.nodes_used(), 0);
    }

    #[test]
    fn frequency_constraint_needs_fewer_nodes_than_core_count() {
        // 60 smalls: core-count needs 120 vCPUs = 3 chetemi; frequency
        // needs 60 000 MHz = 1 chetemi.
        let cluster = vec![NodeSpec::chetemi(); 5];
        let requests: Vec<PlacementRequest> = (0..60).map(|_| small()).collect();
        let classic = Placer::new(PlacementAlgorithm::BestFit, ConstraintMode::core_count())
            .place(&cluster, &requests);
        let freq_aware = Placer::new(PlacementAlgorithm::BestFit, ConstraintMode::Frequency)
            .place(&cluster, &requests);
        assert_eq!(classic.nodes_used(), 3);
        assert_eq!(freq_aware.nodes_used(), 1);
        assert_eq!(classic.unplaced + freq_aware.unplaced, 0);
    }

    #[test]
    fn result_helpers() {
        let placer = Placer::new(PlacementAlgorithm::FirstFit, ConstraintMode::Frequency);
        let result = placer.place(&two_node_cluster(), &[small(), small(), large()]);
        let (count, family) = result.max_per_node("small").unwrap();
        assert_eq!(count, 2);
        assert_eq!(family, "chetemi");
        assert!(result.max_per_node("ghost").is_none());
        assert!(result.mean_used_utilization() > 0.0);
    }

    proptest! {
        #[test]
        fn prop_placements_respect_the_constraint(
            n_small in 0usize..120,
            n_large in 0usize..60,
            algo_pick in 0u8..3,
            freq_mode in proptest::bool::ANY,
        ) {
            let algorithm = match algo_pick {
                0 => PlacementAlgorithm::FirstFit,
                1 => PlacementAlgorithm::BestFit,
                _ => PlacementAlgorithm::WorstFit,
            };
            let mode = if freq_mode {
                ConstraintMode::Frequency
            } else {
                ConstraintMode::core_count()
            };
            let cluster = vec![NodeSpec::chetemi(), NodeSpec::chiclet(), NodeSpec::chetemi()];
            let mut requests: Vec<PlacementRequest> = Vec::new();
            requests.extend((0..n_small).map(|_| small()));
            requests.extend((0..n_large).map(|_| large()));
            let result = Placer::new(algorithm, mode).place(&cluster, &requests);

            // Every used bin satisfies its constraint.
            for bin in &result.nodes {
                match mode {
                    ConstraintMode::Frequency => prop_assert!(
                        bin.used_freq_mhz() <= bin.spec.freq_capacity_mhz()
                    ),
                    ConstraintMode::FrequencyFactor { factor } => prop_assert!(
                        bin.used_freq_mhz() as f64
                            <= bin.spec.freq_capacity_mhz() as f64 * factor
                    ),
                    ConstraintMode::CoreCount { .. } => prop_assert!(
                        bin.used_vcpus() <= bin.spec.nr_threads() as u64
                    ),
                }
            }
            // Assignment bookkeeping is consistent.
            let placed: usize = result.assignments.iter().filter(|a| a.is_some()).count();
            prop_assert_eq!(placed + result.unplaced, requests.len());
            let in_bins: usize = result.nodes.iter().map(|n| n.placed.len()).sum();
            prop_assert_eq!(in_bins, placed);
        }
    }
}
