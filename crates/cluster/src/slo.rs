//! SLO accounting: did each VM receive the virtual frequency it paid for,
//! whenever it actually wanted it?
//!
//! A period counts as a **violation** for a VM when at least one of its
//! vCPUs *demanded* at least its guaranteed cycles but *performed* less
//! than `tolerance ×` the guaranteed work (`F_v × p` hardware cycles).
//! Migration downtime counts as demanded-but-not-served for a saturating
//! VM, which is exactly the customer-visible cost the paper attributes to
//! migration-based consolidation.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-VM SLO counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmSlo {
    /// Periods in which the VM demanded its guarantee.
    pub demanding_periods: u64,
    /// Of those, periods in which the guarantee was not delivered.
    pub violated_periods: u64,
}

impl VmSlo {
    /// Violation rate in [0, 1]; 0 when the VM never demanded.
    pub fn violation_rate(&self) -> f64 {
        if self.demanding_periods == 0 {
            0.0
        } else {
            self.violated_periods as f64 / self.demanding_periods as f64
        }
    }
}

/// Tracks SLO compliance per VM class.
#[derive(Debug, Clone, Default)]
pub struct SloTracker {
    per_class: HashMap<String, VmSlo>,
    tolerance: f64,
}

impl SloTracker {
    /// `tolerance` is the delivered/guaranteed work ratio below which a
    /// demanding period counts as violated (e.g. 0.95).
    pub fn new(tolerance: f64) -> Self {
        SloTracker {
            per_class: HashMap::new(),
            tolerance: tolerance.clamp(0.0, 1.0),
        }
    }

    /// Record one VM-period. `demanded_ratio` = demanded / guaranteed
    /// cycles; `delivered_ratio` = performed / guaranteed work.
    pub fn record(&mut self, class: &str, demanded_ratio: f64, delivered_ratio: f64) {
        let entry = self.per_class.entry(class.to_owned()).or_default();
        if demanded_ratio >= 1.0 {
            entry.demanding_periods += 1;
            if delivered_ratio < self.tolerance {
                entry.violated_periods += 1;
            }
        }
    }

    /// The delivered/guaranteed ratio below which a demanding period is
    /// violated (so per-VM meters can apply the exact same predicate).
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// A VM that was demanding but entirely offline (migration downtime).
    pub fn record_offline_demanding(&mut self, class: &str) {
        let entry = self.per_class.entry(class.to_owned()).or_default();
        entry.demanding_periods += 1;
        entry.violated_periods += 1;
    }

    /// Per-class counters, sorted by class name.
    pub fn by_class(&self) -> Vec<(String, VmSlo)> {
        let mut v: Vec<_> = self
            .per_class
            .iter()
            .map(|(k, s)| (k.clone(), *s))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Aggregate violation rate across all classes.
    pub fn overall_rate(&self) -> f64 {
        let (mut demanding, mut violated) = (0u64, 0u64);
        for s in self.per_class.values() {
            demanding += s.demanding_periods;
            violated += s.violated_periods;
        }
        if demanding == 0 {
            0.0
        } else {
            violated as f64 / demanding as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_demanding_periods_never_violate() {
        let mut t = SloTracker::new(0.95);
        t.record("small", 0.5, 0.0); // idle-ish VM, served nothing: fine
        assert_eq!(t.overall_rate(), 0.0);
        let slo = t.by_class()[0].1;
        assert_eq!(slo.demanding_periods, 0);
    }

    #[test]
    fn demanding_and_underserved_violates() {
        let mut t = SloTracker::new(0.95);
        t.record("large", 1.2, 0.5); // wanted more than base, got half
        t.record("large", 1.2, 1.0); // fully served
        let slo = t.by_class()[0].1;
        assert_eq!(slo.demanding_periods, 2);
        assert_eq!(slo.violated_periods, 1);
        assert!((slo.violation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tolerance_boundary() {
        let mut t = SloTracker::new(0.95);
        t.record("x", 1.0, 0.949);
        t.record("x", 1.0, 0.951);
        assert_eq!(t.by_class()[0].1.violated_periods, 1);
    }

    #[test]
    fn offline_counts_as_violation() {
        let mut t = SloTracker::new(0.95);
        t.record_offline_demanding("small");
        assert_eq!(t.overall_rate(), 1.0);
    }

    #[test]
    fn aggregation_across_classes() {
        let mut t = SloTracker::new(0.95);
        t.record("a", 1.0, 1.0);
        t.record("b", 1.0, 0.1);
        assert!((t.overall_rate() - 0.5).abs() < 1e-12);
        assert_eq!(t.by_class().len(), 2);
    }
}
