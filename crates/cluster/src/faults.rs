//! Fault injection for the cluster simulation.
//!
//! The paper evaluates the controller on healthy nodes; real clusters
//! lose nodes and controller daemons. This module defines *what* can
//! fail — the [`manager::ClusterManager`](crate::manager::ClusterManager)
//! decides *how* the cluster reacts:
//!
//! * **node crash** — every VM on the node is evacuated through the same
//!   Eq. 7 placement used for admission (paying an evacuation downtime);
//!   VMs that fit nowhere wait *stranded* and are retried every period.
//!   The node rejoins empty after `repair_periods`.
//! * **controller crash** — the node keeps running but nobody writes
//!   `cpu.max`: the dying controller uncaps everything (the same
//!   fail-open posture as the daemon's circuit breaker) and the node runs
//!   uncontrolled for `controller_restart_periods`. The replacement
//!   controller starts [`RestartPolicy::Warm`] (from the journal snapshot
//!   the dead one exported) or [`RestartPolicy::Cold`] (empty wallets and
//!   history).
//! * **migration failure** — a live migration fails at the landing
//!   handshake with some probability and rolls back to the source node
//!   (re-placed elsewhere if the source meanwhile died or filled up).
//! * **control-plane partition** — a node keeps running its controller
//!   but cannot reach the control plane: lease renewals
//!   ([`ClusterManager::renew_leases`](crate::manager::ClusterManager::renew_leases))
//!   skip it for the window, so with cap leases enabled the node's
//!   controller degrades to its locally-safe ladder (hold Eq. 2
//!   guarantees, then uncap) instead of enforcing stale allocations
//!   forever.
//!
//! All draws come from one seeded [`SplitMix64`] stream consumed in a
//! fixed order, so runs are reproducible and warm-vs-cold comparisons can
//! share the exact same fault schedule.
//!
//! [`SplitMix64`]: vfc_simcore::SplitMix64

use serde::{Deserialize, Serialize};

/// How a replacement controller comes up after a controller crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestartPolicy {
    /// Restore wallets, estimation history and previous allocations from
    /// the journal snapshot the dead controller left behind.
    Warm,
    /// Start from scratch: empty wallets, no history.
    Cold,
}

/// What can go wrong, and how often. [`FaultModel::none`] disables
/// everything (the default for existing callers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Seed of the fault-schedule RNG (independent of workload seeds).
    pub seed: u64,
    /// Per-node, per-period probability of a node crash.
    pub node_crash_rate: f64,
    /// Deterministic node crashes: (period, node index). Fires when the
    /// cluster *enters* that period, on top of the random draws.
    pub scripted_node_crashes: Vec<(u64, usize)>,
    /// Periods a crashed node stays down before rejoining (empty).
    pub repair_periods: u64,
    /// Per-node, per-period probability of a controller crash.
    pub controller_crash_rate: f64,
    /// Deterministic controller crashes: (period, node index).
    pub scripted_controller_crashes: Vec<(u64, usize)>,
    /// Periods a node runs uncapped before its controller restarts
    /// (the `k` of the recovery analysis).
    pub controller_restart_periods: u64,
    /// Warm (journal) or cold restart for replacement controllers.
    pub restart: RestartPolicy,
    /// Probability that a landing migration fails and rolls back.
    pub migration_fail_rate: f64,
    /// Downtime paid by a VM evacuated off a crashed node.
    pub evacuation_downtime_periods: u64,
    /// Periods after a controller restart during which VM-periods on the
    /// node still count toward the recovery-window SLO accounting.
    pub recovery_tail_periods: u64,
    /// Control-plane partition windows: `(start, end, node index)` — the
    /// node cannot reach the control plane for periods `start..end`
    /// (half-open). The node itself keeps running; only lease renewals
    /// are cut off.
    pub scripted_partitions: Vec<(u64, u64, usize)>,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

impl FaultModel {
    /// No faults ever fire; recovery accounting stays empty.
    pub fn none() -> Self {
        FaultModel {
            seed: 0,
            node_crash_rate: 0.0,
            scripted_node_crashes: Vec::new(),
            repair_periods: 10,
            controller_crash_rate: 0.0,
            scripted_controller_crashes: Vec::new(),
            controller_restart_periods: 3,
            restart: RestartPolicy::Warm,
            migration_fail_rate: 0.0,
            evacuation_downtime_periods: 3,
            recovery_tail_periods: 10,
            scripted_partitions: Vec::new(),
        }
    }

    /// Anything to inject at all?
    pub fn enabled(&self) -> bool {
        self.node_crash_rate > 0.0
            || self.controller_crash_rate > 0.0
            || self.migration_fail_rate > 0.0
            || !self.scripted_node_crashes.is_empty()
            || !self.scripted_controller_crashes.is_empty()
            || !self.scripted_partitions.is_empty()
    }

    /// Is `node` partitioned from the control plane at `period`?
    pub fn is_partitioned(&self, node: usize, period: u64) -> bool {
        self.scripted_partitions
            .iter()
            .any(|&(start, end, n)| n == node && (start..end).contains(&period))
    }
}

/// What the fault machinery did over a run — attached to
/// [`ClusterReport`](crate::manager::ClusterReport) when a fault model is
/// active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Nodes lost (scripted + random).
    pub node_crashes: u64,
    /// Controllers lost (scripted + random).
    pub controller_crashes: u64,
    /// Replacement controllers restored from a journal snapshot.
    pub warm_restarts: u64,
    /// Replacement controllers started from scratch.
    pub cold_restarts: u64,
    /// VMs evacuated off crashed nodes.
    pub evacuated_vms: u64,
    /// Migrations that failed at landing and rolled back.
    pub migrations_failed: u64,
    /// VM-periods spent waiting for capacity after an evacuation found
    /// no node to land on.
    pub stranded_vm_periods: u64,
    /// VM-periods spent on a node whose controller was down (running
    /// uncapped, guarantees unenforced).
    pub uncontrolled_vm_periods: u64,
    /// Node-periods spent partitioned from the control plane (lease
    /// renewals cut off; zero unless partitions are scripted).
    pub partitioned_node_periods: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled_and_default() {
        assert!(!FaultModel::none().enabled());
        assert_eq!(FaultModel::default(), FaultModel::none());
    }

    #[test]
    fn any_rate_or_script_enables() {
        let mut m = FaultModel::none();
        m.migration_fail_rate = 0.1;
        assert!(m.enabled());
        let mut m = FaultModel::none();
        m.scripted_node_crashes.push((5, 0));
        assert!(m.enabled());
        let mut m = FaultModel::none();
        m.scripted_controller_crashes.push((5, 0));
        assert!(m.enabled());
        let mut m = FaultModel::none();
        m.scripted_partitions.push((5, 10, 0));
        assert!(m.enabled());
    }

    #[test]
    fn partition_windows_are_half_open_per_node() {
        let mut m = FaultModel::none();
        m.scripted_partitions.push((5, 10, 1));
        assert!(!m.is_partitioned(1, 4));
        assert!(m.is_partitioned(1, 5));
        assert!(m.is_partitioned(1, 9));
        assert!(!m.is_partitioned(1, 10));
        assert!(!m.is_partitioned(0, 7), "only the named node is cut off");
    }

    #[test]
    fn report_serializes() {
        let r = FaultReport {
            node_crashes: 1,
            warm_restarts: 2,
            ..FaultReport::default()
        };
        let s = serde_json::to_string(&r).unwrap();
        let back: FaultReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }
}
