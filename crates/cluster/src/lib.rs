#![warn(missing_docs)]

//! Cluster-level management built on the `vfc` stack.
//!
//! The paper's state-of-the-art review (§II) observes that existing
//! consolidation systems handle overload "relying on migration
//! mechanism", whereas virtual frequency capping lets the placement
//! promise be kept *on the node* by the controller. This crate implements
//! both worlds on the same simulated substrate so they can be compared:
//!
//! * [`Strategy::FrequencyControl`] — VMs are admitted under the core
//!   splitting constraint (Eq. 7); every node runs the paper's six-stage
//!   controller; no migrations are ever needed;
//! * [`Strategy::MigrationBased`] — classic overcommitment with a
//!   consolidation factor and **no** controller; overloaded nodes shed
//!   VMs via live migration (with realistic downtime), the legacy
//!   technique the paper argues against.
//!
//! The [`manager::ClusterManager`] runs either strategy over a set of
//! [`vfc_cpusched::topology::NodeSpec`]s, tracking energy, migrations and
//! per-class SLO violations ([`slo`]). Two drivers sit on top of it:
//! the legacy fixed-step [`ClusterManager::run_period`] (every node,
//! every period) and the discrete-event [`events::EventDrivenCluster`]
//! (only busy nodes cost anything), which replays VM lifetimes from a
//! [`trace::TraceReader`] at datacenter scale.

pub mod events;
pub mod faults;
pub mod manager;
pub mod slo;
pub mod trace;

pub use events::{EventDrivenCluster, EventStats, WorkloadFactory};

/// Set the worker-thread count for the parallel node advance (and every
/// other `par_iter_mut` in the process): `0` = one worker per available
/// core (the default), `1` = fully serial, `n` = exactly `n` workers
/// even above the core count. The `experiments trace` harness wires the
/// `VFC_TRACE_THREADS` environment knob to this. Thread count never
/// changes results — the determinism contract in [`events`] holds for
/// every value — only wall-clock.
pub fn set_parallelism(threads: usize) {
    rayon::set_max_threads(threads);
}
pub use faults::{FaultModel, FaultReport, RestartPolicy};
pub use manager::{
    ClusterError, ClusterManager, ClusterReport, GlobalVmId, NodeLoad, PeriodSample, PeriodUsage,
    ResizeOutcome, Strategy, VmPeriodUsage,
};
pub use slo::{SloTracker, VmSlo};
pub use trace::{CsvTraceReader, SyntheticTrace, TraceError, TraceReader, TraceVmSpec};
