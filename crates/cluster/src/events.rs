//! Event-driven cluster core.
//!
//! [`ClusterManager::run_period`] is a fixed-step driver: every node
//! advances every period, which is O(nodes) per period even when almost
//! every host is quiet — hopeless for thousands of nodes and hundreds of
//! thousands of VM arrivals. [`EventDrivenCluster`] reworks the same
//! cluster around a discrete-event queue ([`vfc_simcore::EventQueue`]):
//! VM arrival/departure, controller periods, fault ticks, and migration
//! completions are *events*, and **a quiet host schedules nothing and
//! costs nothing** — its controller runs zero iterations and its host
//! never ticks.
//!
//! # Phase encoding
//!
//! Timestamps pack `period × 8 + phase` into one `u64`, so intra-period
//! ordering is part of the timestamp itself and the queue's FIFO
//! tie-break applies only within a phase:
//!
//! | phase | constant | what happens |
//! |------:|----------|--------------|
//! | 0 | [`PH_DEPART`] | departures free capacity first |
//! | 1 | [`PH_ARRIVE`] | arrivals are admitted (Eq. 7 / core-count) |
//! | 2 | [`PH_FAULT`] | repairs, node/controller crash draws |
//! | 3 | [`PH_LANDING`] | due migrations land, stranded VMs retry |
//! | 4 | [`PH_NODE`] | busy nodes advance in parallel |
//! | 5 | [`PH_CLOSE`] | serial SLO/energy accounting, migration policy |
//!
//! This mirrors the legacy `run_period` sequence exactly (deploys happen
//! *between* legacy periods, i.e. before the fault phase).
//!
//! # Determinism contract
//!
//! Same construction + same scheduled specs ⇒ byte-identical event
//! journals and reports: every queue tie-break is FIFO, every RNG is
//! seeded, and the parallel node advance only touches per-node state
//! that is merged serially in node order. The worker count
//! ([`crate::set_parallelism`], env `VFC_TRACE_THREADS` under
//! `experiments trace`) is therefore invisible in every output — the
//! same-instant batch is sorted *before* the fan-out, each worker owns
//! disjoint `NodeRuntime`s with their own RNG streams, and all
//! cross-node accounting (`close_period_for`, fault draws, the journal)
//! runs on the event-loop thread in that sorted shard order. The
//! `events_parallel_equivalence` proptest pins serial vs forced-4-thread
//! runs to byte-identical journals and reports.
//!
//! Against the legacy driver, [`ClusterManager::report`] is
//! **bit-identical** for runs where no VM ever lands on a host that the
//! event core previously skipped (e.g. all arrivals before period 1,
//! departures at any time, no faults, no migrations): an idle host's
//! governor RNG advances under the legacy driver but not here, so a VM
//! landing on such a host later sees a different (equally valid) noise
//! stream. The `events_equivalence` proptest pins the contract.
//! Period-sample history differs in one way: the event core records no
//! samples for periods in which the whole cluster was empty (it jumps
//! over them), and when a fault model is active it only processes
//! periods while VMs are present or arrivals are pending.

use crate::manager::{ClusterError, ClusterManager, ClusterReport, GlobalVmId};
use crate::trace::TraceVmSpec;
use serde::{Deserialize, Serialize};
use vfc_placement::algo::PlacementAlgorithm;
use vfc_simcore::{EventQueue, Scheduled, SplitMix64};
use vfc_vmm::workload::{SteadyDemand, Workload};
use vfc_vmm::VmTemplate;

/// Phases per period in the timestamp encoding (spare slots included).
pub const PHASES_PER_PERIOD: u64 = 8;
/// Departures: capacity frees before the same instant's arrivals.
pub const PH_DEPART: u64 = 0;
/// Arrivals: admission under the strategy's constraint.
pub const PH_ARRIVE: u64 = 1;
/// Fault machinery: repairs first, then crash draws.
pub const PH_FAULT: u64 = 2;
/// Migration landings and stranded retries.
pub const PH_LANDING: u64 = 3;
/// Parallel node advance (hosts tick, controllers iterate).
pub const PH_NODE: u64 = 4;
/// Serial end-of-period accounting.
pub const PH_CLOSE: u64 = 5;

/// Pack `(period, phase)` into an event timestamp.
pub fn encode_time(period: u64, phase: u64) -> u64 {
    debug_assert!(phase < PHASES_PER_PERIOD);
    period * PHASES_PER_PERIOD + phase
}

/// Unpack an event timestamp into `(period, phase)`.
pub fn decode_time(t: u64) -> (u64, u64) {
    (t / PHASES_PER_PERIOD, t % PHASES_PER_PERIOD)
}

/// What can happen in the cluster. `slot` indexes the scheduled spec
/// table, `vm` a manager VM record, `node` a cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClusterEvent {
    /// A trace VM arrives and requests admission.
    Arrival { slot: usize },
    /// A trace VM departs (wherever it currently is).
    Departure { slot: usize },
    /// Per-period fault machinery (only while a fault model is active).
    FaultTick,
    /// An in-flight VM's downtime elapsed (or a stranded retry).
    Landing { vm: usize },
    /// A busy node's controller period.
    NodePeriod { node: usize },
    /// End-of-period serial accounting.
    PeriodClose,
}

/// Counters for everything the event loop processed — the raw material
/// for the quiet-hosts-are-free bound and the events/sec throughput
/// figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventStats {
    /// Every event popped off the queue.
    pub events_processed: u64,
    /// VM arrivals processed (admitted or rejected).
    pub arrivals: u64,
    /// VM departures processed.
    pub departures: u64,
    /// Landing events processed (includes stranded retries).
    pub landings: u64,
    /// Per-node period advances processed.
    pub node_periods: u64,
    /// Fault ticks processed.
    pub fault_ticks: u64,
    /// Period closes processed.
    pub closes: u64,
}

/// Builds each admitted VM's workload: `(spec slot, template, rng)`.
/// Slot-keyed so a test harness can reproduce the exact same workload
/// objects outside the event core.
pub type WorkloadFactory = Box<dyn Fn(usize, &VmTemplate, &mut SplitMix64) -> Box<dyn Workload>>;

/// The event-driven driver. Wraps a [`ClusterManager`] and replays
/// scheduled VM lifetimes through the discrete-event queue. See the
/// module docs for the phase model and determinism contract.
pub struct EventDrivenCluster {
    mgr: ClusterManager,
    queue: EventQueue<ClusterEvent>,
    specs: Vec<TraceVmSpec>,
    /// Slot → manager id once admitted (`None` before arrival or after a
    /// capacity rejection).
    slot_gvm: Vec<Option<GlobalVmId>>,
    /// Per node: the latest period for which a `NodePeriod` event has
    /// been scheduled — the "is this host awake?" guard.
    node_next: Vec<u64>,
    /// Nodes advanced in the current period's `PH_NODE` batch, sorted.
    active_nodes: Vec<usize>,
    active_period: u64,
    /// Is a `PeriodClose` currently queued? (The close chain
    /// self-perpetuates while VMs are present.)
    close_queued: bool,
    /// Is a `FaultTick` currently queued?
    fault_tick_queued: bool,
    /// Scratch for batching same-instant landings.
    landing_batch: Vec<usize>,
    /// VMs currently deployed (placed, in flight, or stranded).
    vms_present: usize,
    /// Scheduled arrivals not yet processed.
    arrivals_pending: usize,
    algorithm: PlacementAlgorithm,
    workloads: WorkloadFactory,
    wrng: SplitMix64,
    stats: EventStats,
    journal: Option<Vec<String>>,
}

impl EventDrivenCluster {
    /// Wrap a freshly built manager. Workloads default to a steady full
    /// demand; override with [`EventDrivenCluster::with_workloads`].
    pub fn new(mut mgr: ClusterManager) -> Self {
        mgr.set_track_inflight();
        let node_next = vec![0; mgr.node_count()];
        EventDrivenCluster {
            mgr,
            queue: EventQueue::new(),
            specs: Vec::new(),
            slot_gvm: Vec::new(),
            node_next,
            active_nodes: Vec::new(),
            active_period: 0,
            close_queued: false,
            fault_tick_queued: false,
            landing_batch: Vec::new(),
            vms_present: 0,
            arrivals_pending: 0,
            algorithm: PlacementAlgorithm::BestFit,
            workloads: Box::new(|_, _, _| Box::new(SteadyDemand::full())),
            wrng: SplitMix64::new(0xE7E9_7D41),
            stats: EventStats::default(),
            journal: None,
        }
    }

    /// Builder: placement heuristic used for every admission.
    pub fn with_algorithm(mut self, algorithm: PlacementAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Builder: workload factory (and the seed of the RNG handed to it).
    pub fn with_workloads(mut self, seed: u64, factory: WorkloadFactory) -> Self {
        self.wrng = SplitMix64::new(seed);
        self.workloads = factory;
        self
    }

    /// Start recording one line per processed event. Two same-seed runs
    /// must produce byte-identical journals — the determinism pin.
    pub fn enable_journal(&mut self) {
        self.journal = Some(Vec::new());
    }

    /// The recorded event journal, if enabled.
    pub fn journal(&self) -> Option<&[String]> {
        self.journal.as_deref()
    }

    /// Counters of everything processed so far.
    pub fn stats(&self) -> EventStats {
        self.stats
    }

    /// The wrapped manager (read-only: reports, telemetry, loads).
    pub fn manager(&self) -> &ClusterManager {
        &self.mgr
    }

    /// Mutable access to the wrapped manager, for the control actions a
    /// driving harness performs *between* `run_until` steps: lease
    /// renewal heartbeats, stage-delay fault injection, policy enables.
    /// Mutating VM placement through this handle mid-run is not
    /// supported — use the event API for arrivals and departures.
    pub fn manager_mut(&mut self) -> &mut ClusterManager {
        &mut self.mgr
    }

    /// Final accounting (delegates to [`ClusterManager::report`]).
    pub fn report(&self) -> ClusterReport {
        self.mgr.report()
    }

    /// Manager id of the trace slot's VM, once admitted.
    pub fn vm_id_of(&self, slot: usize) -> Option<GlobalVmId> {
        self.slot_gvm.get(slot).copied().flatten()
    }

    /// Events still queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedule one VM lifetime; returns its spec slot. A VM arriving at
    /// second `t` is admitted just before period `t + 1`; a departure at
    /// second `d` takes effect just before period `d + 1`.
    pub fn schedule_vm(&mut self, spec: TraceVmSpec) -> usize {
        let slot = self.specs.len();
        let arrive_p = spec.arrival + 1;
        self.queue.schedule(
            encode_time(arrive_p, PH_ARRIVE),
            ClusterEvent::Arrival { slot },
        );
        self.arrivals_pending += 1;
        if let Some(d) = spec.departure {
            debug_assert!(d > spec.arrival, "trace validation enforces this");
            self.queue.schedule(
                encode_time(d + 1, PH_DEPART),
                ClusterEvent::Departure { slot },
            );
        }
        self.specs.push(spec);
        self.slot_gvm.push(None);
        slot
    }

    /// Schedule a whole trace (specs in order).
    pub fn load_trace(&mut self, specs: Vec<TraceVmSpec>) {
        for spec in specs {
            self.schedule_vm(spec);
        }
    }

    /// Process every event up to and including period `horizon`, then
    /// move the period counter there (trailing quiet periods are jumped
    /// over, not simulated). Events beyond the horizon stay queued for a
    /// later call.
    pub fn run_until(&mut self, horizon: u64) {
        let limit = encode_time(horizon, PHASES_PER_PERIOD - 1);
        while self.queue.peek_time().is_some_and(|t| t <= limit) {
            self.step();
        }
        if self.mgr.period() < horizon {
            self.mgr.begin_period_at(horizon);
        }
    }

    /// Process events until none remain (every VM departed or ran its
    /// lifetime out); returns the final period. Diverges only if some
    /// VM never departs — cap those runs with
    /// [`EventDrivenCluster::run_until`].
    pub fn run_to_completion(&mut self) -> u64 {
        while self.step() {}
        self.mgr.period()
    }

    /// Pop + dispatch one event. Returns `false` on an empty queue.
    fn step(&mut self) -> bool {
        let Some(ev) = self.pop_logged() else {
            return false;
        };
        let (p, _phase) = decode_time(ev.time);
        match ev.event {
            ClusterEvent::Arrival { slot } => self.on_arrival(p, slot),
            ClusterEvent::Departure { slot } => self.on_departure(slot),
            ClusterEvent::FaultTick => self.on_fault_tick(p),
            ClusterEvent::Landing { vm } => self.on_landing_batch(p, ev.time, vm),
            ClusterEvent::NodePeriod { node } => self.on_node_batch(p, ev.time, node),
            ClusterEvent::PeriodClose => self.on_close(p),
        }
        true
    }

    fn pop_logged(&mut self) -> Option<Scheduled<ClusterEvent>> {
        let ev = self.queue.pop()?;
        self.log_event(&ev);
        Some(ev)
    }

    fn pop_logged_at(&mut self, t: u64) -> Option<Scheduled<ClusterEvent>> {
        let ev = self.queue.pop_at(t)?;
        self.log_event(&ev);
        Some(ev)
    }

    fn log_event(&mut self, ev: &Scheduled<ClusterEvent>) {
        self.stats.events_processed += 1;
        if let Some(journal) = &mut self.journal {
            let (p, phase) = decode_time(ev.time);
            journal.push(format!("p{p}.{phase} seq{} {:?}", ev.seq, ev.event));
        }
    }

    /// A node gained a VM effective period `p`: make sure it advances
    /// from `p` on, and that `p` gets a close.
    fn wake_node(&mut self, node: usize, p: u64) {
        if self.node_next[node] < p {
            self.node_next[node] = p;
            self.queue
                .schedule(encode_time(p, PH_NODE), ClusterEvent::NodePeriod { node });
        }
        self.ensure_close(p);
    }

    /// Revive the close chain at period `p` if it is not already queued.
    /// While VMs are present the close handler re-schedules itself, so
    /// every period from the first admission to the last departure gets
    /// its serial accounting (offline VMs included).
    fn ensure_close(&mut self, p: u64) {
        if !self.close_queued {
            self.close_queued = true;
            self.queue
                .schedule(encode_time(p, PH_CLOSE), ClusterEvent::PeriodClose);
        }
    }

    /// Revive the fault chain at period `p` if a model is active. Fault
    /// draws happen every period while VMs are present or arrivals are
    /// pending; quiet stretches before the first arrival are jumped.
    fn ensure_fault_tick(&mut self, p: u64) {
        if self.mgr.faults_enabled() && !self.fault_tick_queued {
            self.fault_tick_queued = true;
            self.queue
                .schedule(encode_time(p, PH_FAULT), ClusterEvent::FaultTick);
        }
    }

    fn on_arrival(&mut self, p: u64, slot: usize) {
        self.stats.arrivals += 1;
        self.arrivals_pending -= 1;
        let template = self.specs[slot].template.clone();
        let workload = (self.workloads)(slot, &template, &mut self.wrng);
        match self
            .mgr
            .try_deploy_with(&template, workload, self.algorithm)
        {
            Ok(id) => {
                self.slot_gvm[slot] = Some(id);
                self.vms_present += 1;
                let node = self
                    .mgr
                    .vm_node(id.0 as usize)
                    .expect("freshly deployed VM is placed");
                self.wake_node(node, p);
                self.ensure_fault_tick(p);
            }
            Err(ClusterError::NoCapacity) => {
                // Counted as a rejection by the manager; the departure
                // event (if any) will find no id and no-op.
            }
            Err(e) => unreachable!("trace-validated template rejected: {e}"),
        }
    }

    fn on_departure(&mut self, slot: usize) {
        self.stats.departures += 1;
        if let Some(id) = self.slot_gvm[slot] {
            self.mgr
                .undeploy(id)
                .expect("departures fire once per admitted VM");
            self.vms_present -= 1;
        }
    }

    fn on_fault_tick(&mut self, p: u64) {
        self.stats.fault_ticks += 1;
        self.fault_tick_queued = false;
        self.mgr.begin_period_at(p);
        self.mgr.fault_phase();
        // Crash evacuations became in-flight VMs: schedule their
        // landings. Stranded VMs (nowhere to go) retry *this* period's
        // landing phase, exactly like the legacy per-period sweep.
        for (vm, arrive) in self.mgr.drain_pending_inflight() {
            self.queue.schedule(
                encode_time(arrive, PH_LANDING),
                ClusterEvent::Landing { vm },
            );
        }
        for vm in self.mgr.stranded_indices() {
            self.queue
                .schedule(encode_time(p, PH_LANDING), ClusterEvent::Landing { vm });
        }
        if self.vms_present > 0 {
            self.ensure_close(p);
        }
        if self.vms_present > 0 || self.arrivals_pending > 0 {
            self.fault_tick_queued = true;
            self.queue
                .schedule(encode_time(p + 1, PH_FAULT), ClusterEvent::FaultTick);
        }
    }

    fn on_landing_batch(&mut self, p: u64, t: u64, first: usize) {
        self.stats.landings += 1;
        let mut batch = std::mem::take(&mut self.landing_batch);
        batch.clear();
        batch.push(first);
        while let Some(ev) = self.pop_logged_at(t) {
            self.stats.landings += 1;
            let ClusterEvent::Landing { vm } = ev.event else {
                unreachable!("only landings live in PH_LANDING");
            };
            batch.push(vm);
        }
        // Land in ascending VM-record order (legacy sweep order);
        // stranded retries may duplicate scheduled landings.
        batch.sort_unstable();
        batch.dedup();
        self.mgr.begin_period_at(p);
        self.mgr.land_vm_set(&batch);
        for &vm in &batch {
            if let Some(node) = self.mgr.vm_node(vm) {
                self.wake_node(node, p);
            }
        }
        // Failed/rolled-back landings went back in flight.
        for (vm, arrive) in self.mgr.drain_pending_inflight() {
            self.queue.schedule(
                encode_time(arrive, PH_LANDING),
                ClusterEvent::Landing { vm },
            );
        }
        self.landing_batch = batch;
    }

    fn on_node_batch(&mut self, p: u64, t: u64, first: usize) {
        self.stats.node_periods += 1;
        let mut batch = std::mem::take(&mut self.active_nodes);
        batch.clear();
        batch.push(first);
        while let Some(ev) = self.pop_logged_at(t) {
            self.stats.node_periods += 1;
            let ClusterEvent::NodePeriod { node } = ev.event else {
                unreachable!("only node periods live in PH_NODE");
            };
            batch.push(node);
        }
        // One event per node per period (guarded by `node_next`), but
        // scheduling order is arbitrary — sort for the deterministic
        // merge order `close_period_for` requires.
        batch.sort_unstable();
        batch.dedup();
        // A node emptied since its period was scheduled (departures,
        // crash evacuation) goes back to sleep without advancing.
        batch.retain(|&n| self.mgr.node_has_residents(n));
        self.mgr.begin_period_at(p);
        self.mgr.advance_node_set(&batch);
        for &n in &batch {
            debug_assert!(self.mgr.node_has_residents(n));
            self.node_next[n] = p + 1;
            self.queue.schedule(
                encode_time(p + 1, PH_NODE),
                ClusterEvent::NodePeriod { node: n },
            );
        }
        if !batch.is_empty() {
            self.ensure_close(p);
        }
        self.active_nodes = batch;
        self.active_period = p;
    }

    fn on_close(&mut self, p: u64) {
        self.stats.closes += 1;
        self.close_queued = false;
        let mut active = std::mem::take(&mut self.active_nodes);
        if self.active_period != p {
            // No node advanced this period (offline-only accounting).
            active.clear();
        }
        self.mgr.begin_period_at(p);
        self.mgr.close_period_for(&active);
        self.active_nodes = active;
        // The migration policy may have started migrations just now.
        for (vm, arrive) in self.mgr.drain_pending_inflight() {
            self.queue.schedule(
                encode_time(arrive, PH_LANDING),
                ClusterEvent::Landing { vm },
            );
        }
        if self.vms_present > 0 {
            self.close_queued = true;
            self.queue
                .schedule(encode_time(p + 1, PH_CLOSE), ClusterEvent::PeriodClose);
        }
    }
}
