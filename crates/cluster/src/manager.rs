//! The cluster manager: admission, per-node control, migrations, and
//! energy/SLO accounting. See the crate docs for the two strategies.

use crate::slo::{SloTracker, VmSlo};
use serde::{Deserialize, Serialize};
use std::fmt;
use vfc_controller::{ControlMode, Controller, ControllerConfig};
use vfc_cpusched::topology::NodeSpec;
use vfc_placement::constraint::ConstraintMode;
use vfc_placement::model::{NodeBin, PlacementRequest};
use vfc_simcore::{Micros, VcpuId, VmId};
use vfc_vmm::workload::Workload;
use vfc_vmm::{SimHost, VmTemplate};

/// Cluster-wide VM identifier (stable across migrations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalVmId(pub u32);

impl fmt::Display for GlobalVmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gvm{}", self.0)
    }
}

/// How the cluster keeps its promises.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Eq. 7 admission + the paper's controller on every node.
    FrequencyControl,
    /// Eq. 7 admission + the controller with the throttle-aware
    /// estimation extension (detects capped bursts from
    /// `cpu.stat::throttled_usec` instead of waiting for the consumption
    /// trend).
    FrequencyControlThrottleAware,
    /// Core-count admission with an overcommitment `factor`, no
    /// controller; nodes whose utilization stays above `high_watermark`
    /// for `sustain` consecutive periods migrate their largest VM away,
    /// paying `downtime_periods` of unavailability (the legacy approach
    /// of §II).
    MigrationBased {
        /// vCPU overcommitment factor for admission.
        factor: f64,
        /// Utilization above which a node counts as hot.
        high_watermark: f64,
        /// Consecutive hot periods before a migration fires.
        sustain: u32,
        /// Periods a migrating VM is offline.
        downtime_periods: u32,
    },
}

impl Strategy {
    /// The §II defaults used by the comparison scenario.
    pub fn migration_default() -> Strategy {
        Strategy::MigrationBased {
            factor: 1.8,
            high_watermark: 0.95,
            sustain: 3,
            downtime_periods: 3,
        }
    }

    fn constraint(&self) -> ConstraintMode {
        match self {
            Strategy::FrequencyControl | Strategy::FrequencyControlThrottleAware => {
                ConstraintMode::Frequency
            }
            Strategy::MigrationBased { factor, .. } => {
                ConstraintMode::CoreCount { factor: *factor }
            }
        }
    }

    fn controller_config(&self) -> Option<ControllerConfig> {
        match self {
            Strategy::FrequencyControl => Some(ControllerConfig::paper_defaults()),
            Strategy::FrequencyControlThrottleAware => Some(ControllerConfig::throttle_aware()),
            Strategy::MigrationBased { .. } => None,
        }
    }
}

struct NodeRuntime {
    host: SimHost,
    controller: Option<Controller>,
    bin: NodeBin,
    hot_streak: u32,
}

enum Location {
    OnNode {
        node: usize,
        local: VmId,
    },
    InFlight {
        dest: usize,
        arrive: u64,
    },
    /// Terminated by the customer; the id stays reserved.
    Gone,
}

struct VmRecord {
    template: VmTemplate,
    location: Location,
    /// Workload parked during migration.
    parked: Option<Box<dyn Workload>>,
}

/// One period's cluster-wide sample (for time-series reporting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodSample {
    /// Period index (1-based).
    pub period: u64,
    /// Nodes hosting at least one VM.
    pub nodes_active: usize,
    /// Cluster draw this period, Watts (powered-off nodes excluded).
    pub power_w: f64,
    /// VMs currently mid-migration.
    pub in_flight: usize,
}

/// Final accounting of a cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Periods the cluster ran.
    pub periods: u64,
    /// VMs admitted over the run.
    pub deployed: usize,
    /// VMs refused for lack of capacity.
    pub rejected: usize,
    /// Live migrations performed.
    pub migrations: u64,
    /// Total cluster energy, watt-hours (empty nodes powered off).
    pub energy_wh: f64,
    /// Cluster size.
    pub nodes_total: usize,
    /// Nodes hosting at least one VM at the end.
    pub nodes_active: usize,
    /// Per-class SLO counters, sorted by class name.
    pub slo_by_class: Vec<(String, VmSlo)>,
    /// Aggregate violation rate across classes.
    pub slo_overall: f64,
}

/// See crate docs.
pub struct ClusterManager {
    strategy: Strategy,
    nodes: Vec<NodeRuntime>,
    vms: Vec<VmRecord>,
    rejected: usize,
    migrations: u64,
    period: u64,
    energy_j: f64,
    slo: SloTracker,
    history: Vec<PeriodSample>,
}

impl ClusterManager {
    /// Build a cluster over the given nodes. Each node gets its own deterministic seed stream.
    pub fn new(specs: Vec<NodeSpec>, strategy: Strategy, seed: u64) -> Self {
        let nodes = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let host = SimHost::new(spec.clone(), seed.wrapping_add(i as u64 * 7919));
                let controller = strategy.controller_config().map(|cfg| {
                    Controller::new(cfg.with_mode(ControlMode::Full), host.topology_info())
                });
                NodeRuntime {
                    host,
                    controller,
                    bin: NodeBin::new(spec),
                    hot_streak: 0,
                }
            })
            .collect();
        ClusterManager {
            strategy,
            nodes,
            vms: Vec::new(),
            rejected: 0,
            migrations: 0,
            period: 0,
            energy_j: 0.0,
            slo: SloTracker::new(0.95),
            history: Vec::new(),
        }
    }

    /// Per-period cluster samples recorded so far (power, active nodes,
    /// migrations in flight) — the raw data for energy-over-time plots.
    pub fn history(&self) -> &[PeriodSample] {
        &self.history
    }

    /// Admit and place a VM (Best-Fit under the strategy's constraint).
    /// Returns `None` — and counts a rejection — when no node fits.
    pub fn deploy(
        &mut self,
        template: &VmTemplate,
        workload: Box<dyn Workload>,
    ) -> Option<GlobalVmId> {
        let request = PlacementRequest::from(template);
        let mode = self.strategy.constraint();
        let target = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| mode.fits(&n.bin, &request))
            .min_by_key(|(i, n)| (mode.remaining(&n.bin), *i))
            .map(|(i, _)| i);
        let Some(node) = target else {
            self.rejected += 1;
            return None;
        };
        let local = self.nodes[node].host.provision(template);
        self.nodes[node].host.attach_workload(local, workload);
        self.nodes[node].bin.place(&request);
        let id = GlobalVmId(self.vms.len() as u32);
        self.vms.push(VmRecord {
            template: template.clone(),
            location: Location::OnNode { node, local },
            parked: None,
        });
        Some(id)
    }

    /// Number of nodes currently hosting at least one VM.
    pub fn active_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.bin.is_used()).count()
    }

    /// Migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Ground-truth frequency of a VM's vCPU 0 over the last window
    /// (0 while migrating or after departure).
    pub fn vm_freq(&self, id: GlobalVmId) -> f64 {
        match &self.vms[id.0 as usize].location {
            Location::OnNode { node, local } => self.nodes[*node]
                .host
                .vcpu_freq_exact(*local, VcpuId::new(0))
                .as_f64(),
            Location::InFlight { .. } | Location::Gone => 0.0,
        }
    }

    /// Customer-initiated termination: the VM leaves the cluster and its
    /// capacity returns to the pool (the §IV.C note that freed nodes "can
    /// be reused for additional workload"). A VM caught mid-migration is
    /// simply dropped. Idempotent.
    pub fn undeploy(&mut self, id: GlobalVmId) {
        let record = &mut self.vms[id.0 as usize];
        let request = PlacementRequest::from(&record.template);
        match std::mem::replace(&mut record.location, Location::Gone) {
            Location::OnNode { node, local } => {
                let _ = self.nodes[node].host.deprovision(local);
                self.nodes[node].bin.remove(&request);
            }
            Location::InFlight { .. } => {
                record.parked = None;
            }
            Location::Gone => {}
        }
    }

    /// Is the VM still present (placed or migrating)?
    pub fn is_deployed(&self, id: GlobalVmId) -> bool {
        !matches!(self.vms[id.0 as usize].location, Location::Gone)
    }

    /// Advance the whole cluster by one controller period (1 s).
    pub fn run_period(&mut self) {
        self.period += 1;

        // 1. Land migrations whose downtime elapsed.
        for idx in 0..self.vms.len() {
            let arrive_now = matches!(
                self.vms[idx].location,
                Location::InFlight { arrive, .. } if arrive <= self.period
            );
            if arrive_now {
                let Location::InFlight { dest, .. } = self.vms[idx].location else {
                    unreachable!("checked above");
                };
                let workload = self.vms[idx]
                    .parked
                    .take()
                    .expect("in-flight VM parked its workload");
                let template = self.vms[idx].template.clone();
                let local = self.nodes[dest].host.provision(&template);
                self.nodes[dest].host.attach_workload(local, workload);
                self.nodes[dest]
                    .bin
                    .place(&PlacementRequest::from(&template));
                self.vms[idx].location = Location::OnNode { node: dest, local };
            }
        }

        // 2. Advance hosts + run controllers. Nodes are fully independent
        // within a period (the manager only talks to them between
        // periods), so this is embarrassingly parallel — the dominant
        // cost of a cluster run.
        use rayon::prelude::*;
        self.nodes.par_iter_mut().for_each(|node| {
            node.host.advance_period();
            if let Some(ctl) = &mut node.controller {
                ctl.iterate(&mut node.host).expect("sim backend");
            }
        });

        // 3. SLO + energy accounting.
        for record in &self.vms {
            let class = record.template.name.as_str();
            match &record.location {
                Location::OnNode { node, local } => {
                    let host = &self.nodes[*node].host;
                    let f_max = host.spec().max_mhz;
                    let c_i = vfc_controller::guaranteed_cycles(
                        record.template.vfreq,
                        f_max,
                        Micros::SEC,
                    );
                    if c_i.is_zero() {
                        continue;
                    }
                    // Worst vCPU decides the period's outcome.
                    let mut worst_demand = f64::INFINITY;
                    let mut worst_delivery = f64::INFINITY;
                    for j in 0..record.template.vcpus {
                        let demanded = host.vcpu_demand_last_window(*local, VcpuId::new(j));
                        let freq = host.vcpu_freq_exact(*local, VcpuId::new(j));
                        let demand_ratio = demanded.as_u64() as f64 / c_i.as_u64() as f64;
                        let delivery_ratio =
                            freq.as_f64() / record.template.vfreq.as_f64().max(1.0);
                        // Track the vCPU that demanded most but got least.
                        if delivery_ratio < worst_delivery {
                            worst_delivery = delivery_ratio;
                            worst_demand = demand_ratio;
                        }
                    }
                    if worst_demand.is_finite() {
                        self.slo.record(class, worst_demand, worst_delivery);
                    }
                }
                Location::InFlight { .. } => {
                    // A VM is only migrated off a hot node: it was
                    // demanding; downtime is a violated period.
                    self.slo.record_offline_demanding(class);
                }
                Location::Gone => {}
            }
        }
        let mut period_power = 0.0;
        for node in &self.nodes {
            if !node.bin.is_used() {
                continue; // powered off
            }
            let telemetry = node.host.telemetry();
            let window = telemetry.len().saturating_sub(10);
            let recent = &telemetry[window..];
            if !recent.is_empty() {
                let mean_w = recent.iter().map(|t| t.power_w).sum::<f64>() / recent.len() as f64;
                period_power += mean_w;
            }
        }
        self.energy_j += period_power; // × 1 s
        let in_flight = self
            .vms
            .iter()
            .filter(|r| matches!(r.location, Location::InFlight { .. }))
            .count();
        self.history.push(PeriodSample {
            period: self.period,
            nodes_active: self.active_nodes(),
            power_w: period_power,
            in_flight,
        });

        // 4. Migration policy.
        if let Strategy::MigrationBased {
            high_watermark,
            sustain,
            downtime_periods,
            ..
        } = self.strategy
        {
            for src in 0..self.nodes.len() {
                let util = self.nodes[src].host.utilization();
                if util > high_watermark {
                    self.nodes[src].hot_streak += 1;
                } else {
                    self.nodes[src].hot_streak = 0;
                }
                if self.nodes[src].hot_streak >= sustain
                    && self.try_migrate_from(src, downtime_periods)
                {
                    self.nodes[src].hot_streak = 0;
                }
            }
        }
    }

    /// Migrate the largest VM off `src` to the emptiest node that fits.
    fn try_migrate_from(&mut self, src: usize, downtime: u32) -> bool {
        let mode = self.strategy.constraint();
        // Largest frequency-demand VM currently on src.
        let candidate = self
            .vms
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.location, Location::OnNode { node, .. } if node == src))
            .max_by_key(|(_, r)| r.template.vcpus as u64 * r.template.vfreq.as_u32() as u64)
            .map(|(i, _)| i);
        let Some(vm_idx) = candidate else {
            return false;
        };
        let request = PlacementRequest::from(&self.vms[vm_idx].template);
        let dest = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| *i != src && mode.fits(&n.bin, &request))
            .max_by_key(|(i, n)| (mode.remaining(&n.bin), usize::MAX - *i))
            .map(|(i, _)| i);
        let Some(dest) = dest else {
            return false; // nowhere to go; stay hot
        };

        let Location::OnNode { node, local } = self.vms[vm_idx].location else {
            unreachable!("candidate filter guarantees OnNode");
        };
        debug_assert_eq!(node, src);
        let workload = self.nodes[src].host.deprovision(local);
        self.nodes[src].bin.remove(&request);
        self.vms[vm_idx].parked = Some(workload);
        self.vms[vm_idx].location = Location::InFlight {
            dest,
            arrive: self.period + downtime as u64,
        };
        self.migrations += 1;
        true
    }

    /// Final report.
    pub fn report(&self) -> ClusterReport {
        ClusterReport {
            periods: self.period,
            deployed: self.vms.len(),
            rejected: self.rejected,
            migrations: self.migrations,
            energy_wh: self.energy_j / 3_600.0,
            nodes_total: self.nodes.len(),
            nodes_active: self.active_nodes(),
            slo_by_class: self.slo.by_class(),
            slo_overall: self.slo.overall_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfc_simcore::MHz;
    use vfc_vmm::workload::SteadyDemand;

    fn small_cluster(strategy: Strategy) -> ClusterManager {
        ClusterManager::new(
            vec![NodeSpec::custom("n", 1, 2, 2, MHz(2400)); 3],
            strategy,
            1,
        )
    }

    #[test]
    fn deploy_packs_best_fit_and_rejects_overflow() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        // Node capacity 9600 MHz; a 4-vCPU 1800 MHz VM takes 7200.
        for _ in 0..3 {
            assert!(c
                .deploy(
                    &VmTemplate::new("big", 4, MHz(1800)),
                    Box::new(SteadyDemand::full()),
                )
                .is_some());
        }
        // Fourth big VM still fits (3 nodes × 9600 vs 4×7200=28 800 —
        // no: each node holds one 7200 VM, 2400 left each; a fourth
        // needs 7200 contiguous → rejected).
        assert!(c
            .deploy(
                &VmTemplate::new("big", 4, MHz(1800)),
                Box::new(SteadyDemand::full()),
            )
            .is_none());
        let r = c.report();
        assert_eq!(r.deployed, 3);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.nodes_active, 3);
    }

    #[test]
    fn frequency_control_meets_slo_without_migrations() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        let mut ids = Vec::new();
        // Fill one node exactly: 2×(2 vCPU @ 1200) + 2×(2 vCPU @ 1200) =
        // 9600 MHz across nodes via BestFit.
        for _ in 0..4 {
            ids.push(
                c.deploy(
                    &VmTemplate::new("std", 2, MHz(1200)),
                    Box::new(SteadyDemand::full()),
                )
                .expect("fits"),
            );
        }
        for _ in 0..20 {
            c.run_period();
        }
        let r = c.report();
        assert_eq!(r.migrations, 0);
        assert!(
            r.slo_overall < 0.30,
            "freq control should mostly meet SLOs (ramp-up aside): {}",
            r.slo_overall
        );
        // Steady state actually meets them.
        for id in ids {
            assert!(c.vm_freq(id) >= 1100.0, "vm {id}: {}", c.vm_freq(id));
        }
    }

    #[test]
    fn migration_strategy_migrates_hot_nodes() {
        // Overcommit one node heavily, leave the others empty.
        let mut c = small_cluster(Strategy::MigrationBased {
            factor: 2.0,
            high_watermark: 0.9,
            sustain: 2,
            downtime_periods: 2,
        });
        // 2.0 factor: 8 vCPUs per 4-thread node; BestFit piles the first
        // four 2-vCPU VMs onto one node.
        let mut ids = Vec::new();
        for _ in 0..4 {
            ids.push(
                c.deploy(
                    &VmTemplate::new("std", 2, MHz(1200)),
                    Box::new(SteadyDemand::full()),
                )
                .expect("fits with factor 2"),
            );
        }
        assert_eq!(c.active_nodes(), 1, "BestFit piles them up");
        for _ in 0..15 {
            c.run_period();
        }
        let r = c.report();
        assert!(r.migrations >= 1, "hot node should shed VMs");
        assert!(c.active_nodes() >= 2);
        // Migration downtime shows up as SLO violations.
        assert!(r.slo_overall > 0.0);
    }

    #[test]
    fn migrated_vm_resumes_on_the_destination() {
        let mut c = small_cluster(Strategy::MigrationBased {
            factor: 2.0,
            high_watermark: 0.9,
            sustain: 1,
            downtime_periods: 1,
        });
        // Three identical VMs: BestFit piles them onto one node (6 vCPUs
        // ≤ the 8 the ×2 factor allows); migrations then spread them to
        // the stable 1/1/1 equilibrium (util 0.5 per node, below the
        // watermark). Four VMs would thrash forever — see
        // `migration_strategy_migrates_hot_nodes` for the hot case.
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(
                c.deploy(
                    &VmTemplate::new("std", 2, MHz(1200)),
                    Box::new(SteadyDemand::full()),
                )
                .unwrap(),
            );
        }
        assert_eq!(c.active_nodes(), 1);
        for _ in 0..15 {
            c.run_period();
        }
        assert!(c.migrations() >= 2, "got {}", c.migrations());
        assert_eq!(c.active_nodes(), 3, "equilibrium is one VM per node");
        for id in ids {
            let f = c.vm_freq(id);
            assert!(f > 2300.0, "{id} should now own its node: {f}");
        }
    }

    #[test]
    fn undeploy_frees_capacity_for_new_arrivals() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        // Fill the cluster with larges (one per node, 7200 of 9600 MHz).
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(
                c.deploy(
                    &VmTemplate::new("big", 4, MHz(1800)),
                    Box::new(SteadyDemand::full()),
                )
                .expect("fits"),
            );
        }
        // A fourth big VM is rejected…
        assert!(c
            .deploy(
                &VmTemplate::new("big", 4, MHz(1800)),
                Box::new(SteadyDemand::full())
            )
            .is_none());
        // …until one departs.
        c.undeploy(ids[0]);
        assert!(!c.is_deployed(ids[0]));
        assert!(c.is_deployed(ids[1]));
        let replacement = c
            .deploy(
                &VmTemplate::new("big", 4, MHz(1800)),
                Box::new(SteadyDemand::full()),
            )
            .expect("freed capacity is reusable");
        c.run_period();
        assert!(c.vm_freq(replacement) > 0.0);
        // Idempotent.
        c.undeploy(ids[0]);
    }

    #[test]
    fn churn_with_migrations_stays_consistent() {
        // Arrivals and departures while the migration policy is active:
        // the manager must never lose track of a VM.
        let mut c = small_cluster(Strategy::MigrationBased {
            factor: 2.0,
            high_watermark: 0.9,
            sustain: 1,
            downtime_periods: 2,
        });
        let mut rng = vfc_simcore::SplitMix64::new(17);
        let mut live: Vec<GlobalVmId> = Vec::new();
        for step in 0..40 {
            if rng.chance(0.5) {
                if let Some(id) = c.deploy(
                    &VmTemplate::new("std", 2, MHz(1200)),
                    Box::new(SteadyDemand::full()),
                ) {
                    live.push(id);
                }
            }
            if step % 4 == 3 && !live.is_empty() {
                let victim = live.remove(rng.next_below(live.len() as u64) as usize);
                c.undeploy(victim);
                assert!(!c.is_deployed(victim));
            }
            c.run_period();
        }
        // Every surviving VM eventually runs (allow in-flight stragglers
        // a couple of periods to land).
        for _ in 0..4 {
            c.run_period();
        }
        for id in live {
            assert!(c.is_deployed(id));
        }
        let r = c.report();
        assert_eq!(r.periods, 44);
    }

    #[test]
    fn history_tracks_power_and_in_flight() {
        let mut c = small_cluster(Strategy::MigrationBased {
            factor: 2.0,
            high_watermark: 0.9,
            sustain: 1,
            downtime_periods: 2,
        });
        for _ in 0..4 {
            c.deploy(
                &VmTemplate::new("std", 2, MHz(1200)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        }
        for _ in 0..10 {
            c.run_period();
        }
        let h = c.history();
        assert_eq!(h.len(), 10);
        assert!(h.iter().all(|s| s.power_w > 0.0));
        // Periods are sequential and some migration was in flight at some
        // point (the thrashing scenario).
        assert!(h.windows(2).all(|w| w[1].period == w[0].period + 1));
        assert!(h.iter().any(|s| s.in_flight > 0));
        // Energy in the report equals the integrated history.
        let integrated: f64 = h.iter().map(|s| s.power_w).sum::<f64>() / 3_600.0;
        let r = c.report();
        assert!((r.energy_wh - integrated).abs() < 1e-9);
    }

    #[test]
    fn empty_nodes_consume_no_energy() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        c.deploy(
            &VmTemplate::new("one", 1, MHz(500)),
            Box::new(SteadyDemand::new(0.2)),
        )
        .unwrap();
        for _ in 0..5 {
            c.run_period();
        }
        let r = c.report();
        // Only one node draws power: ≤ 5 s × max_power of one node.
        let bound = 5.0 * 300.0 / 3600.0;
        assert!(r.energy_wh > 0.0 && r.energy_wh <= bound, "{}", r.energy_wh);
        assert_eq!(r.nodes_active, 1);
    }
}
