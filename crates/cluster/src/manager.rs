//! The cluster manager: admission, per-node control, migrations, and
//! energy/SLO accounting. See the crate docs for the two strategies.

use crate::faults::{FaultModel, FaultReport, RestartPolicy};
use crate::slo::{SloTracker, VmSlo};
use serde::{Deserialize, Serialize};
use std::fmt;
use vfc_cgroupfs::backend::HostBackend;
use vfc_controller::{
    ControlMode, Controller, ControllerConfig, IterationReport, Journal, LeaseState,
};
use vfc_cpusched::topology::NodeSpec;
use vfc_placement::algo::PlacementAlgorithm;
use vfc_placement::constraint::ConstraintMode;
use vfc_placement::model::{NodeBin, PlacementRequest};
use vfc_placement::ResidualIndex;
use vfc_simcore::{MHz, Micros, SplitMix64, VcpuId, VmId};
use vfc_vmm::workload::Workload;
use vfc_vmm::{SimHost, VmTemplate};

/// Cluster-wide VM identifier (stable across migrations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalVmId(pub u32);

impl fmt::Display for GlobalVmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gvm{}", self.0)
    }
}

/// Typed failure of an id-addressed cluster operation. The control
/// plane's reconciler races against fault-injected node crashes and
/// customer-initiated departures, so every lookup miss must be
/// distinguishable (and recoverable) instead of a silent no-op or a
/// panic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterError {
    /// The id was never issued by this cluster.
    UnknownVm(GlobalVmId),
    /// The VM already left the cluster; the id stays reserved forever.
    AlreadyRemoved(GlobalVmId),
    /// The VM exists but is mid-migration or stranded — the operation
    /// cannot touch it right now. Transient: retry next period.
    NotPlaced(GlobalVmId),
    /// The template failed validation ([`VmTemplate::validate`]).
    InvalidTemplate(String),
    /// No node satisfies the request under the strategy's constraint
    /// (Eq. 7 for the frequency strategies). Transient: capacity may
    /// free up as other VMs depart.
    NoCapacity,
}

impl ClusterError {
    /// Should the caller retry later (capacity/landing races), or is the
    /// operation permanently invalid? Mirrors the PR 1 error taxonomy
    /// (`CgroupError::is_transient`).
    pub fn is_transient(&self) -> bool {
        matches!(self, ClusterError::NotPlaced(_) | ClusterError::NoCapacity)
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownVm(id) => write!(f, "unknown VM id {id}"),
            ClusterError::AlreadyRemoved(id) => write!(f, "VM {id} already removed"),
            ClusterError::NotPlaced(id) => write!(f, "VM {id} is migrating or stranded"),
            ClusterError::InvalidTemplate(why) => write!(f, "invalid template: {why}"),
            ClusterError::NoCapacity => write!(f, "no node satisfies the placement constraint"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// How a successful [`ClusterManager::resize_vfreq`] was carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResizeOutcome {
    /// The new `F_v` still satisfies Eq. 7 on the VM's current node: the
    /// host template, the placement bin and the node controller were
    /// updated in place — zero downtime.
    InPlace,
    /// The new `F_v` broke Eq. 7 on the current node; a live migration
    /// to a node that fits was started instead (one period of downtime,
    /// like any migration). The resize lands with the VM.
    Migrating,
}

/// One node's Eq. 7 ledger, for capacity views and violation audits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeLoad {
    /// `<family>-<index>` label, as in the telemetry rollup.
    pub name: String,
    /// False while the node is crashed (its bin is empty then).
    pub up: bool,
    /// Σ `k_i·F_i` of the VMs placed here (left side of Eq. 7), MHz.
    pub used_mhz: u64,
    /// `k_n·F_n^MAX` (right side of Eq. 7), MHz.
    pub capacity_mhz: u64,
    /// vCPUs placed here.
    pub used_vcpus: u64,
    /// Hardware threads of the node.
    pub threads: u32,
    /// Memory placed here, GB.
    pub used_mem_gb: u64,
    /// Node DRAM, GB.
    pub mem_gb: u64,
}

/// How the cluster keeps its promises.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Eq. 7 admission + the paper's controller on every node.
    FrequencyControl,
    /// Eq. 7 admission + the controller with the throttle-aware
    /// estimation extension (detects capped bursts from
    /// `cpu.stat::throttled_usec` instead of waiting for the consumption
    /// trend).
    FrequencyControlThrottleAware,
    /// Core-count admission with an overcommitment `factor`, no
    /// controller; nodes whose utilization stays above `high_watermark`
    /// for `sustain` consecutive periods migrate their largest VM away,
    /// paying `downtime_periods` of unavailability (the legacy approach
    /// of §II).
    MigrationBased {
        /// vCPU overcommitment factor for admission.
        factor: f64,
        /// Utilization above which a node counts as hot.
        high_watermark: f64,
        /// Consecutive hot periods before a migration fires.
        sustain: u32,
        /// Periods a migrating VM is offline.
        downtime_periods: u32,
    },
}

impl Strategy {
    /// The §II defaults used by the comparison scenario.
    pub fn migration_default() -> Strategy {
        Strategy::MigrationBased {
            factor: 1.8,
            high_watermark: 0.95,
            sustain: 3,
            downtime_periods: 3,
        }
    }

    fn constraint(&self) -> ConstraintMode {
        match self {
            Strategy::FrequencyControl | Strategy::FrequencyControlThrottleAware => {
                ConstraintMode::Frequency
            }
            Strategy::MigrationBased { factor, .. } => {
                ConstraintMode::CoreCount { factor: *factor }
            }
        }
    }

    fn controller_config(&self) -> Option<ControllerConfig> {
        match self {
            Strategy::FrequencyControl => Some(ControllerConfig::paper_defaults()),
            Strategy::FrequencyControlThrottleAware => Some(ControllerConfig::throttle_aware()),
            Strategy::MigrationBased { .. } => None,
        }
    }
}

/// Per-VM SLO sample computed node-side in the parallel pass of
/// [`ClusterManager::run_period`], then merged serially in VM order so
/// the trackers see a deterministic update sequence.
#[derive(Clone, Copy)]
struct SloSample {
    /// Index into the manager's VM records (the merge key).
    vm: usize,
    worst_demand: f64,
    worst_delivery: f64,
    rec_demand: f64,
    rec_served: f64,
    in_recovery: bool,
    uncontrolled: bool,
    /// Σ exact per-vCPU frequency over the period (MHz·s of work the VM
    /// actually received) — the quantity a metering layer bills on.
    delivered_mhz: u64,
}

struct NodeRuntime {
    host: SimHost,
    controller: Option<Controller>,
    bin: NodeBin,
    hot_streak: u32,
    /// Period at which a crashed node rejoins (empty); `None` = node up.
    repairs_at: Option<u64>,
    /// Period at which a crashed controller is rebuilt; `None` = healthy.
    /// While set, the node runs uncapped (fail-open).
    controller_returns_at: Option<u64>,
    /// Journal exported by the dying controller, for a warm restart.
    snapshot: Option<Journal>,
    /// VM-periods on this node count toward recovery accounting until
    /// this period (exclusive) — the tail after a controller restart.
    recovery_until: u64,
    /// Reused iteration report: its row buffers reach steady-state
    /// capacity after a few periods, so the per-period controller run
    /// stays off the allocator (see `Controller::iterate_into`).
    report: IterationReport,
    /// VMs resident on this node, as (VM-record index, local id,
    /// guaranteed vfreq, vCPU count), kept sorted by VM-record index and
    /// maintained *incrementally* at every placement transition (deploy,
    /// undeploy, migration, crash, resize) — so neither the legacy
    /// per-period pass nor the event-driven core ever scans the whole
    /// fleet per node, and an empty node's emptiness is an O(1) check.
    residents: Vec<(usize, VmId, MHz, u32)>,
    /// Set by the event-driven core to select this node for the next
    /// parallel advance ([`ClusterManager::advance_marked_nodes`]);
    /// cleared by the advance itself.
    run_mark: bool,
    /// SLO samples this node computed in the parallel pass, merged
    /// serially afterwards. Both buffers keep their capacity across
    /// periods.
    slo_scratch: Vec<SloSample>,
    /// Last values folded into the cluster-wide incremental tallies
    /// (`used_node_count`, `violating_node_count`, `committed_mhz`) —
    /// [`ClusterManager::refresh_node`] applies the delta against these
    /// and overwrites them, so the rollups never re-walk the fleet.
    tallied_used: bool,
    tallied_violating: bool,
    tallied_mhz: u64,
}

impl NodeRuntime {
    fn new(spec: NodeSpec, strategy: &Strategy, seed: u64) -> Self {
        let host = SimHost::new(spec.clone(), seed);
        let controller = strategy
            .controller_config()
            .map(|cfg| Controller::new(cfg.with_mode(ControlMode::Full), host.topology_info()));
        NodeRuntime {
            host,
            controller,
            bin: NodeBin::new(spec),
            hot_streak: 0,
            repairs_at: None,
            controller_returns_at: None,
            snapshot: None,
            recovery_until: 0,
            report: IterationReport::default(),
            residents: Vec::new(),
            run_mark: false,
            slo_scratch: Vec::new(),
            tallied_used: false,
            tallied_violating: false,
            tallied_mhz: 0,
        }
    }

    fn is_down(&self) -> bool {
        self.repairs_at.is_some()
    }
}

enum Location {
    OnNode {
        node: usize,
        local: VmId,
    },
    InFlight {
        dest: usize,
        arrive: u64,
        /// Node to roll back to if the landing fails (`None` for
        /// evacuations off a dead node and for completed rollbacks —
        /// those landings cannot fail again).
        src: Option<usize>,
    },
    /// Evacuated off a crashed node with nowhere to go; re-placement is
    /// retried every period and each waiting period is a violation.
    Stranded,
    /// Terminated by the customer; the id stays reserved.
    Gone,
}

struct VmRecord {
    template: VmTemplate,
    location: Location,
    /// Workload parked during migration.
    parked: Option<Box<dyn Workload>>,
}

/// One VM's metered usage for one period, exported when
/// [`ClusterManager::enable_usage_export`] is on. All quantities are
/// ground truth read node-side while the period's state is hot: the
/// delivered work comes from the exact per-vCPU frequencies, the credit
/// flows are deltas of the node controller's cumulative Eq. 4 counters,
/// and the SLO flags apply the same predicate as [`SloTracker`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmPeriodUsage {
    /// The VM (stable across migrations).
    pub vm: GlobalVmId,
    /// Template/class name (the SLO-tracker key).
    pub class: String,
    /// Guaranteed virtual frequency per vCPU (`F_v`), MHz.
    pub vfreq_mhz: u32,
    /// vCPU count (`k_v`).
    pub vcpus: u32,
    /// Work actually received this period: Σ per-vCPU exact frequency,
    /// MHz·s (periods are 1 s).
    pub delivered_mhz_s: u64,
    /// Reserved work this period: `k_v × F_v`, MHz·s.
    pub guaranteed_mhz_s: u64,
    /// Credits earned this period (Eq. 4 mint), µs of `F^MAX` cycles.
    pub minted_usec: u64,
    /// Credits spent in the auction this period (Alg. 1), µs.
    pub spent_usec: u64,
    /// The VM demanded at least its guarantee this period.
    pub demanding: bool,
    /// Demanding but delivered below tolerance (an SLO violation).
    pub violated: bool,
    /// Offline the whole period (migration downtime / stranded) —
    /// always a demanding violation, with zero delivered work.
    pub offline: bool,
}

/// One period's metered usage across the whole cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodUsage {
    /// Period index (1-based).
    pub period: u64,
    /// Per-VM usage, resident VMs first (node order) then offline VMs.
    pub vms: Vec<VmPeriodUsage>,
    /// Market cycles wasted cluster-wide this period (Eq. 6 leftovers
    /// that neither the auction nor free distribution placed), µs.
    pub wasted_market_usec: u64,
    /// Credit-flow deltas that could not be attributed to a resident VM
    /// (the VM departed within the period), µs. Kept visible so a biller
    /// can see metering is conservative rather than silently lossy.
    pub unattributed_usec: u64,
}

/// Per-node snapshot of the controller's cumulative economy counters,
/// diffed each period to produce [`VmPeriodUsage`] credit flows. A
/// rebuilt controller (crash restart) resets its counters to zero; a
/// current value below the snapshot therefore means "fresh counter" and
/// the delta is the current value itself.
#[derive(Debug, Default)]
struct NodeEconSnapshot {
    minted: std::collections::BTreeMap<String, u64>,
    spent: std::collections::BTreeMap<String, u64>,
    wasted: u64,
}

#[derive(Debug, Default)]
struct UsageExportState {
    node_econ: Vec<NodeEconSnapshot>,
    pending: Vec<PeriodUsage>,
}

/// One period's cluster-wide sample (for time-series reporting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodSample {
    /// Period index (1-based).
    pub period: u64,
    /// Nodes hosting at least one VM.
    pub nodes_active: usize,
    /// Cluster draw this period, Watts (powered-off nodes excluded).
    pub power_w: f64,
    /// VMs currently mid-migration.
    pub in_flight: usize,
}

/// Final accounting of a cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Periods the cluster ran.
    pub periods: u64,
    /// VMs admitted over the run.
    pub deployed: usize,
    /// VMs refused for lack of capacity.
    pub rejected: usize,
    /// Live migrations performed.
    pub migrations: u64,
    /// Total cluster energy, watt-hours (empty nodes powered off).
    pub energy_wh: f64,
    /// Cluster size.
    pub nodes_total: usize,
    /// Nodes hosting at least one VM at the end.
    pub nodes_active: usize,
    /// Per-class SLO counters, sorted by class name.
    pub slo_by_class: Vec<(String, VmSlo)>,
    /// Aggregate violation rate across classes.
    pub slo_overall: f64,
    /// Fault-machinery counters; `None` when no fault model was active.
    pub faults: Option<FaultReport>,
    /// Demand-aware SLO counters restricted to recovery windows (node
    /// down, controller down, or the tail after a controller restart),
    /// sorted by class name. A period is violated when the VM demanded
    /// at least its guarantee and received less than 95 % of what it
    /// demanded — strict enough to see a lost credit wallet, which the
    /// guarantee-relative [`ClusterReport::slo_by_class`] cannot.
    pub recovery_slo_by_class: Vec<(String, VmSlo)>,
}

/// See crate docs.
pub struct ClusterManager {
    strategy: Strategy,
    nodes: Vec<NodeRuntime>,
    vms: Vec<VmRecord>,
    rejected: usize,
    migrations: u64,
    period: u64,
    energy_j: f64,
    slo: SloTracker,
    history: Vec<PeriodSample>,
    faults: FaultModel,
    frng: SplitMix64,
    freport: FaultReport,
    recovery: SloTracker,
    /// VM-record indices currently [`Location::InFlight`] or
    /// [`Location::Stranded`], sorted — the per-period offline-SLO
    /// accounting and the event core's landing scheduler read this
    /// instead of scanning the whole fleet.
    offline_vms: Vec<usize>,
    /// When `true` (set by the event-driven core), every transition into
    /// [`Location::InFlight`] records `(vm index, arrival period)` in
    /// [`ClusterManager::pending_inflight`] so the core can schedule a
    /// landing event. The legacy `run_period` path leaves this off.
    track_inflight: bool,
    pending_inflight: Vec<(usize, u64)>,
    /// Prebuilt `0..nodes.len()` index list — the legacy full-fleet
    /// driver's `active` set, kept so `run_period` allocates nothing.
    node_ids: Vec<usize>,
    /// Reusable snapshot of [`ClusterManager::offline_vms`] for the
    /// per-period landing sweep (landing mutates the offline set).
    landing_scratch: Vec<usize>,
    /// Fail-safe cap leases `(ttl, grace)` in periods, when enabled via
    /// [`ClusterManager::enable_cap_leases`]; applied to every
    /// controller built from here on (restarts included).
    lease: Option<(u64, u64)>,
    /// Deadline-ladder policy `(budget_frac, recovery_periods)`, when
    /// enabled via [`ClusterManager::enable_deadline_ladder`]; applied
    /// to every controller built from here on (restarts included).
    ladder: Option<(f64, u32)>,
    /// Per-period usage metering, when enabled via
    /// [`ClusterManager::enable_usage_export`]. `None` = off (the
    /// default): the hot path pays nothing.
    usage_export: Option<UsageExportState>,
    /// The strategy's placement constraint, cached (it never changes
    /// after construction) so the placement fast path skips the match.
    mode: ConstraintMode,
    /// Residual-capacity index over the node bins: every placement
    /// question (admission, evacuation, migration fallback) answers in
    /// O(log n) instead of an O(n) bin scan. Kept in sync by
    /// [`ClusterManager::refresh_node`] after every bin or up/down
    /// transition; down nodes are deactivated. See DESIGN.md §16.
    index: ResidualIndex,
    /// Incrementally-maintained count of nodes hosting ≥ 1 VM
    /// (= [`ClusterManager::active_nodes`], O(1)).
    used_node_count: usize,
    /// Incrementally-maintained count of nodes with `used_mhz >
    /// capacity_mhz` (= [`ClusterManager::eq7_violations`], O(1)).
    violating_node_count: usize,
    /// Incrementally-maintained Σ over nodes of committed Eq. 7 MHz.
    committed_mhz: u64,
    /// Static Σ over nodes of `k_n·F_n^MAX` (MHz).
    capacity_mhz_total: u64,
}

impl ClusterManager {
    /// Build a cluster over the given nodes. Each node gets its own deterministic seed stream.
    pub fn new(specs: Vec<NodeSpec>, strategy: Strategy, seed: u64) -> Self {
        Self::with_faults(specs, strategy, seed, FaultModel::none())
    }

    /// Like [`ClusterManager::new`], with a fault model. The fault RNG is
    /// seeded from the model alone, so two runs differing only in
    /// [`FaultModel::restart`] see the exact same fault schedule — the
    /// basis of warm-vs-cold comparisons.
    pub fn with_faults(
        specs: Vec<NodeSpec>,
        strategy: Strategy,
        seed: u64,
        faults: FaultModel,
    ) -> Self {
        let nodes: Vec<NodeRuntime> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| NodeRuntime::new(spec, &strategy, seed.wrapping_add(i as u64 * 7919)))
            .collect();
        let node_ids = (0..nodes.len()).collect();
        let frng = SplitMix64::new(faults.seed ^ 0x5EED_F417);
        let mode = strategy.constraint();
        let index = ResidualIndex::new(nodes.len());
        let capacity_mhz_total = nodes.iter().map(|n| n.bin.spec.freq_capacity_mhz()).sum();
        let mut mgr = ClusterManager {
            strategy,
            nodes,
            vms: Vec::new(),
            rejected: 0,
            migrations: 0,
            period: 0,
            energy_j: 0.0,
            slo: SloTracker::new(0.95),
            history: Vec::new(),
            faults,
            frng,
            freport: FaultReport::default(),
            recovery: SloTracker::new(0.95),
            offline_vms: Vec::new(),
            track_inflight: false,
            pending_inflight: Vec::new(),
            node_ids,
            landing_scratch: Vec::new(),
            lease: None,
            ladder: None,
            usage_export: None,
            mode,
            index,
            used_node_count: 0,
            violating_node_count: 0,
            committed_mhz: 0,
            capacity_mhz_total,
        };
        for i in 0..mgr.nodes.len() {
            mgr.refresh_node(i);
        }
        mgr
    }

    /// Re-derive one node's contribution to the incremental tallies and
    /// its residual-capacity index entry, after any bin mutation or
    /// up/down transition. The *only* write path into the index and the
    /// cluster-wide counters — every placement transition (deploy,
    /// undeploy, resize, landing, crash, repair) funnels through here.
    fn refresh_node(&mut self, i: usize) {
        let rt = &self.nodes[i];
        let used = rt.bin.is_used();
        let mhz = rt.bin.used_freq_mhz();
        let violating = mhz > rt.bin.spec.freq_capacity_mhz();
        let down = rt.is_down();
        let units = self.mode.remaining(&rt.bin);
        let mem = (rt.bin.spec.mem_gb as u64).saturating_sub(rt.bin.used_mem_gb());

        self.used_node_count -= rt.tallied_used as usize;
        self.used_node_count += used as usize;
        self.violating_node_count -= rt.tallied_violating as usize;
        self.violating_node_count += violating as usize;
        self.committed_mhz -= rt.tallied_mhz;
        self.committed_mhz += mhz;
        let rt = &mut self.nodes[i];
        rt.tallied_used = used;
        rt.tallied_violating = violating;
        rt.tallied_mhz = mhz;

        if down {
            self.index.deactivate(i);
        } else {
            self.index.set(i, units, mem);
        }
    }

    /// The controller configuration new controllers are built with: the
    /// strategy's parameters plus the cap-lease / deadline-ladder
    /// policies, if enabled.
    fn active_controller_config(&self) -> Option<ControllerConfig> {
        let mut cfg = self.strategy.controller_config()?;
        if let Some((ttl, grace)) = self.lease {
            cfg.cap_lease_ttl = ttl;
            cfg.cap_lease_grace = grace;
        }
        if let Some((frac, recovery)) = self.ladder {
            cfg.deadline_budget_frac = frac;
            cfg.ladder_recovery_periods = recovery;
        }
        Some(cfg)
    }

    /// Enable the deadline-aware degradation ladder on every
    /// controller-bearing node: each period gets a time budget of
    /// `budget_frac` of the period and overruns descend the
    /// full → reuse-previous → monitor-only → uncap-all ladder;
    /// `recovery_periods` consecutive in-budget periods climb one rung
    /// back. Call right after construction: existing controllers are
    /// rebuilt fresh. No-op under the migration strategy.
    pub fn enable_deadline_ladder(&mut self, budget_frac: f64, recovery_periods: u32) {
        self.ladder = Some((budget_frac, recovery_periods));
        let Some(cfg) = self.active_controller_config() else {
            return;
        };
        for node in &mut self.nodes {
            if node.controller.is_some() {
                node.controller = Some(Controller::new(
                    cfg.clone().with_mode(ControlMode::Full),
                    node.host.topology_info(),
                ));
            }
        }
    }

    /// Inject a synthetic per-period stage delay (µs) into one node's
    /// controller — the overload-evaluation fault hook; see
    /// [`Controller::inject_stage_delay_us`]. Returns `false` when the
    /// node has no live controller to inject into.
    pub fn inject_stage_delay_us(&mut self, node: usize, us: u64) -> bool {
        match self.nodes.get_mut(node).and_then(|n| n.controller.as_mut()) {
            Some(ctl) => {
                ctl.inject_stage_delay_us(us);
                true
            }
            None => false,
        }
    }

    /// One node's current degradation-ladder rung (`None` for a down
    /// node or one without a controller).
    pub fn ladder_rung(&self, node: usize) -> Option<vfc_controller::LadderRung> {
        let rt = self.nodes.get(node)?;
        if rt.is_down() {
            return None;
        }
        rt.controller.as_ref().map(|c| c.ladder_rung())
    }

    /// Enable fail-safe cap leases on every controller-bearing node:
    /// each controller's caps are covered by a lease of `ttl` periods
    /// that [`ClusterManager::renew_leases`] (called by the control
    /// plane's reconciler) refreshes; a node partitioned from the
    /// control plane lets its lease expire and degrades to guarantees
    /// only, then — after `grace` further periods — uncaps. Call right
    /// after construction: existing controllers are rebuilt fresh.
    /// No-op under the migration strategy (no controllers to lease).
    pub fn enable_cap_leases(&mut self, ttl: u64, grace: u64) {
        self.lease = Some((ttl, grace));
        let Some(cfg) = self.active_controller_config() else {
            return;
        };
        for node in &mut self.nodes {
            if node.controller.is_some() {
                node.controller = Some(Controller::new(
                    cfg.clone().with_mode(ControlMode::Full),
                    node.host.topology_info(),
                ));
            }
        }
    }

    /// Renew the cap lease of every node the control plane can reach:
    /// up, controller alive, and not inside a scripted partition window
    /// for the *upcoming* period. Returns how many leases were renewed.
    /// Harmless when leases are disabled (renewal is a no-op then).
    pub fn renew_leases(&mut self) -> usize {
        let next = self.period + 1;
        let mut renewed = 0;
        for i in 0..self.nodes.len() {
            if self.nodes[i].is_down()
                || self.nodes[i].controller_returns_at.is_some()
                || self.faults.is_partitioned(i, next)
            {
                continue;
            }
            if let Some(ctl) = &mut self.nodes[i].controller {
                ctl.renew_lease();
                renewed += 1;
            }
        }
        renewed
    }

    /// One node's current lease state (`None` for a down node or one
    /// without a controller).
    pub fn lease_state(&self, node: usize) -> Option<LeaseState> {
        let rt = self.nodes.get(node)?;
        if rt.is_down() {
            return None;
        }
        rt.controller.as_ref().map(|c| c.lease_state())
    }

    /// Insert VM `vm` into `node`'s resident index (sorted by VM-record
    /// index). Called at every transition into [`Location::OnNode`].
    fn add_resident(&mut self, node: usize, vm: usize, local: VmId) {
        let t = &self.vms[vm].template;
        let entry = (vm, local, t.vfreq, t.vcpus);
        let residents = &mut self.nodes[node].residents;
        let at = residents
            .binary_search_by_key(&vm, |r| r.0)
            .expect_err("VM resident twice on one node");
        residents.insert(at, entry);
    }

    /// Remove VM `vm` from `node`'s resident index. A node emptied this
    /// way also forgets its migration-policy hot streak (an empty node
    /// cannot stay hot).
    fn remove_resident(&mut self, node: usize, vm: usize) {
        let residents = &mut self.nodes[node].residents;
        let at = residents
            .binary_search_by_key(&vm, |r| r.0)
            .expect("resident index out of sync");
        residents.remove(at);
        if residents.is_empty() {
            self.nodes[node].hot_streak = 0;
        }
    }

    /// Track VM `vm` as offline (in flight or stranded).
    fn add_offline(&mut self, vm: usize) {
        if let Err(at) = self.offline_vms.binary_search(&vm) {
            self.offline_vms.insert(at, vm);
        }
    }

    /// VM `vm` is no longer offline (landed or departed).
    fn remove_offline(&mut self, vm: usize) {
        if let Ok(at) = self.offline_vms.binary_search(&vm) {
            self.offline_vms.remove(at);
        }
    }

    /// Record a transition into [`Location::InFlight`] for the event
    /// core's landing scheduler (no-op on the legacy path).
    fn note_inflight(&mut self, vm: usize, arrive: u64) {
        if self.track_inflight {
            self.pending_inflight.push((vm, arrive));
        }
    }

    /// Turn on in-flight tracking (event-driven core only).
    pub(crate) fn set_track_inflight(&mut self) {
        self.track_inflight = true;
    }

    /// Drain the in-flight transitions recorded since the last call.
    pub(crate) fn drain_pending_inflight(&mut self) -> Vec<(usize, u64)> {
        std::mem::take(&mut self.pending_inflight)
    }

    /// Sorted VM-record indices currently stranded (evacuated with
    /// nowhere to go). The event core re-schedules a landing retry for
    /// each of these every period, mirroring the legacy per-period scan.
    pub(crate) fn stranded_indices(&self) -> Vec<usize> {
        self.offline_vms
            .iter()
            .copied()
            .filter(|&i| matches!(self.vms[i].location, Location::Stranded))
            .collect()
    }

    /// Fault counters accumulated so far.
    pub fn fault_report(&self) -> FaultReport {
        self.freport
    }

    /// Per-node controller telemetry rolled into one Prometheus page:
    /// every controller-bearing node's registry rendered under a
    /// `node="<family>-<index>"` label, `# HELP`/`# TYPE` emitted once
    /// per metric. Nodes without a controller — the migration strategy,
    /// or a node whose controller is currently crashed/fail-open — are
    /// simply absent from the page, which is itself a signal a scrape
    /// alert can key on (`count by (__name__) (vfc_iterations_total)`
    /// drops below the node count).
    pub fn telemetry_prometheus(&self) -> String {
        let labelled: Vec<(String, &vfc_telemetry::Registry)> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                n.controller
                    .as_ref()
                    .map(|c| (format!("{}-{i}", n.bin.spec.name), c.telemetry().registry()))
            })
            .collect();
        let refs: Vec<(&str, &vfc_telemetry::Registry)> = labelled
            .iter()
            .map(|(name, r)| (name.as_str(), *r))
            .collect();
        vfc_telemetry::render_merged("node", &refs)
    }

    /// Cumulative controller health per node (`<family>-<index>` →
    /// totals), for nodes that currently have a controller. See
    /// [`vfc_controller::HealthTotals`] for the reset semantics.
    pub fn health_totals(&self) -> Vec<(String, vfc_controller::HealthTotals)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                n.controller
                    .as_ref()
                    .map(|c| (format!("{}-{i}", n.bin.spec.name), c.health_totals()))
            })
            .collect()
    }

    /// Per-period cluster samples recorded so far (power, active nodes,
    /// migrations in flight) — the raw data for energy-over-time plots.
    pub fn history(&self) -> &[PeriodSample] {
        &self.history
    }

    /// Admit and place a VM (Best-Fit under the strategy's constraint).
    /// Returns `None` — and counts a rejection — when no node fits.
    /// Convenience wrapper over [`ClusterManager::try_deploy`] for
    /// callers that only care about capacity.
    pub fn deploy(
        &mut self,
        template: &VmTemplate,
        workload: Box<dyn Workload>,
    ) -> Option<GlobalVmId> {
        self.try_deploy(template, workload).ok()
    }

    /// Admit and place a VM with Best-Fit, with a typed rejection.
    pub fn try_deploy(
        &mut self,
        template: &VmTemplate,
        workload: Box<dyn Workload>,
    ) -> Result<GlobalVmId, ClusterError> {
        self.try_deploy_with(template, workload, PlacementAlgorithm::BestFit)
    }

    /// Admit and place a VM under the strategy's constraint with the
    /// chosen bin-packing heuristic. The template is validated at this
    /// boundary (zero `F_v` would yield a degenerate `C_i = 0` cap
    /// downstream); a validation failure is *not* counted as a capacity
    /// rejection.
    pub fn try_deploy_with(
        &mut self,
        template: &VmTemplate,
        workload: Box<dyn Workload>,
        algorithm: PlacementAlgorithm,
    ) -> Result<GlobalVmId, ClusterError> {
        template.validate().map_err(ClusterError::InvalidTemplate)?;
        let request = PlacementRequest::from(template);
        let Some(node) = self.place_with(algorithm, &request, None) else {
            self.rejected += 1;
            return Err(ClusterError::NoCapacity);
        };
        let local = self.nodes[node].host.provision(template);
        self.nodes[node].host.attach_workload(local, workload);
        self.nodes[node].bin.place(&request);
        self.refresh_node(node);
        let id = GlobalVmId(self.vms.len() as u32);
        self.vms.push(VmRecord {
            template: template.clone(),
            location: Location::OnNode { node, local },
            parked: None,
        });
        self.add_resident(node, id.0 as usize, local);
        Ok(id)
    }

    /// Number of nodes currently hosting at least one VM. O(1): the
    /// count is maintained incrementally at every placement transition.
    pub fn active_nodes(&self) -> usize {
        self.used_node_count
    }

    /// Σ committed Eq. 7 MHz across all nodes (`Σ_n Σ_{i∈I_n} k_i·F_i`),
    /// maintained incrementally — the O(1) replacement for summing
    /// [`ClusterManager::node_loads`] every period.
    pub fn committed_mhz(&self) -> u64 {
        self.committed_mhz
    }

    /// Σ `k_n·F_n^MAX` across all nodes (MHz), fixed at construction.
    pub fn capacity_mhz_total(&self) -> u64 {
        self.capacity_mhz_total
    }

    /// Migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Ground-truth frequency of a VM's vCPU 0 over the last window.
    /// `None` for an id this cluster never issued or a VM that already
    /// departed; `Some(0.0)` while migrating or stranded (deployed but
    /// not running anywhere).
    pub fn vm_freq(&self, id: GlobalVmId) -> Option<f64> {
        match &self.vms.get(id.0 as usize)?.location {
            Location::OnNode { node, local } => Some(
                self.nodes[*node]
                    .host
                    .vcpu_freq_exact(*local, VcpuId::new(0))
                    .as_f64(),
            ),
            Location::InFlight { .. } | Location::Stranded => Some(0.0),
            Location::Gone => None,
        }
    }

    /// A request's demand in the constraint's residual unit: vCPU slots
    /// under core-count, `k_v·F_v` MHz under the frequency modes —
    /// exactly the quantity [`ConstraintMode::fits`] compares against
    /// the bin's remaining capacity.
    fn demand_units(&self, request: &PlacementRequest) -> u64 {
        match self.mode {
            ConstraintMode::CoreCount { .. } => request.vcpus as u64,
            ConstraintMode::Frequency | ConstraintMode::FrequencyFactor { .. } => {
                request.freq_demand_mhz()
            }
        }
    }

    /// Placement under the strategy's constraint with the chosen
    /// heuristic, skipping crashed nodes (and optionally one more — a
    /// migration source). Answered by the residual-capacity index in
    /// O(log n); `tests/placement_index_equivalence.rs` pins it
    /// byte-identical to [`ClusterManager::place_with_linear`].
    fn place_with(
        &self,
        algorithm: PlacementAlgorithm,
        request: &PlacementRequest,
        exclude: Option<usize>,
    ) -> Option<usize> {
        let units = self.demand_units(request);
        let mem = request.mem_gb as u64;
        match algorithm {
            PlacementAlgorithm::FirstFit => self.index.first_fit(units, mem, exclude),
            PlacementAlgorithm::BestFit => self.index.best_fit(units, mem, exclude),
            PlacementAlgorithm::WorstFit => self.index.worst_fit(units, mem, exclude),
        }
    }

    /// The pre-index O(n) bin scan, kept as the oracle for the
    /// index-equivalence proptests. Not part of the public API.
    #[doc(hidden)]
    pub fn place_with_linear(
        &self,
        algorithm: PlacementAlgorithm,
        request: &PlacementRequest,
        exclude: Option<usize>,
    ) -> Option<usize> {
        let mode = self.strategy.constraint();
        let mut candidates = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| Some(*i) != exclude && !n.is_down() && mode.fits(&n.bin, request));
        match algorithm {
            PlacementAlgorithm::FirstFit => candidates.next().map(|(i, _)| i),
            PlacementAlgorithm::BestFit => candidates
                .min_by_key(|(i, n)| (mode.remaining(&n.bin), *i))
                .map(|(i, _)| i),
            PlacementAlgorithm::WorstFit => candidates
                .max_by_key(|(i, n)| (mode.remaining(&n.bin), usize::MAX - *i))
                .map(|(i, _)| i),
        }
    }

    /// The indexed placement answer, exposed for the equivalence
    /// proptests. Not part of the public API.
    #[doc(hidden)]
    pub fn place_with_indexed(
        &self,
        algorithm: PlacementAlgorithm,
        request: &PlacementRequest,
        exclude: Option<usize>,
    ) -> Option<usize> {
        self.place_with(algorithm, request, exclude)
    }

    /// Best-Fit placement (the internal default for migrations and
    /// evacuations).
    fn place_excluding(&self, request: &PlacementRequest, exclude: Option<usize>) -> Option<usize> {
        self.place_with(PlacementAlgorithm::BestFit, request, exclude)
    }

    /// Customer-initiated termination: the VM leaves the cluster and its
    /// capacity returns to the pool (the §IV.C note that freed nodes "can
    /// be reused for additional workload"). A VM caught mid-migration is
    /// simply dropped. An unknown or already-removed id is a typed
    /// error, never a silent no-op — the reconciler races against
    /// fault-injected crashes and must see the difference.
    pub fn undeploy(&mut self, id: GlobalVmId) -> Result<(), ClusterError> {
        let record = self
            .vms
            .get_mut(id.0 as usize)
            .ok_or(ClusterError::UnknownVm(id))?;
        let request = PlacementRequest::from(&record.template);
        match std::mem::replace(&mut record.location, Location::Gone) {
            Location::OnNode { node, local } => {
                let _ = self.nodes[node].host.deprovision(local);
                self.nodes[node].bin.remove(&request);
                self.refresh_node(node);
                self.remove_resident(node, id.0 as usize);
                Ok(())
            }
            Location::InFlight { .. } | Location::Stranded => {
                record.parked = None;
                self.remove_offline(id.0 as usize);
                Ok(())
            }
            Location::Gone => Err(ClusterError::AlreadyRemoved(id)),
        }
    }

    /// Change a deployed VM's guaranteed virtual frequency **live**.
    ///
    /// In place when the new `F_v` still satisfies Eq. 7 on the current
    /// node: the placement bin, the host template (stage 1 re-reads
    /// `F_v` from it next period) and the node's controller
    /// ([`Controller::set_vfreq`]: wallet clamp + estimator-history
    /// reset) are updated atomically, with zero downtime. When it does
    /// not fit, falls back to a live migration to any node that fits the
    /// *new* size (Best-Fit); only when no node fits is the resize
    /// rejected with [`ClusterError::NoCapacity`], leaving the VM
    /// untouched at its old frequency.
    pub fn resize_vfreq(
        &mut self,
        id: GlobalVmId,
        new_vfreq: MHz,
    ) -> Result<ResizeOutcome, ClusterError> {
        let record = self
            .vms
            .get(id.0 as usize)
            .ok_or(ClusterError::UnknownVm(id))?;
        let mut new_template = record.template.clone();
        new_template.vfreq = new_vfreq;
        new_template
            .validate()
            .map_err(ClusterError::InvalidTemplate)?;
        let (node, local) = match record.location {
            Location::Gone => return Err(ClusterError::AlreadyRemoved(id)),
            Location::InFlight { .. } | Location::Stranded => {
                return Err(ClusterError::NotPlaced(id))
            }
            Location::OnNode { node, local } => (node, local),
        };
        let old_request = PlacementRequest::from(&record.template);
        let new_request = PlacementRequest::from(&new_template);
        let mode = self.strategy.constraint();

        // Would the current node still satisfy Eq. 7 at the new size?
        let fits_in_place = {
            let bin = &mut self.nodes[node].bin;
            bin.remove(&old_request);
            let ok = mode.fits(bin, &new_request);
            bin.place(if ok { &new_request } else { &old_request });
            ok
        };
        if fits_in_place {
            self.refresh_node(node);
            let rt = &mut self.nodes[node];
            rt.host.set_vfreq(local, new_vfreq);
            if let Some(ctl) = &mut rt.controller {
                ctl.set_vfreq(local, new_vfreq);
            }
            let at = rt
                .residents
                .binary_search_by_key(&(id.0 as usize), |r| r.0)
                .expect("resident index out of sync");
            rt.residents[at].2 = new_vfreq;
            self.vms[id.0 as usize].template = new_template;
            return Ok(ResizeOutcome::InPlace);
        }

        // Migration fallback: any *other* node that fits the new size.
        let Some(dest) = self.place_excluding(&new_request, Some(node)) else {
            return Err(ClusterError::NoCapacity);
        };
        let workload = self.nodes[node].host.deprovision(local);
        self.nodes[node].bin.remove(&old_request);
        self.refresh_node(node);
        self.remove_resident(node, id.0 as usize);
        let arrive = self.period + 1;
        let record = &mut self.vms[id.0 as usize];
        record.template = new_template;
        record.parked = Some(workload);
        record.location = Location::InFlight {
            dest,
            arrive,
            src: None,
        };
        self.add_offline(id.0 as usize);
        self.note_inflight(id.0 as usize, arrive);
        self.migrations += 1;
        Ok(ResizeOutcome::Migrating)
    }

    /// Is the VM still present (placed or migrating)? `false` for ids
    /// this cluster never issued.
    pub fn is_deployed(&self, id: GlobalVmId) -> bool {
        self.vms
            .get(id.0 as usize)
            .is_some_and(|r| !matches!(r.location, Location::Gone))
    }

    /// The deployed VM's current template (`None` once departed or for
    /// an unknown id) — the desired-state reconciler's observed `F_v`.
    pub fn vm_template(&self, id: GlobalVmId) -> Option<&VmTemplate> {
        let record = self.vms.get(id.0 as usize)?;
        match record.location {
            Location::Gone => None,
            _ => Some(&record.template),
        }
    }

    /// Every node's Eq. 7 ledger (used vs capacity), in cluster order —
    /// the audit surface for "no admitted set ever violates Eq. 7".
    pub fn node_loads(&self) -> Vec<NodeLoad> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeLoad {
                name: format!("{}-{i}", n.bin.spec.name),
                up: !n.is_down(),
                used_mhz: n.bin.used_freq_mhz(),
                capacity_mhz: n.bin.spec.freq_capacity_mhz(),
                used_vcpus: n.bin.used_vcpus(),
                threads: n.bin.spec.nr_threads(),
                used_mem_gb: n.bin.used_mem_gb(),
                mem_gb: n.bin.spec.mem_gb as u64,
            })
            .collect()
    }

    /// Number of nodes currently violating Eq. 7 (`Σ k_i·F_i` above
    /// `k_n·F_n^MAX`). Always 0 under the frequency strategies — the
    /// churn proptest pins this. O(1): maintained as deltas on
    /// residency changes instead of re-walking the fleet.
    pub fn eq7_violations(&self) -> usize {
        self.violating_node_count
    }

    /// Advance the whole cluster by one controller period (1 s).
    ///
    /// This is the legacy fixed-step driver: every node advances every
    /// period, even empty ones. The event-driven core
    /// ([`crate::events::EventDrivenCluster`]) reuses the same phase
    /// helpers below but only advances nodes that actually host VMs.
    pub fn run_period(&mut self) {
        self.period += 1;

        // 0. Fault machinery (serial — every random draw comes from one
        // stream in a fixed order, so runs are reproducible). Repairs
        // and controller restarts due this period happen before new
        // crashes; crashes happen before landings so nothing lands on a
        // node that just died.
        if self.faults.enabled() {
            self.fault_phase();
        }

        // 1. Land migrations whose downtime elapsed; retry stranded VMs.
        self.land_migrations();

        // 2.–3. Advance every node in parallel, then the serial
        // accounting. `node_ids` is the prebuilt `0..n` index list, so
        // the steady-state loop stays off the allocator.
        let ids = std::mem::take(&mut self.node_ids);
        self.advance_node_set(&ids);
        self.close_period_for(&ids);
        self.node_ids = ids;
    }

    /// Phase 0 of a period: due repairs and controller restarts come
    /// into effect, then new node/controller crashes are drawn. Serial —
    /// every random draw comes from one stream in a fixed order, so runs
    /// are reproducible.
    pub(crate) fn fault_phase(&mut self) {
        self.recover_for_period();
        self.inject_node_crashes();
        self.inject_controller_crashes();
        self.count_partitions();
    }

    /// Account node-periods spent inside a scripted partition window
    /// (the window itself only acts by making
    /// [`ClusterManager::renew_leases`] skip the node).
    fn count_partitions(&mut self) {
        if self.faults.scripted_partitions.is_empty() {
            return;
        }
        let p = self.period;
        for i in 0..self.nodes.len() {
            if !self.nodes[i].is_down() && self.faults.is_partitioned(i, p) {
                self.freport.partitioned_node_periods += 1;
            }
        }
    }

    /// Event-core entry: move the period counter to `p`. The legacy
    /// driver increments one period at a time; the event core jumps over
    /// stretches where nothing is scheduled. Must be monotone.
    pub(crate) fn begin_period_at(&mut self, p: u64) {
        debug_assert!(p >= self.period, "period must be monotone");
        self.period = p;
    }

    /// Current period counter (the last period started).
    pub(crate) fn period(&self) -> u64 {
        self.period
    }

    /// Is a fault model active?
    pub(crate) fn faults_enabled(&self) -> bool {
        self.faults.enabled()
    }

    /// Node currently hosting VM-record `vm`, if it is placed.
    pub(crate) fn vm_node(&self, vm: usize) -> Option<usize> {
        match self.vms.get(vm)?.location {
            Location::OnNode { node, .. } => Some(node),
            _ => None,
        }
    }

    /// Does node `n` currently host at least one VM? O(1) off the
    /// incrementally maintained resident index.
    pub(crate) fn node_has_residents(&self, n: usize) -> bool {
        !self.nodes[n].residents.is_empty()
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// One node's share of the parallel phase: advance the host, run the
    /// controller, then compute each resident's SLO sample while the
    /// node state is hot. A crashed node stands still; a node whose
    /// controller died advances uncapped (fail-open).
    fn advance_node(node: &mut NodeRuntime, period: u64) {
        if !node.is_down() {
            node.host.advance_period();
            // A dead controller writes no cpu.max: fail-open.
            if node.controller_returns_at.is_none() {
                if let Some(ctl) = &mut node.controller {
                    ctl.iterate_into(&mut node.host, &mut node.report)
                        .expect("sim backend");
                }
            }
        }
        let f_max = node.host.spec().max_mhz;
        let uncontrolled = node.controller_returns_at.is_some();
        let in_recovery = uncontrolled || period < node.recovery_until;
        node.slo_scratch.clear();
        for k in 0..node.residents.len() {
            let (vm, local, vfreq, nr_vcpus) = node.residents[k];
            let c_i = vfc_controller::guaranteed_cycles(vfreq, f_max, Micros::SEC);
            if c_i.is_zero() {
                continue;
            }
            // Worst vCPU decides the period's outcome.
            let mut worst_demand = f64::INFINITY;
            let mut worst_delivery = f64::INFINITY;
            // Demand-aware variant for recovery windows: what share
            // of the *demanded* time was actually served.
            let mut rec_demand = f64::NEG_INFINITY;
            let mut rec_served = f64::INFINITY;
            let mut delivered_mhz = 0u64;
            for j in 0..nr_vcpus {
                let demanded = node.host.vcpu_demand_last_window(local, VcpuId::new(j));
                let freq = node.host.vcpu_freq_exact(local, VcpuId::new(j));
                delivered_mhz += freq.as_u32() as u64;
                let demand_ratio = demanded.as_u64() as f64 / c_i.as_u64() as f64;
                let delivery_ratio = freq.as_f64() / vfreq.as_f64().max(1.0);
                // Track the vCPU that demanded most but got least.
                if delivery_ratio < worst_delivery {
                    worst_delivery = delivery_ratio;
                    worst_demand = demand_ratio;
                }
                if !demanded.is_zero() {
                    let served_us =
                        freq.as_f64() / f_max.as_f64().max(1.0) * Micros::SEC.as_u64() as f64;
                    let served_ratio = served_us / demanded.as_u64() as f64;
                    if served_ratio < rec_served {
                        rec_served = served_ratio;
                        rec_demand = demand_ratio;
                    }
                }
            }
            node.slo_scratch.push(SloSample {
                vm,
                worst_demand,
                worst_delivery,
                rec_demand,
                rec_served,
                in_recovery,
                uncontrolled,
                delivered_mhz,
            });
        }
    }

    /// Phase 2: advance the given nodes (sorted indices) for the current
    /// period. Nodes are fully independent within a period (the manager
    /// only talks to them between periods), so this is embarrassingly
    /// parallel — the dominant cost of a cluster run. Small batches run
    /// serially (spinning up scoped threads to flip a couple of nodes
    /// costs more than the work); larger ones are marked via
    /// [`NodeRuntime::run_mark`] and swept by one `par_iter_mut` pass,
    /// since the vendored rayon subset can only split whole slices.
    pub(crate) fn advance_node_set(&mut self, active: &[usize]) {
        let period = self.period;
        if active.len() <= 4 {
            for &i in active {
                Self::advance_node(&mut self.nodes[i], period);
            }
            return;
        }
        for &i in active {
            self.nodes[i].run_mark = true;
        }
        use rayon::prelude::*;
        self.nodes.par_iter_mut().for_each(|node| {
            if node.run_mark {
                node.run_mark = false;
                Self::advance_node(node, period);
            }
        });
    }

    /// Phase 3–4: serial end-of-period accounting. Merges the SLO
    /// samples the `active` nodes computed in their parallel advance,
    /// accounts offline (in-flight/stranded) VMs, integrates energy,
    /// records the period sample, and runs the migration policy.
    ///
    /// `active` must be sorted ascending: energy accumulates in node
    /// order, so a legacy full-fleet pass and an event-driven pass over
    /// the busy subset produce bit-identical float sums (quiet nodes are
    /// powered off and contribute exactly nothing). The SLO trackers are
    /// integer counters per class, so merge order cannot affect them.
    pub(crate) fn close_period_for(&mut self, active: &[usize]) {
        debug_assert!(active.windows(2).all(|w| w[0] < w[1]), "active not sorted");
        if self.usage_export.is_some() {
            self.export_usage(active);
        }
        for &n in active {
            for k in 0..self.nodes[n].slo_scratch.len() {
                let s = self.nodes[n].slo_scratch[k];
                let class = self.vms[s.vm].template.name.as_str();
                if s.worst_demand.is_finite() {
                    self.slo.record(class, s.worst_demand, s.worst_delivery);
                }
                if s.in_recovery && s.rec_demand.is_finite() {
                    self.recovery.record(class, s.rec_demand, s.rec_served);
                }
                if s.uncontrolled {
                    self.freport.uncontrolled_vm_periods += 1;
                }
            }
        }
        // A VM is only migrated off a hot node: it was demanding;
        // downtime is a violated period. Stranded VMs additionally count
        // toward recovery accounting unconditionally.
        for k in 0..self.offline_vms.len() {
            let i = self.offline_vms[k];
            let stranded = matches!(self.vms[i].location, Location::Stranded);
            let class = self.vms[i].template.name.as_str();
            self.slo.record_offline_demanding(class);
            if stranded {
                self.recovery.record_offline_demanding(class);
                self.freport.stranded_vm_periods += 1;
            } else if self.faults.enabled() {
                self.recovery.record_offline_demanding(class);
            }
        }
        let mut period_power = 0.0;
        for &n in active {
            let node = &self.nodes[n];
            if !node.bin.is_used() || node.is_down() {
                continue; // powered off / crashed
            }
            let telemetry = node.host.telemetry();
            let window = telemetry.len().saturating_sub(10);
            let recent = &telemetry[window..];
            if !recent.is_empty() {
                let mean_w = recent.iter().map(|t| t.power_w).sum::<f64>() / recent.len() as f64;
                period_power += mean_w;
            }
        }
        self.energy_j += period_power; // × 1 s
        let in_flight = self
            .offline_vms
            .iter()
            .filter(|&&i| matches!(self.vms[i].location, Location::InFlight { .. }))
            .count();
        self.history.push(PeriodSample {
            period: self.period,
            nodes_active: self.active_nodes(),
            power_w: period_power,
            in_flight,
        });

        // Migration policy. Quiet nodes cannot be hot (emptying a node
        // resets its streak in `remove_resident`), so restricting the
        // sweep to `active` changes no outcome.
        if let Strategy::MigrationBased {
            high_watermark,
            sustain,
            downtime_periods,
            ..
        } = self.strategy
        {
            for &src in active {
                if self.nodes[src].is_down() {
                    continue;
                }
                let util = self.nodes[src].host.utilization();
                if util > high_watermark {
                    self.nodes[src].hot_streak += 1;
                } else {
                    self.nodes[src].hot_streak = 0;
                }
                if self.nodes[src].hot_streak >= sustain
                    && self.try_migrate_from(src, downtime_periods)
                {
                    self.nodes[src].hot_streak = 0;
                }
            }
        }
    }

    /// Turn on per-period usage metering: every closed period appends a
    /// [`PeriodUsage`] record for [`ClusterManager::drain_usage`] to
    /// collect. Off by default — the hot path pays nothing then.
    pub fn enable_usage_export(&mut self) {
        if self.usage_export.is_none() {
            self.usage_export = Some(UsageExportState::default());
        }
    }

    /// Collect the usage records accumulated since the last drain (empty
    /// when metering is off). Call between periods; a billing layer is
    /// expected to drain every period or every few periods.
    pub fn drain_usage(&mut self) -> Vec<PeriodUsage> {
        self.usage_export
            .as_mut()
            .map(|e| std::mem::take(&mut e.pending))
            .unwrap_or_default()
    }

    /// Build this period's [`PeriodUsage`] record: per-VM delivered work
    /// and SLO flags off the nodes' hot SLO scratch, offline VMs as
    /// zero-delivery violations, and credit flows as deltas of each
    /// active node controller's cumulative mint/spend counters
    /// (attributed back to VM records via the hosts' instance names).
    fn export_usage(&mut self, active: &[usize]) {
        let Some(mut exp) = self.usage_export.take() else {
            return;
        };
        if exp.node_econ.len() < self.nodes.len() {
            exp.node_econ
                .resize_with(self.nodes.len(), NodeEconSnapshot::default);
        }
        let mut vms: Vec<VmPeriodUsage> = Vec::new();
        // VM-record index -> position in `vms`, for credit attribution.
        let mut by_vm: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
        for &n in active {
            for s in &self.nodes[n].slo_scratch {
                let t = &self.vms[s.vm].template;
                let demanding = s.worst_demand.is_finite() && s.worst_demand >= 1.0;
                let violated = demanding && s.worst_delivery < self.slo.tolerance();
                by_vm.insert(s.vm, vms.len());
                vms.push(VmPeriodUsage {
                    vm: GlobalVmId(s.vm as u32),
                    class: t.name.clone(),
                    vfreq_mhz: t.vfreq.as_u32(),
                    vcpus: t.vcpus,
                    delivered_mhz_s: s.delivered_mhz,
                    guaranteed_mhz_s: t.vfreq.as_u32() as u64 * t.vcpus as u64,
                    minted_usec: 0,
                    spent_usec: 0,
                    demanding,
                    violated,
                    offline: false,
                });
            }
        }
        for &i in &self.offline_vms {
            let t = &self.vms[i].template;
            by_vm.insert(i, vms.len());
            vms.push(VmPeriodUsage {
                vm: GlobalVmId(i as u32),
                class: t.name.clone(),
                vfreq_mhz: t.vfreq.as_u32(),
                vcpus: t.vcpus,
                delivered_mhz_s: 0,
                guaranteed_mhz_s: t.vfreq.as_u32() as u64 * t.vcpus as u64,
                minted_usec: 0,
                spent_usec: 0,
                demanding: true,
                violated: true,
                offline: true,
            });
        }
        let mut wasted = 0u64;
        let mut unattributed = 0u64;
        for &n in active {
            let node = &self.nodes[n];
            let snap = &mut exp.node_econ[n];
            let Some(ctl) = node.controller.as_ref() else {
                continue;
            };
            let tm = ctl.telemetry();
            for pass in 0..2usize {
                let series: Vec<(&str, u64)> = if pass == 0 {
                    tm.credits_minted_by_vm().collect()
                } else {
                    tm.credits_spent_by_vm().collect()
                };
                for (label, cur) in series {
                    let book = if pass == 0 {
                        &mut snap.minted
                    } else {
                        &mut snap.spent
                    };
                    let prev = book.get(label).copied().unwrap_or(0);
                    // A rebuilt controller restarts its counters at zero.
                    let delta = if cur >= prev { cur - prev } else { cur };
                    if cur != prev {
                        book.insert(label.to_owned(), cur);
                    }
                    if delta == 0 {
                        continue;
                    }
                    let owner = node
                        .residents
                        .iter()
                        .find(|r| node.host.instance(r.1).name == label)
                        .and_then(|r| by_vm.get(&r.0));
                    match owner {
                        Some(&at) if pass == 0 => vms[at].minted_usec += delta,
                        Some(&at) => vms[at].spent_usec += delta,
                        None => unattributed += delta,
                    }
                }
            }
            let cur = tm.market_wasted_usec();
            let delta = if cur >= snap.wasted {
                cur - snap.wasted
            } else {
                cur
            };
            snap.wasted = cur;
            wasted += delta;
        }
        exp.pending.push(PeriodUsage {
            period: self.period,
            vms,
            wasted_market_usec: wasted,
            unattributed_usec: unattributed,
        });
        self.usage_export = Some(exp);
    }

    /// Land migrations whose downtime elapsed (possibly failing and
    /// rolling back), and retry stranded VMs. Scans only the offline
    /// set — placed VMs are never touched here. The scratch buffer keeps
    /// its capacity across periods, so the steady-state loop stays off
    /// the allocator.
    fn land_migrations(&mut self) {
        let mut due = std::mem::take(&mut self.landing_scratch);
        due.clear();
        due.extend_from_slice(&self.offline_vms);
        self.land_vm_set(&due);
        self.landing_scratch = due;
    }

    /// Try to land each offline VM in `vms` (VM-record indices, sorted
    /// ascending): stranded VMs are re-placed if capacity appeared,
    /// in-flight VMs whose downtime elapsed land (possibly failing the
    /// handshake and rolling back). Indices that are not currently
    /// offline — or in flight but not yet due — are skipped, so the
    /// event core may pass a superset.
    pub(crate) fn land_vm_set(&mut self, vms: &[usize]) {
        let p = self.period;
        for &idx in vms {
            match self.vms[idx].location {
                Location::Stranded => {
                    let request = PlacementRequest::from(&self.vms[idx].template);
                    if let Some(dest) = self.place_excluding(&request, None) {
                        self.land_on(idx, dest);
                    }
                }
                Location::InFlight { dest, arrive, src } if arrive <= p => {
                    let request = PlacementRequest::from(&self.vms[idx].template);
                    let mode = self.strategy.constraint();
                    if self.nodes[dest].is_down() || !mode.fits(&self.nodes[dest].bin, &request) {
                        // Destination died (or filled up) while the VM
                        // was in flight: place it somewhere else.
                        let next = match self.place_excluding(&request, None) {
                            Some(other) => {
                                self.note_inflight(idx, p + 1);
                                Location::InFlight {
                                    dest: other,
                                    arrive: p + 1,
                                    src: None,
                                }
                            }
                            None => Location::Stranded,
                        };
                        self.vms[idx].location = next;
                    } else if src.is_some()
                        && self.faults.migration_fail_rate > 0.0
                        && self.frng.chance(self.faults.migration_fail_rate)
                    {
                        // Landing handshake failed: roll back to the
                        // source (one extra offline period), or re-place
                        // if the source meanwhile died or filled up.
                        self.freport.migrations_failed += 1;
                        let back = src
                            .filter(|&s| {
                                !self.nodes[s].is_down() && mode.fits(&self.nodes[s].bin, &request)
                            })
                            .or_else(|| self.place_excluding(&request, Some(dest)));
                        let next = match back {
                            Some(node) => {
                                self.note_inflight(idx, p + 1);
                                Location::InFlight {
                                    dest: node,
                                    arrive: p + 1,
                                    src: None,
                                }
                            }
                            None => Location::Stranded,
                        };
                        self.vms[idx].location = next;
                    } else {
                        self.land_on(idx, dest);
                    }
                }
                _ => {}
            }
        }
    }

    /// Provision VM `idx` on `dest` and resume its parked workload.
    fn land_on(&mut self, idx: usize, dest: usize) {
        let workload = self.vms[idx]
            .parked
            .take()
            .expect("offline VM parked its workload");
        let template = self.vms[idx].template.clone();
        let local = self.nodes[dest].host.provision(&template);
        self.nodes[dest].host.attach_workload(local, workload);
        self.nodes[dest]
            .bin
            .place(&PlacementRequest::from(&template));
        self.refresh_node(dest);
        self.vms[idx].location = Location::OnNode { node: dest, local };
        self.remove_offline(idx);
        self.add_resident(dest, idx, local);
    }

    /// Bring due repairs and controller restarts into effect.
    fn recover_for_period(&mut self) {
        let p = self.period;
        for i in 0..self.nodes.len() {
            if self.nodes[i].repairs_at == Some(p) {
                // The node rejoins empty (its VMs were evacuated at crash
                // time) with the cold controller built back then — and
                // re-enters the placement index as a candidate.
                self.nodes[i].repairs_at = None;
                self.refresh_node(i);
            }
            if self.nodes[i].controller_returns_at == Some(p) && !self.nodes[i].is_down() {
                self.nodes[i].controller_returns_at = None;
                let cfg = self
                    .active_controller_config()
                    .expect("only controller strategies lose controllers");
                let mut ctl = Controller::new(
                    cfg.with_mode(ControlMode::Full),
                    self.nodes[i].host.topology_info(),
                );
                match self.nodes[i].snapshot.take() {
                    Some(snap) => {
                        let live = HostBackend::vms(&self.nodes[i].host);
                        ctl.restore_state(&snap, &live);
                        self.freport.warm_restarts += 1;
                    }
                    None => self.freport.cold_restarts += 1,
                }
                self.nodes[i].controller = Some(ctl);
                self.nodes[i].recovery_until = p + self.faults.recovery_tail_periods;
            }
        }
    }

    /// Decide node crashes for this period (scripted + random draws).
    fn inject_node_crashes(&mut self) {
        let p = self.period;
        let mut crashes: Vec<usize> = self
            .faults
            .scripted_node_crashes
            .iter()
            .filter(|(t, _)| *t == p)
            .map(|(_, n)| *n)
            .collect();
        if self.faults.node_crash_rate > 0.0 {
            for i in 0..self.nodes.len() {
                if !self.nodes[i].is_down() && self.frng.chance(self.faults.node_crash_rate) {
                    crashes.push(i);
                }
            }
        }
        crashes.sort_unstable();
        crashes.dedup();
        for node in crashes {
            if node < self.nodes.len() && !self.nodes[node].is_down() {
                self.crash_node(node);
            }
        }
    }

    /// Kill a node: every VM on it is evacuated through Eq. 7 placement
    /// (or stranded), the node stays down for `repair_periods` and
    /// rejoins empty with a cold controller.
    fn crash_node(&mut self, node: usize) {
        self.freport.node_crashes += 1;
        // The resident index is sorted by VM-record index, so evacuation
        // order matches the old full-fleet scan.
        let victims: Vec<usize> = self.nodes[node].residents.iter().map(|r| r.0).collect();
        for idx in victims {
            let Location::OnNode { local, .. } = self.vms[idx].location else {
                unreachable!("resident index guarantees OnNode");
            };
            let workload = self.nodes[node].host.deprovision(local);
            let request = PlacementRequest::from(&self.vms[idx].template);
            self.nodes[node].bin.remove(&request);
            self.remove_resident(node, idx);
            self.vms[idx].parked = Some(workload);
            self.freport.evacuated_vms += 1;
            let arrive = self.period + self.faults.evacuation_downtime_periods.max(1);
            let next = match self.place_excluding(&request, Some(node)) {
                Some(dest) => {
                    self.note_inflight(idx, arrive);
                    Location::InFlight {
                        dest,
                        arrive,
                        src: None,
                    }
                }
                None => Location::Stranded,
            };
            self.vms[idx].location = next;
            self.add_offline(idx);
        }
        let cfg = self.active_controller_config();
        let rt = &mut self.nodes[node];
        rt.repairs_at = Some(self.period + self.faults.repair_periods.max(1));
        rt.controller_returns_at = None;
        rt.snapshot = None;
        rt.hot_streak = 0;
        rt.recovery_until = 0;
        // Whatever controller state existed died with the node.
        rt.controller = cfg
            .map(|cfg| Controller::new(cfg.with_mode(ControlMode::Full), rt.host.topology_info()));
        // One refresh covers the whole evacuation: the loop above always
        // excludes this node from placement, and no other bin changes
        // (evacuees go in flight, they do not land here).
        self.refresh_node(node);
    }

    /// Decide controller crashes for this period (scripted + random).
    fn inject_controller_crashes(&mut self) {
        let p = self.period;
        let mut crashes: Vec<usize> = self
            .faults
            .scripted_controller_crashes
            .iter()
            .filter(|(t, _)| *t == p)
            .map(|(_, n)| *n)
            .collect();
        if self.faults.controller_crash_rate > 0.0 {
            for i in 0..self.nodes.len() {
                if !self.nodes[i].is_down()
                    && self.nodes[i].controller.is_some()
                    && self.frng.chance(self.faults.controller_crash_rate)
                {
                    crashes.push(i);
                }
            }
        }
        crashes.sort_unstable();
        crashes.dedup();
        for node in crashes {
            if node >= self.nodes.len() {
                continue;
            }
            let rt = &mut self.nodes[node];
            if rt.is_down() || rt.controller_returns_at.is_some() {
                continue;
            }
            let Some(ctl) = rt.controller.take() else {
                continue; // migration strategy: nothing to crash
            };
            self.freport.controller_crashes += 1;
            // Snapshot the journal the daemon would have on disk, then
            // fail open exactly like the circuit breaker: uncap all.
            rt.snapshot = (self.faults.restart == RestartPolicy::Warm).then(|| ctl.export_state());
            Self::uncap_node(&mut rt.host);
            rt.controller_returns_at = Some(p + self.faults.controller_restart_periods.max(1));
        }
    }

    /// Remove every `cpu.max` cap on a node (fail-open posture).
    fn uncap_node(host: &mut SimHost) {
        let vms = HostBackend::vms(host);
        for vm in vms {
            for j in 0..vm.nr_vcpus {
                let _ = host.clear_vcpu_max(vm.vm, VcpuId::new(j));
            }
        }
    }

    /// Migrate the largest VM off `src` to the emptiest node that fits.
    fn try_migrate_from(&mut self, src: usize, downtime: u32) -> bool {
        // Largest frequency-demand VM currently on src, off the resident
        // index (sorted ascending, so ties break exactly like the old
        // full-fleet scan: last maximal VM-record index wins).
        let candidate = self.nodes[src]
            .residents
            .iter()
            .max_by_key(|r| r.3 as u64 * r.2.as_u32() as u64)
            .map(|r| r.0);
        let Some(vm_idx) = candidate else {
            return false;
        };
        let request = PlacementRequest::from(&self.vms[vm_idx].template);
        let dest = self.place_with(PlacementAlgorithm::WorstFit, &request, Some(src));
        let Some(dest) = dest else {
            return false; // nowhere to go; stay hot
        };

        let Location::OnNode { node, local } = self.vms[vm_idx].location else {
            unreachable!("candidate filter guarantees OnNode");
        };
        debug_assert_eq!(node, src);
        let workload = self.nodes[src].host.deprovision(local);
        self.nodes[src].bin.remove(&request);
        self.refresh_node(src);
        self.remove_resident(src, vm_idx);
        self.vms[vm_idx].parked = Some(workload);
        let arrive = self.period + downtime as u64;
        self.vms[vm_idx].location = Location::InFlight {
            dest,
            arrive,
            src: Some(src),
        };
        self.add_offline(vm_idx);
        self.note_inflight(vm_idx, arrive);
        self.migrations += 1;
        true
    }

    /// Final report.
    pub fn report(&self) -> ClusterReport {
        ClusterReport {
            periods: self.period,
            deployed: self.vms.len(),
            rejected: self.rejected,
            migrations: self.migrations,
            energy_wh: self.energy_j / 3_600.0,
            nodes_total: self.nodes.len(),
            nodes_active: self.active_nodes(),
            slo_by_class: self.slo.by_class(),
            slo_overall: self.slo.overall_rate(),
            faults: self.faults.enabled().then_some(self.freport),
            recovery_slo_by_class: self.recovery.by_class(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfc_simcore::MHz;
    use vfc_vmm::workload::SteadyDemand;

    fn small_cluster(strategy: Strategy) -> ClusterManager {
        ClusterManager::new(
            vec![NodeSpec::custom("n", 1, 2, 2, MHz(2400)); 3],
            strategy,
            1,
        )
    }

    #[test]
    fn deploy_packs_best_fit_and_rejects_overflow() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        // Node capacity 9600 MHz; a 4-vCPU 1800 MHz VM takes 7200.
        for _ in 0..3 {
            assert!(c
                .deploy(
                    &VmTemplate::new("big", 4, MHz(1800)),
                    Box::new(SteadyDemand::full()),
                )
                .is_some());
        }
        // Fourth big VM still fits (3 nodes × 9600 vs 4×7200=28 800 —
        // no: each node holds one 7200 VM, 2400 left each; a fourth
        // needs 7200 contiguous → rejected).
        assert!(c
            .deploy(
                &VmTemplate::new("big", 4, MHz(1800)),
                Box::new(SteadyDemand::full()),
            )
            .is_none());
        let r = c.report();
        assert_eq!(r.deployed, 3);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.nodes_active, 3);
    }

    #[test]
    fn partitioned_lease_degrades_then_readopts_on_heal() {
        let mut faults = FaultModel::none();
        // Node 0 loses the control plane for periods 3..12.
        faults.scripted_partitions.push((3, 12, 0));
        let mut c = ClusterManager::with_faults(
            vec![NodeSpec::custom("n", 1, 2, 2, MHz(2400)); 2],
            Strategy::FrequencyControl,
            1,
            faults,
        );
        // TTL 2, grace 3: renewals must come at least every 2 periods.
        c.enable_cap_leases(2, 3);
        c.deploy(
            &VmTemplate::new("std", 2, MHz(1200)),
            Box::new(SteadyDemand::full()),
        )
        .expect("fits");

        let mut states = Vec::new();
        for _ in 0..16 {
            c.renew_leases(); // what the reconciler does each pass
            c.run_period();
            states.push(c.lease_state(0).unwrap());
        }
        // Healthy at first, guarantee-only once renewals stop reaching
        // the node, uncapped after the grace runs out, and re-adopted
        // (leased again) once the partition heals.
        assert_eq!(states[0], LeaseState::Leased, "{states:?}");
        assert!(
            states.contains(&LeaseState::GuaranteeOnly),
            "never degraded: {states:?}"
        );
        assert!(
            states.contains(&LeaseState::Uncapped),
            "grace never ran out: {states:?}"
        );
        assert_eq!(
            *states.last().unwrap(),
            LeaseState::Leased,
            "not re-adopted after heal: {states:?}"
        );
        // The untouched node never degraded.
        assert_eq!(c.lease_state(1).unwrap(), LeaseState::Leased);
        // Partition node-periods were accounted.
        assert_eq!(c.fault_report().partitioned_node_periods, 9);
    }

    #[test]
    fn telemetry_rollup_labels_every_controller_node() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        c.deploy(
            &VmTemplate::new("std", 2, MHz(1200)),
            Box::new(SteadyDemand::full()),
        )
        .expect("fits");
        for _ in 0..5 {
            c.run_period();
        }
        let page = c.telemetry_prometheus();
        // HELP/TYPE once, one series per node.
        assert_eq!(
            page.matches("# TYPE vfc_iterations_total counter").count(),
            1
        );
        for node in ["n-0", "n-1", "n-2"] {
            assert!(
                page.contains(&format!("vfc_iterations_total{{node=\"{node}\"}} 5")),
                "node {node} missing:\n{page}"
            );
        }
        // Stage histograms carry both labels.
        assert!(page.contains("vfc_stage_duration_seconds_count{node=\"n-0\",stage=\"monitor\"} 5"));
        // Cumulative health is visible per node too.
        let totals = c.health_totals();
        assert_eq!(totals.len(), 3);
        assert!(totals.iter().all(|(_, t)| t.iterations == 5));

        // The migration strategy has no controllers: empty page, no series.
        let mut m = small_cluster(Strategy::migration_default());
        m.run_period();
        assert!(m.telemetry_prometheus().is_empty());
        assert!(m.health_totals().is_empty());
    }

    #[test]
    fn frequency_control_meets_slo_without_migrations() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        let mut ids = Vec::new();
        // Fill one node exactly: 2×(2 vCPU @ 1200) + 2×(2 vCPU @ 1200) =
        // 9600 MHz across nodes via BestFit.
        for _ in 0..4 {
            ids.push(
                c.deploy(
                    &VmTemplate::new("std", 2, MHz(1200)),
                    Box::new(SteadyDemand::full()),
                )
                .expect("fits"),
            );
        }
        for _ in 0..20 {
            c.run_period();
        }
        let r = c.report();
        assert_eq!(r.migrations, 0);
        assert!(
            r.slo_overall < 0.30,
            "freq control should mostly meet SLOs (ramp-up aside): {}",
            r.slo_overall
        );
        // Steady state actually meets them.
        for id in ids {
            let f = c.vm_freq(id).unwrap();
            assert!(f >= 1100.0, "vm {id}: {f}");
        }
    }

    #[test]
    fn migration_strategy_migrates_hot_nodes() {
        // Overcommit one node heavily, leave the others empty.
        let mut c = small_cluster(Strategy::MigrationBased {
            factor: 2.0,
            high_watermark: 0.9,
            sustain: 2,
            downtime_periods: 2,
        });
        // 2.0 factor: 8 vCPUs per 4-thread node; BestFit piles the first
        // four 2-vCPU VMs onto one node.
        let mut ids = Vec::new();
        for _ in 0..4 {
            ids.push(
                c.deploy(
                    &VmTemplate::new("std", 2, MHz(1200)),
                    Box::new(SteadyDemand::full()),
                )
                .expect("fits with factor 2"),
            );
        }
        assert_eq!(c.active_nodes(), 1, "BestFit piles them up");
        for _ in 0..15 {
            c.run_period();
        }
        let r = c.report();
        assert!(r.migrations >= 1, "hot node should shed VMs");
        assert!(c.active_nodes() >= 2);
        // Migration downtime shows up as SLO violations.
        assert!(r.slo_overall > 0.0);
    }

    #[test]
    fn migrated_vm_resumes_on_the_destination() {
        let mut c = small_cluster(Strategy::MigrationBased {
            factor: 2.0,
            high_watermark: 0.9,
            sustain: 1,
            downtime_periods: 1,
        });
        // Three identical VMs: BestFit piles them onto one node (6 vCPUs
        // ≤ the 8 the ×2 factor allows); migrations then spread them to
        // the stable 1/1/1 equilibrium (util 0.5 per node, below the
        // watermark). Four VMs would thrash forever — see
        // `migration_strategy_migrates_hot_nodes` for the hot case.
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(
                c.deploy(
                    &VmTemplate::new("std", 2, MHz(1200)),
                    Box::new(SteadyDemand::full()),
                )
                .unwrap(),
            );
        }
        assert_eq!(c.active_nodes(), 1);
        for _ in 0..15 {
            c.run_period();
        }
        assert!(c.migrations() >= 2, "got {}", c.migrations());
        assert_eq!(c.active_nodes(), 3, "equilibrium is one VM per node");
        for id in ids {
            let f = c.vm_freq(id).unwrap();
            assert!(f > 2300.0, "{id} should now own its node: {f}");
        }
    }

    #[test]
    fn undeploy_frees_capacity_for_new_arrivals() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        // Fill the cluster with larges (one per node, 7200 of 9600 MHz).
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(
                c.deploy(
                    &VmTemplate::new("big", 4, MHz(1800)),
                    Box::new(SteadyDemand::full()),
                )
                .expect("fits"),
            );
        }
        // A fourth big VM is rejected…
        assert!(c
            .deploy(
                &VmTemplate::new("big", 4, MHz(1800)),
                Box::new(SteadyDemand::full())
            )
            .is_none());
        // …until one departs.
        c.undeploy(ids[0]).unwrap();
        assert!(!c.is_deployed(ids[0]));
        assert!(c.is_deployed(ids[1]));
        let replacement = c
            .deploy(
                &VmTemplate::new("big", 4, MHz(1800)),
                Box::new(SteadyDemand::full()),
            )
            .expect("freed capacity is reusable");
        c.run_period();
        assert!(c.vm_freq(replacement).unwrap() > 0.0);
        // A second removal is a typed error, not a silent no-op.
        assert_eq!(
            c.undeploy(ids[0]),
            Err(ClusterError::AlreadyRemoved(ids[0]))
        );
    }

    #[test]
    fn id_lookup_misses_are_typed_errors() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        let ghost = GlobalVmId(99);
        assert_eq!(c.undeploy(ghost), Err(ClusterError::UnknownVm(ghost)));
        assert_eq!(
            c.resize_vfreq(ghost, MHz(700)),
            Err(ClusterError::UnknownVm(ghost))
        );
        assert_eq!(c.vm_freq(ghost), None);
        assert!(!c.is_deployed(ghost));
        assert!(c.vm_template(ghost).is_none());

        let id = c
            .deploy(
                &VmTemplate::new("std", 2, MHz(1200)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        c.undeploy(id).unwrap();
        assert_eq!(c.vm_freq(id), None);
        assert_eq!(
            c.resize_vfreq(id, MHz(700)),
            Err(ClusterError::AlreadyRemoved(id))
        );
        assert!(ClusterError::NoCapacity.is_transient());
        assert!(!ClusterError::UnknownVm(ghost).is_transient());
    }

    #[test]
    fn deploy_rejects_degenerate_templates() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        let err = c
            .try_deploy(
                &VmTemplate::new("zero", 2, MHz(0)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::InvalidTemplate(_)));
        // Not counted as a capacity rejection.
        assert_eq!(c.report().rejected, 0);
        // A zero-F_v resize is equally refused.
        let id = c
            .deploy(
                &VmTemplate::new("std", 2, MHz(1200)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        assert!(matches!(
            c.resize_vfreq(id, MHz(0)),
            Err(ClusterError::InvalidTemplate(_))
        ));
    }

    #[test]
    fn first_fit_deploy_fills_in_cluster_order() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        // FirstFit always picks the lowest-index feasible node, so
        // five 2-vCPU @1200 VMs (2400 MHz each) fill node 0 to its
        // 9600 MHz budget before the fifth spills onto node 1.
        for _ in 0..5 {
            c.try_deploy_with(
                &VmTemplate::new("std", 2, MHz(1200)),
                Box::new(SteadyDemand::full()),
                PlacementAlgorithm::FirstFit,
            )
            .unwrap();
        }
        let loads = c.node_loads();
        assert_eq!(loads[0].used_mhz, 9600, "{loads:?}");
        assert_eq!(loads[1].used_mhz, 2400);
        assert_eq!(loads[2].used_mhz, 0);
    }

    #[test]
    fn resize_in_place_changes_enforced_cap_without_migration() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        // Fill one node's Eq. 7 budget exactly (1200 + 8400 = 9600 MHz)
        // so the guarantees genuinely bind: both VMs saturate, the
        // market is empty, and `std` is pinned at its 600 MHz.
        let id = c
            .deploy(
                &VmTemplate::new("std", 2, MHz(600)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        let hog = c
            .deploy(
                &VmTemplate::new("hog", 4, MHz(2100)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        assert_eq!(c.active_nodes(), 1, "BestFit co-locates them");
        for _ in 0..15 {
            c.run_period();
        }
        let before = c.vm_freq(id).unwrap();
        assert!(
            before < 800.0,
            "capped near its 600 MHz guarantee: {before}"
        );

        // The customer downgrades the hog, then upgrades `std` into the
        // freed budget: 4×1500 + 2×1800 = 9600 — both resizes are
        // in-place, zero downtime, no migration.
        assert_eq!(c.resize_vfreq(hog, MHz(1500)), Ok(ResizeOutcome::InPlace));
        assert_eq!(c.resize_vfreq(id, MHz(1800)), Ok(ResizeOutcome::InPlace));
        assert_eq!(c.vm_template(id).unwrap().vfreq, MHz(1800));
        for _ in 0..6 {
            c.run_period();
            assert_eq!(c.eq7_violations(), 0);
        }
        let after = c.vm_freq(id).unwrap();
        assert!(
            after >= 1600.0,
            "resized VM should be delivered ≈1800 MHz, got {after}"
        );
        assert_eq!(c.migrations(), 0);
        assert!(c.vm_freq(hog).unwrap() > 0.0);
    }

    #[test]
    fn resize_falls_back_to_migration_when_eq7_breaks() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        // Fill node 0 exactly: 2×2200 + 4×1300 = 9600 of 9600.
        let a = c
            .deploy(
                &VmTemplate::new("a", 2, MHz(2200)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        let _b = c
            .deploy(
                &VmTemplate::new("b", 4, MHz(1300)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        assert_eq!(c.active_nodes(), 1);
        // Growing `a` to 2400 needs 4800 MHz; even with its own 4400
        // returned, node 0 only has 4400 free → must migrate to an
        // empty node.
        assert_eq!(c.resize_vfreq(a, MHz(2400)), Ok(ResizeOutcome::Migrating));
        assert_eq!(c.vm_freq(a), Some(0.0), "in flight during the resize");
        for _ in 0..3 {
            c.run_period();
            assert_eq!(c.eq7_violations(), 0);
        }
        assert!(c.is_deployed(a));
        assert_eq!(c.vm_template(a).unwrap().vfreq, MHz(2400));
        assert!(c.vm_freq(a).unwrap() > 2300.0, "{:?}", c.vm_freq(a));
        assert_eq!(c.migrations(), 1);
    }

    #[test]
    fn impossible_resize_is_rejected_and_leaves_the_vm_untouched() {
        let mut c = ClusterManager::new(
            vec![NodeSpec::custom("n", 1, 2, 2, MHz(2400)); 2],
            Strategy::FrequencyControl,
            1,
        );
        // Both nodes nearly full: 4×2200 + 1×500 = 9300 of 9600 each.
        let ids: Vec<_> = (0..2)
            .map(|_| {
                c.deploy(
                    &VmTemplate::new("big", 4, MHz(2200)),
                    Box::new(SteadyDemand::full()),
                )
                .unwrap()
            })
            .collect();
        for _ in 0..2 {
            c.deploy(
                &VmTemplate::new("pin", 1, MHz(500)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        }
        // 4 vCPUs × 2400 = 9600 fits nowhere: in place the pin leaves
        // only 9100 even with big's own 8800 returned, and the other
        // node has 300 free. Typed rejection, VM unchanged.
        assert_eq!(
            c.resize_vfreq(ids[0], MHz(2400)),
            Err(ClusterError::NoCapacity)
        );
        assert_eq!(c.vm_template(ids[0]).unwrap().vfreq, MHz(2200));
        c.run_period();
        assert!(c.vm_freq(ids[0]).unwrap() > 0.0, "still running in place");
        assert_eq!(c.eq7_violations(), 0);
    }

    #[test]
    fn churn_with_migrations_stays_consistent() {
        // Arrivals and departures while the migration policy is active:
        // the manager must never lose track of a VM.
        let mut c = small_cluster(Strategy::MigrationBased {
            factor: 2.0,
            high_watermark: 0.9,
            sustain: 1,
            downtime_periods: 2,
        });
        let mut rng = vfc_simcore::SplitMix64::new(17);
        let mut live: Vec<GlobalVmId> = Vec::new();
        for step in 0..40 {
            if rng.chance(0.5) {
                if let Some(id) = c.deploy(
                    &VmTemplate::new("std", 2, MHz(1200)),
                    Box::new(SteadyDemand::full()),
                ) {
                    live.push(id);
                }
            }
            if step % 4 == 3 && !live.is_empty() {
                let victim = live.remove(rng.next_below(live.len() as u64) as usize);
                c.undeploy(victim).unwrap();
                assert!(!c.is_deployed(victim));
            }
            c.run_period();
        }
        // Every surviving VM eventually runs (allow in-flight stragglers
        // a couple of periods to land).
        for _ in 0..4 {
            c.run_period();
        }
        for id in live {
            assert!(c.is_deployed(id));
        }
        let r = c.report();
        assert_eq!(r.periods, 44);
    }

    #[test]
    fn history_tracks_power_and_in_flight() {
        let mut c = small_cluster(Strategy::MigrationBased {
            factor: 2.0,
            high_watermark: 0.9,
            sustain: 1,
            downtime_periods: 2,
        });
        for _ in 0..4 {
            c.deploy(
                &VmTemplate::new("std", 2, MHz(1200)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        }
        for _ in 0..10 {
            c.run_period();
        }
        let h = c.history();
        assert_eq!(h.len(), 10);
        assert!(h.iter().all(|s| s.power_w > 0.0));
        // Periods are sequential and some migration was in flight at some
        // point (the thrashing scenario).
        assert!(h.windows(2).all(|w| w[1].period == w[0].period + 1));
        assert!(h.iter().any(|s| s.in_flight > 0));
        // Energy in the report equals the integrated history.
        let integrated: f64 = h.iter().map(|s| s.power_w).sum::<f64>() / 3_600.0;
        let r = c.report();
        assert!((r.energy_wh - integrated).abs() < 1e-9);
    }

    #[test]
    fn node_crash_evacuates_vms_and_node_rejoins() {
        let mut faults = FaultModel::none();
        faults.scripted_node_crashes.push((3, 0));
        faults.repair_periods = 4;
        faults.evacuation_downtime_periods = 2;
        let mut c = ClusterManager::with_faults(
            vec![NodeSpec::custom("n", 1, 2, 2, MHz(2400)); 3],
            Strategy::FrequencyControl,
            1,
            faults,
        );
        // BestFit piles both VMs onto node 0 — the node we then kill.
        let mut ids = Vec::new();
        for _ in 0..2 {
            ids.push(
                c.deploy(
                    &VmTemplate::new("std", 2, MHz(1200)),
                    Box::new(SteadyDemand::full()),
                )
                .unwrap(),
            );
        }
        assert_eq!(c.active_nodes(), 1);
        for _ in 0..12 {
            c.run_period();
        }
        let f = c.fault_report();
        assert_eq!(f.node_crashes, 1);
        assert_eq!(f.evacuated_vms, 2);
        // Both VMs survived the crash and run somewhere else now.
        for id in ids {
            assert!(c.is_deployed(id));
            assert!(c.vm_freq(id).unwrap() > 0.0, "{id} should be running again");
        }
        // The repaired node accepts new work again.
        assert!(c
            .deploy(
                &VmTemplate::new("std", 2, MHz(1200)),
                Box::new(SteadyDemand::full()),
            )
            .is_some());
        let r = c.report();
        assert!(r.faults.is_some());
        // Evacuation downtime shows up in the recovery accounting.
        assert!(r
            .recovery_slo_by_class
            .iter()
            .any(|(_, s)| s.violated_periods > 0));
    }

    #[test]
    fn crashed_node_is_skipped_by_placement() {
        // Two nodes; one VM per node; kill node 0 while node 1 is full:
        // the evacuated VM has nowhere to go and waits stranded, then
        // lands once its home node is repaired.
        let mut faults = FaultModel::none();
        faults.scripted_node_crashes.push((2, 0));
        faults.repair_periods = 3;
        let mut c = ClusterManager::with_faults(
            vec![NodeSpec::custom("n", 1, 2, 2, MHz(2400)); 2],
            Strategy::FrequencyControl,
            1,
            faults,
        );
        let a = c
            .deploy(
                &VmTemplate::new("big", 4, MHz(1800)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        let b = c
            .deploy(
                &VmTemplate::new("big", 4, MHz(1800)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        for _ in 0..10 {
            c.run_period();
        }
        let f = c.fault_report();
        assert_eq!(f.node_crashes, 1);
        assert!(f.stranded_vm_periods > 0, "VM had nowhere to go");
        assert!(c.is_deployed(a) && c.is_deployed(b));
        assert!(
            c.vm_freq(a).unwrap() > 0.0,
            "stranded VM landed after the repair"
        );
        assert!(c.vm_freq(b).unwrap() > 0.0, "bystander VM never stopped");
    }

    #[test]
    fn controller_crash_uncaps_then_restarts_warm() {
        let mut faults = FaultModel::none();
        faults.scripted_controller_crashes.push((5, 0));
        faults.controller_restart_periods = 3;
        faults.restart = RestartPolicy::Warm;
        let mut c = ClusterManager::with_faults(
            vec![NodeSpec::custom("n", 1, 2, 2, MHz(2400)); 1],
            Strategy::FrequencyControl,
            1,
            faults,
        );
        let id = c
            .deploy(
                &VmTemplate::new("std", 2, MHz(1200)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        for _ in 0..12 {
            c.run_period();
        }
        let f = c.fault_report();
        assert_eq!(f.controller_crashes, 1);
        assert_eq!(f.warm_restarts, 1);
        assert_eq!(f.cold_restarts, 0);
        // One VM, three uncontrolled periods.
        assert_eq!(f.uncontrolled_vm_periods, 3);
        assert!(c.is_deployed(id) && c.vm_freq(id).unwrap() > 0.0);
    }

    #[test]
    fn controller_crash_cold_restart_counts_cold() {
        let mut faults = FaultModel::none();
        faults.scripted_controller_crashes.push((5, 0));
        faults.restart = RestartPolicy::Cold;
        let mut c = ClusterManager::with_faults(
            vec![NodeSpec::custom("n", 1, 2, 2, MHz(2400)); 1],
            Strategy::FrequencyControl,
            1,
            faults,
        );
        c.deploy(
            &VmTemplate::new("std", 2, MHz(1200)),
            Box::new(SteadyDemand::full()),
        )
        .unwrap();
        for _ in 0..12 {
            c.run_period();
        }
        let f = c.fault_report();
        assert_eq!(f.controller_crashes, 1);
        assert_eq!(f.cold_restarts, 1);
        assert_eq!(f.warm_restarts, 0);
    }

    #[test]
    fn failed_migrations_roll_back_and_vms_survive() {
        let mut faults = FaultModel::none();
        faults.migration_fail_rate = 0.5; // half the landings fail
        faults.seed = 7;
        let mut c = ClusterManager::with_faults(
            vec![NodeSpec::custom("n", 1, 2, 2, MHz(2400)); 3],
            Strategy::MigrationBased {
                factor: 2.0,
                high_watermark: 0.9,
                sustain: 1,
                downtime_periods: 1,
            },
            1,
            faults,
        );
        // Three identical VMs pile onto one node and spread to the
        // stable 1/1/1 equilibrium — through failing migrations.
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(
                c.deploy(
                    &VmTemplate::new("std", 2, MHz(1200)),
                    Box::new(SteadyDemand::full()),
                )
                .unwrap(),
            );
        }
        for _ in 0..30 {
            c.run_period();
        }
        let f = c.fault_report();
        assert!(f.migrations_failed > 0, "rate 0.5 must fail some landings");
        // Rollbacks never lose a VM.
        for _ in 0..4 {
            c.run_period();
        }
        for id in ids {
            assert!(c.is_deployed(id));
            assert!(c.vm_freq(id).unwrap() > 0.0, "{id} must end up running");
        }
    }

    #[test]
    fn fault_free_runs_report_no_fault_section() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        c.deploy(
            &VmTemplate::new("one", 1, MHz(500)),
            Box::new(SteadyDemand::new(0.2)),
        )
        .unwrap();
        for _ in 0..3 {
            c.run_period();
        }
        let r = c.report();
        assert!(r.faults.is_none());
        assert!(r.recovery_slo_by_class.is_empty());
    }

    #[test]
    fn empty_nodes_consume_no_energy() {
        let mut c = small_cluster(Strategy::FrequencyControl);
        c.deploy(
            &VmTemplate::new("one", 1, MHz(500)),
            Box::new(SteadyDemand::new(0.2)),
        )
        .unwrap();
        for _ in 0..5 {
            c.run_period();
        }
        let r = c.report();
        // Only one node draws power: ≤ 5 s × max_power of one node.
        let bound = 5.0 * 300.0 / 3600.0;
        assert!(r.energy_wh > 0.0 && r.energy_wh <= bound, "{}", r.energy_wh);
        assert_eq!(r.nodes_active, 1);
    }
}
