//! Cloud-trace input for the event-driven cluster simulation.
//!
//! A *trace* is a list of VM lifetimes: each VM arrives at some second,
//! requests `k_v` vCPUs at a guaranteed virtual frequency `F_v`, and
//! optionally departs at a later second. The [`TraceReader`] trait
//! abstracts the source; [`CsvTraceReader`] parses the on-disk format
//! (modeled on the dslab-iaas Azure/Huawei dataset readers) and
//! [`SyntheticTrace`] generates deterministic workloads of arbitrary
//! size for scale experiments.
//!
//! # CSV format
//!
//! One VM per line, seven comma-separated columns:
//!
//! ```csv
//! vm_id,arrival_s,departure_s,vcpus,vfreq_mhz,mem_gb,class
//! web-001,0,3600,2,500,4,small
//! db-007,120,,4,1800,16,large
//! ```
//!
//! * `vm_id` — unique, non-empty label (duplicates are rejected);
//! * `arrival_s` — arrival time in seconds, non-negative integer;
//! * `departure_s` — departure time in seconds, strictly after arrival;
//!   empty = the VM never departs;
//! * `vcpus` — positive integer (`k_v^vCPUs`);
//! * `vfreq_mhz` — guaranteed `F_v` in MHz: finite, positive;
//! * `mem_gb` — provisioned memory in GB (positive integer);
//! * `class` — SLO class label (non-empty; becomes the template name).
//!
//! A header line starting with `vm_id` and blank/`#`-comment lines are
//! skipped. Every malformed row is rejected with a [`TraceError`]
//! carrying its 1-based line number — the reader never panics on bad
//! input.
//!
//! # Time mapping
//!
//! Controller periods are 1 s and period indices are 1-based: a VM
//! arriving at second `t` is admitted just before period `t + 1` and
//! participates from that period on; a VM departing at second `d`
//! leaves just before period `d + 1` (it runs *through* period `d`).

use std::fmt;
use std::path::Path;
use vfc_simcore::{MHz, SplitMix64};
use vfc_vmm::VmTemplate;

/// One VM's lifetime as read from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceVmSpec {
    /// The trace's own identifier (unique within the trace).
    pub trace_id: String,
    /// Arrival time, seconds.
    pub arrival: u64,
    /// Departure time, seconds (`None` = runs forever).
    pub departure: Option<u64>,
    /// Size and SLO class of the VM.
    pub template: VmTemplate,
}

impl TraceVmSpec {
    /// Number of arrival/departure events this spec contributes.
    pub fn event_count(&self) -> usize {
        1 + usize::from(self.departure.is_some())
    }
}

/// Why a trace could not be read. Every parse failure names the 1-based
/// line it occurred on; parsing never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file could not be opened or read.
    Io(String),
    /// A row failed validation.
    Malformed {
        /// 1-based line number in the source.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(why) => write!(f, "trace I/O error: {why}"),
            TraceError::Malformed { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A source of VM lifetimes. Implementations must return specs in a
/// deterministic order — the event core schedules them in sequence, and
/// same-input runs must replay bit-identically.
pub trait TraceReader {
    /// Produce every VM spec in the trace.
    fn read(&mut self) -> Result<Vec<TraceVmSpec>, TraceError>;
}

/// CSV-backed trace reader; see the module docs for the format.
pub struct CsvTraceReader {
    src: String,
}

impl CsvTraceReader {
    /// Read from an in-memory CSV string.
    pub fn from_csv(src: &str) -> Self {
        CsvTraceReader {
            src: src.to_owned(),
        }
    }

    /// Read from a file on disk.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let src = std::fs::read_to_string(path.as_ref())
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.as_ref().display())))?;
        Ok(CsvTraceReader { src })
    }

    fn parse_row(line_no: usize, row: &str) -> Result<TraceVmSpec, TraceError> {
        let bad = |reason: String| TraceError::Malformed {
            line: line_no,
            reason,
        };
        let cols: Vec<&str> = row.split(',').map(str::trim).collect();
        if cols.len() != 7 {
            return Err(bad(format!("expected 7 columns, found {}", cols.len())));
        }
        let (id, arrival_s, departure_s, vcpus_s, vfreq_s, mem_s, class) = (
            cols[0], cols[1], cols[2], cols[3], cols[4], cols[5], cols[6],
        );
        if id.is_empty() {
            return Err(bad("empty vm_id".into()));
        }
        // Timestamps parse as signed so `-5` reports "negative", not a
        // generic integer-parse failure.
        let arrival: i64 = arrival_s
            .parse()
            .map_err(|_| bad(format!("unparsable arrival_s {arrival_s:?}")))?;
        if arrival < 0 {
            return Err(bad(format!("negative arrival_s {arrival}")));
        }
        let departure: Option<i64> = if departure_s.is_empty() {
            None
        } else {
            Some(
                departure_s
                    .parse()
                    .map_err(|_| bad(format!("unparsable departure_s {departure_s:?}")))?,
            )
        };
        if let Some(d) = departure {
            if d < 0 {
                return Err(bad(format!("negative departure_s {d}")));
            }
            if d <= arrival {
                return Err(bad(format!(
                    "departure_s {d} not after arrival_s {arrival}"
                )));
            }
        }
        let vcpus: u32 = vcpus_s
            .parse()
            .map_err(|_| bad(format!("unparsable vcpus {vcpus_s:?}")))?;
        if vcpus == 0 {
            return Err(bad("zero vcpus".into()));
        }
        // F_v parses as float so `NaN`/`inf`/fractional inputs are
        // diagnosed precisely, then must round-trip to a positive MHz.
        let vfreq: f64 = vfreq_s
            .parse()
            .map_err(|_| bad(format!("unparsable vfreq_mhz {vfreq_s:?}")))?;
        if !vfreq.is_finite() {
            return Err(bad(format!("non-finite vfreq_mhz {vfreq}")));
        }
        if vfreq <= 0.0 || vfreq > u32::MAX as f64 {
            return Err(bad(format!("vfreq_mhz {vfreq} out of range")));
        }
        let mem_gb: u32 = mem_s
            .parse()
            .map_err(|_| bad(format!("unparsable mem_gb {mem_s:?}")))?;
        if mem_gb == 0 {
            return Err(bad("zero mem_gb".into()));
        }
        if class.is_empty() {
            return Err(bad("empty class".into()));
        }
        Ok(TraceVmSpec {
            trace_id: id.to_owned(),
            arrival: arrival as u64,
            departure: departure.map(|d| d as u64),
            template: VmTemplate::new(class, vcpus, MHz(vfreq as u32)).with_mem_gb(mem_gb),
        })
    }
}

impl TraceReader for CsvTraceReader {
    fn read(&mut self) -> Result<Vec<TraceVmSpec>, TraceError> {
        let mut specs = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (i, raw) in self.src.lines().enumerate() {
            let line_no = i + 1;
            let row = raw.trim();
            if row.is_empty() || row.starts_with('#') || row.starts_with("vm_id") {
                continue;
            }
            let spec = Self::parse_row(line_no, row)?;
            if !seen.insert(spec.trace_id.clone()) {
                return Err(TraceError::Malformed {
                    line: line_no,
                    reason: format!("duplicate vm_id {:?}", spec.trace_id),
                });
            }
            specs.push(spec);
        }
        Ok(specs)
    }
}

/// Deterministic synthetic-trace generator for scale experiments:
/// arrivals spread uniformly over the horizon, lifetimes drawn
/// geometrically around a mean, sizes drawn from the paper's
/// small/medium/large template mix. Same seed ⇒ byte-identical trace.
pub struct SyntheticTrace {
    /// Number of VMs to generate.
    pub vms: usize,
    /// Arrival window: seconds `[0, horizon_s)`.
    pub horizon_s: u64,
    /// Mean VM lifetime in seconds (minimum 1).
    pub mean_lifetime_s: u64,
    /// Fraction of VMs that never depart (long-running services).
    pub forever_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticTrace {
    /// A generator with the scale experiment's defaults: 60 s mean
    /// lifetime, 2 % of VMs long-running.
    pub fn new(vms: usize, horizon_s: u64, seed: u64) -> Self {
        SyntheticTrace {
            vms,
            horizon_s: horizon_s.max(1),
            mean_lifetime_s: 60,
            forever_fraction: 0.02,
            seed,
        }
    }

    /// Builder-style mean-lifetime override.
    pub fn with_mean_lifetime(mut self, seconds: u64) -> Self {
        self.mean_lifetime_s = seconds.max(1);
        self
    }

    /// Render the generated trace in the CSV format, header included —
    /// how the committed sample/golden traces are produced.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("vm_id,arrival_s,departure_s,vcpus,vfreq_mhz,mem_gb,class\n");
        for spec in self.generate() {
            let departure = spec.departure.map(|d| d.to_string()).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                spec.trace_id,
                spec.arrival,
                departure,
                spec.template.vcpus,
                spec.template.vfreq.as_u32(),
                spec.template.mem_gb,
                spec.template.name,
            ));
        }
        out
    }

    /// Generate the trace, sorted by arrival second (ties in id order).
    pub fn generate(&self) -> Vec<TraceVmSpec> {
        let mut rng = SplitMix64::new(self.seed ^ 0x7124_CE5E_ED00_0001);
        let mut specs: Vec<TraceVmSpec> = (0..self.vms)
            .map(|i| {
                let arrival = rng.next_below(self.horizon_s);
                // Size mix loosely after the paper's evaluation fleet:
                // mostly small web VMs, some medium, a few large.
                let template = match rng.next_below(10) {
                    0..=5 => VmTemplate::small(),
                    6..=8 => VmTemplate::medium(),
                    _ => VmTemplate::large(),
                };
                let departure = if rng.chance(self.forever_fraction) {
                    None
                } else {
                    // Exponential lifetimes around the mean, floored at
                    // one full period so every VM exists for ≥1 period.
                    let u = rng.next_f64().clamp(0.0, 0.999_999);
                    let life = (-(1.0 - u).ln() * self.mean_lifetime_s as f64).ceil() as u64;
                    Some(arrival + life.max(1))
                };
                TraceVmSpec {
                    trace_id: format!("syn-{i:06}"),
                    arrival,
                    departure,
                    template,
                }
            })
            .collect();
        // Stable sort: arrival ties keep generation (id) order.
        specs.sort_by_key(|s| s.arrival);
        specs
    }
}
