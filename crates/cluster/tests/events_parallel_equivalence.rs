//! Thread count must be invisible in every event-core output.
//!
//! The same-instant node batch fans out across the rayon shim inside
//! `ClusterManager::advance_node_set`; the determinism contract
//! (`events` module docs, DESIGN.md §16) promises that worker count
//! changes wall-clock only — journals, `ClusterReport`s and fault draws
//! stay byte-identical. This proptest replays the same random trace
//! serially (`set_parallelism(1)`) and with a forced 4-way split
//! (`set_parallelism(4)` — honoured even on a 1-core machine, so the
//! parallel code path is genuinely exercised in CI) and compares the
//! JSON-serialized reports, the event journals and the stats counters
//! byte for byte.
//!
//! `set_parallelism` is process-global, so every test in this binary
//! serializes on one mutex and restores the default on exit.

use std::sync::Mutex;

use proptest::prelude::*;
use vfc_cluster::{
    set_parallelism, ClusterManager, EventDrivenCluster, EventStats, FaultModel, TraceVmSpec,
};
use vfc_cpusched::topology::NodeSpec;
use vfc_placement::algo::PlacementAlgorithm;
use vfc_simcore::MHz;
use vfc_vmm::workload::BurstyWeb;
use vfc_vmm::VmTemplate;

static PARALLELISM_LOCK: Mutex<()> = Mutex::new(());

/// One VM lifetime drawn by proptest: `(arrival, lifetime, template)`.
type SpecSeed = (u64, u64, u8);

fn trace_from(seeds: &[SpecSeed], horizon: u64) -> Vec<TraceVmSpec> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &(arrival, lifetime, t))| {
            let arrival = arrival % (horizon / 2).max(1);
            let template = match t % 3 {
                0 => VmTemplate::small(),
                1 => VmTemplate::medium(),
                _ => VmTemplate::large(),
            };
            TraceVmSpec {
                trace_id: format!("pv-{i}"),
                arrival,
                // `lifetime % horizon == 0` means the VM never departs
                // inside the run — keeps a standing busy set so the
                // PH_NODE batch stays > 4 nodes (the rayon threshold).
                departure: match lifetime % horizon {
                    0 => None,
                    l => Some(arrival + l),
                },
                template,
            }
        })
        .collect()
}

/// Replay `trace` at the given worker count; return every observable.
fn replay(threads: usize, seed: u64, trace: Vec<TraceVmSpec>) -> (Vec<String>, String, EventStats) {
    set_parallelism(threads);
    let specs = vec![NodeSpec::custom("par", 1, 4, 2, MHz(2400)); 12];
    let mut faults = FaultModel::none();
    faults.seed = seed;
    faults.node_crash_rate = 0.01;
    faults.controller_crash_rate = 0.02;
    faults.migration_fail_rate = 0.2;
    faults.repair_periods = 3;
    faults.evacuation_downtime_periods = 2;
    let mgr =
        ClusterManager::with_faults(specs, vfc_cluster::Strategy::FrequencyControl, seed, faults);
    let mut cluster = EventDrivenCluster::new(mgr)
        .with_algorithm(PlacementAlgorithm::BestFit)
        .with_workloads(
            seed ^ 0xB0B5,
            Box::new(|slot, _t, rng| Box::new(BurstyWeb::new(rng.next_u64() ^ slot as u64))),
        );
    cluster.enable_journal();
    cluster.load_trace(trace);
    cluster.run_until(40);
    let journal = cluster.journal().expect("journal enabled").to_vec();
    let report = serde_json::to_string(&cluster.report()).expect("report serializes");
    (journal, report, cluster.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn serial_and_parallel_replays_are_byte_identical(
        seed in 0u64..u64::MAX,
        seeds in proptest::collection::vec((0u64..1_000_000, 0u64..1_000, 0u8..3), 16..40),
    ) {
        let _guard = PARALLELISM_LOCK.lock().unwrap();
        let trace = trace_from(&seeds, 40);
        let (j1, r1, s1) = replay(1, seed, trace.clone());
        let (j4, r4, s4) = replay(4, seed, trace);
        set_parallelism(0);
        prop_assert_eq!(&j1, &j4, "journals diverged between 1 and 4 workers");
        prop_assert_eq!(&r1, &r4, "reports diverged between 1 and 4 workers");
        prop_assert_eq!(s1, s4, "stats diverged between 1 and 4 workers");
        // The run must actually have processed node periods, or the
        // equivalence is vacuous.
        prop_assert!(s1.node_periods > 0);
    }
}

/// Deterministic smoke variant of the proptest: a packed fleet whose
/// standing batch covers all 12 nodes, so the >4-node rayon fan-out is
/// guaranteed (not just likely) to run.
#[test]
fn forced_parallel_split_matches_serial_on_a_packed_fleet() {
    let _guard = PARALLELISM_LOCK.lock().unwrap();
    let trace: Vec<TraceVmSpec> = (0..24)
        .map(|i| TraceVmSpec {
            trace_id: format!("packed-{i}"),
            arrival: 0,
            departure: None,
            template: VmTemplate::large(),
        })
        .collect();
    let (j1, r1, s1) = replay(1, 0x00DE_C0DE, trace.clone());
    let (j8, r8, s8) = replay(8, 0x00DE_C0DE, trace);
    set_parallelism(0);
    assert_eq!(j1, j8);
    assert_eq!(r1, r8);
    assert_eq!(s1, s8);
    assert!(s1.node_periods as usize >= 12, "all nodes must stay busy");
}
