//! Residual-index placement must be byte-identical to the linear scan.
//!
//! The O(log n) [`vfc_placement::index::ResidualIndex`] answers every
//! placement question in the cluster manager; the pre-index O(n) bin
//! scan is kept as `ClusterManager::place_with_linear`, the oracle.
//! This proptest drives a manager through random deploy / undeploy /
//! resize / fault-period sequences (crashes and repairs flow through
//! `run_period`'s fault machinery) and, after every mutation, compares
//! the two answers for all three heuristics, a spread of probe sizes,
//! and both `exclude` modes. Any divergence — a different node, or one
//! side finding capacity the other misses — is a real placement bug,
//! not noise: both sides are deterministic functions of the bin state.

use proptest::prelude::*;
use vfc_cluster::Strategy as ClusterStrategy;
use vfc_cluster::{ClusterManager, FaultModel, GlobalVmId};
use vfc_cpusched::topology::NodeSpec;
use vfc_placement::algo::PlacementAlgorithm;
use vfc_placement::PlacementRequest;
use vfc_simcore::MHz;
use vfc_vmm::workload::SteadyDemand;
use vfc_vmm::VmTemplate;

#[derive(Debug, Clone)]
enum Op {
    /// Deploy template `t` (0=small 1=medium 2=large) with heuristic `a`.
    Deploy { t: u8, a: u8 },
    /// Undeploy the `k`-th still-live VM (no-op when none are live).
    Undeploy { k: u8 },
    /// Resize the `k`-th still-live VM to `mhz` (in-place or migrating).
    Resize { k: u8, mhz: u16 },
    /// Run one full period: fault draws may crash/repair nodes and
    /// evacuate VMs — the transitions the index must track exactly.
    Period,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof! is unweighted: repeat the deploy arm so
    // sequences skew toward fuller (more interesting) bins.
    prop_oneof![
        (0u8..3, 0u8..3).prop_map(|(t, a)| Op::Deploy { t, a }),
        (0u8..3, 0u8..3).prop_map(|(t, a)| Op::Deploy { t, a }),
        (0u8..64).prop_map(|k| Op::Undeploy { k }),
        (0u8..64, 300u16..2500).prop_map(|(k, mhz)| Op::Resize { k, mhz }),
        Just(Op::Period),
    ]
}

fn template(t: u8) -> VmTemplate {
    match t {
        0 => VmTemplate::small(),
        1 => VmTemplate::medium(),
        _ => VmTemplate::large(),
    }
}

fn algorithm(a: u8) -> PlacementAlgorithm {
    match a {
        0 => PlacementAlgorithm::FirstFit,
        1 => PlacementAlgorithm::BestFit,
        _ => PlacementAlgorithm::WorstFit,
    }
}

/// Probe the index against the linear oracle across heuristics, sizes
/// (fitting, tight, and impossible) and exclusions.
fn assert_index_matches_oracle(mgr: &ClusterManager, ctx: &str) {
    let probes = [
        PlacementRequest::new("p-small", 2, MHz(500), 4),
        PlacementRequest::new("p-medium", 4, MHz(1200), 8),
        PlacementRequest::new("p-large", 4, MHz(1800), 8),
        PlacementRequest::new("p-zero", 1, MHz(1), 0),
        PlacementRequest::new("p-huge", 64, MHz(2400), 1024),
    ];
    for algo in [
        PlacementAlgorithm::FirstFit,
        PlacementAlgorithm::BestFit,
        PlacementAlgorithm::WorstFit,
    ] {
        for probe in &probes {
            for exclude in [None, Some(0), Some(mgr.node_count() / 2)] {
                let oracle = mgr.place_with_linear(algo, probe, exclude);
                let indexed = mgr.place_with_indexed(algo, probe, exclude);
                assert_eq!(
                    oracle, indexed,
                    "{ctx}: {algo:?} {} exclude {exclude:?}: linear {oracle:?} vs index {indexed:?}",
                    probe.template
                );
            }
        }
    }
}

fn run_sequence(strategy: ClusterStrategy, seed: u64, crash_rate: f64, ops: &[Op]) {
    let mut faults = FaultModel::none();
    faults.seed = seed;
    faults.node_crash_rate = crash_rate;
    faults.controller_crash_rate = crash_rate / 2.0;
    faults.repair_periods = 2;
    faults.evacuation_downtime_periods = 1;
    let specs: Vec<NodeSpec> = (0..10)
        .map(|i| {
            if i % 3 == 0 {
                NodeSpec::custom("idx-big", 1, 4, 2, MHz(2400))
            } else {
                NodeSpec::custom("idx-small", 1, 2, 2, MHz(2000))
            }
        })
        .collect();
    let mut mgr = ClusterManager::with_faults(specs, strategy, seed, faults);
    assert_index_matches_oracle(&mgr, "fresh");
    let mut live: Vec<GlobalVmId> = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Deploy { t, a } => {
                if let Ok(id) = mgr.try_deploy_with(
                    &template(*t),
                    Box::new(SteadyDemand::new(0.6)),
                    algorithm(*a),
                ) {
                    live.push(id);
                }
            }
            Op::Undeploy { k } => {
                if !live.is_empty() {
                    let id = live.remove(*k as usize % live.len());
                    let _ = mgr.undeploy(id);
                }
            }
            Op::Resize { k, mhz } => {
                if !live.is_empty() {
                    let id = live[*k as usize % live.len()];
                    let _ = mgr.resize_vfreq(id, MHz(*mhz as u32));
                }
            }
            Op::Period => mgr.run_period(),
        }
        live.retain(|id| mgr.is_deployed(*id));
        assert_index_matches_oracle(&mgr, &format!("step {step} ({op:?})"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eq. 7 admission (residuals in MHz) with fault churn.
    #[test]
    fn index_matches_linear_under_eq7(
        seed in 0u64..u64::MAX,
        ops in proptest::collection::vec(op_strategy(), 1..32),
    ) {
        run_sequence(ClusterStrategy::FrequencyControl, seed, 0.05, &ops);
    }

    /// Core-count admission (residuals in vCPU slots), no controller.
    #[test]
    fn index_matches_linear_under_core_count(
        seed in 0u64..u64::MAX,
        ops in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        run_sequence(ClusterStrategy::migration_default(), seed, 0.04, &ops);
    }
}
