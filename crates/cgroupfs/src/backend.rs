//! The host abstraction the virtual frequency controller runs against.
//!
//! The controller (crate `vfc-controller`) is written once against
//! [`HostBackend`]; two implementations exist:
//!
//! * [`crate::fs::FsBackend`] — a real cgroup-v2 mount + `/proc` +
//!   `/sys/devices/system/cpu` (or any directory tree with the same
//!   shape);
//! * `vfc_vmm::SimHost` — the full host simulator.
//!
//! All monitoring reads are cheap, and the controller batches them once
//! per period, matching the paper's ≈4 ms monitoring budget (§IV.A.2).

use crate::error::Result;
use crate::model::CpuMax;
use vfc_simcore::{CpuId, MHz, Micros, Tid, VcpuId, VmId};

/// Static description of the host the controller needs for Eq. 1/2:
/// the cycle capacity `C^MAX = p × nr_cpus` and the frequency ceiling
/// `F^MAX` used to translate virtual frequencies into cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyInfo {
    /// Number of schedulable hardware threads (`k_n^CPU`).
    pub nr_cpus: u32,
    /// Maximum all-core frequency (`F_n^MAX`).
    pub max_mhz: MHz,
}

impl TopologyInfo {
    /// Maximum cycles distributable per period `p` (Eq. 1).
    pub fn c_max(&self, period: Micros) -> Micros {
        period * self.nr_cpus as u64
    }
}

/// One hosted VM as seen through the cgroup hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmCgroupInfo {
    /// Stable identifier assigned by the backend.
    pub vm: VmId,
    /// Human-readable VM name (from the scope directory).
    pub name: String,
    /// Number of vCPU sub-groups found.
    pub nr_vcpus: u32,
    /// The customer-requested virtual frequency `F_v` for this VM, when
    /// known to the backend (templates in the simulator, a sidecar table
    /// for the FS backend). `None` means "no guarantee": the controller
    /// treats such VMs as best-effort with a zero base frequency.
    pub vfreq: Option<MHz>,
}

/// One vCPU's raw monitoring counters, gathered in a single batched
/// read (see [`HostBackend::read_vcpu_raw`]).
///
/// All values are *cumulative* kernel counters or instantaneous
/// hardware state — the monitor owns the differencing against the
/// previous period's baselines, the backend only collects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcpuRawSample {
    /// Cumulative `usage_usec` since cgroup creation.
    pub usage: Micros,
    /// Cumulative `throttled_usec` since cgroup creation.
    pub throttled: Micros,
    /// CPU the vCPU thread last ran on (`CpuId(0)` when the thread id
    /// could not be determined — matching the monitor's historic
    /// fallback).
    pub last_cpu: CpuId,
    /// Current frequency of that CPU.
    pub core_freq: MHz,
}

/// Everything the six controller stages need from the host.
///
/// Implementations must be cheap for the read methods: they are called for
/// every vCPU on every iteration.
pub trait HostBackend {
    /// CPU count and frequency ceiling.
    fn topology(&self) -> TopologyInfo;

    /// Hosted VMs, in stable order.
    fn vms(&self) -> Vec<VmCgroupInfo>;

    /// Monotone epoch of the VM inventory: backends that know when their
    /// hosted-VM set (or any [`VmCgroupInfo`] field) changed may return a
    /// counter that is bumped on every such change, letting the monitor
    /// skip the allocating [`HostBackend::vms`] re-listing on unchanged
    /// periods. `None` (the default) means "unknown — always re-list",
    /// which is the only safe answer for a real cgroup mount where VMs
    /// appear and vanish behind the controller's back.
    fn vms_epoch(&self) -> Option<u64> {
        None
    }

    /// First thread id of a vCPU cgroup, without materialising the full
    /// thread list. KVM vCPU groups hold exactly one thread, and the
    /// monitor only samples the first, so backends should override this
    /// with an allocation-free fast path. The default delegates to
    /// [`HostBackend::vcpu_threads`] (preserving any error/fault
    /// semantics layered on it).
    fn vcpu_first_thread(&self, vm: VmId, vcpu: VcpuId) -> Result<Option<Tid>> {
        Ok(self.vcpu_threads(vm, vcpu)?.first().copied())
    }

    /// Cumulative `usage_usec` of a vCPU cgroup since creation
    /// (`cpu.stat`). Monotone non-decreasing.
    fn vcpu_usage(&self, vm: VmId, vcpu: VcpuId) -> Result<Micros>;

    /// Cumulative `throttled_usec` of a vCPU cgroup (`cpu.stat`): time
    /// the group wanted to run but was held back by its quota. Monotone
    /// non-decreasing. Backends without the counter (cgroup v1 exposes
    /// it in nanoseconds under a different key; very old kernels not at
    /// all) may return zero — the controller then simply cannot use
    /// throttle-aware estimation.
    fn vcpu_throttled(&self, _vm: VmId, _vcpu: VcpuId) -> Result<Micros> {
        Ok(Micros::ZERO)
    }

    /// Thread ids in the vCPU cgroup (`cgroup.threads`; exactly one for
    /// KVM vCPUs).
    fn vcpu_threads(&self, vm: VmId, vcpu: VcpuId) -> Result<Vec<Tid>>;

    /// CPU the thread last ran on (`/proc/{tid}/stat`, field 39).
    fn thread_last_cpu(&self, tid: Tid) -> Result<CpuId>;

    /// Current frequency of a CPU
    /// (`/sys/devices/system/cpu/cpu{i}/cpufreq/scaling_cur_freq`).
    fn cpu_cur_freq(&self, cpu: CpuId) -> Result<MHz>;

    /// Hook called once at the start of every monitoring read pass (one
    /// pass per controller shard per period), *before* the first
    /// [`HostBackend::read_vcpu_raw`] of that pass. Backends that can
    /// amortise work across a pass — e.g. [`crate::fs::FsBackend`]
    /// memoising per-core `scaling_cur_freq` reads so `k` vCPUs packed
    /// on one core cost one sysfs read instead of `k` — reset their
    /// per-pass state here. The default does nothing.
    fn begin_read_pass(&self) {}

    /// Batched per-vCPU monitoring read: everything stage 1 needs for
    /// one vCPU, in one call.
    ///
    /// The default composes the legacy call sequence **exactly** —
    /// `vcpu_usage` → `vcpu_throttled` → `vcpu_first_thread` →
    /// `thread_last_cpu` (a missing thread id falls back to `CpuId(0)`)
    /// → `cpu_cur_freq` — aborting on the first error, so fault
    /// injection layered on the fine-grained methods keeps its
    /// per-call, in-order semantics. Backends for which the fine-grained
    /// methods each pay a syscall (the filesystem backend parses
    /// `cpu.stat` twice per vCPU through the default) should override
    /// this with a fused read; the controller's sharded monitor issues
    /// all stage-1 reads through here.
    fn read_vcpu_raw(&self, vm: VmId, vcpu: VcpuId) -> Result<VcpuRawSample> {
        let usage = self.vcpu_usage(vm, vcpu)?;
        let throttled = self.vcpu_throttled(vm, vcpu)?;
        let last_cpu = match self.vcpu_first_thread(vm, vcpu)? {
            Some(tid) => self.thread_last_cpu(tid)?,
            // No thread id (vCPU not yet running): attribute to CPU 0 so
            // the frequency estimate still has a source.
            None => CpuId::new(0),
        };
        let core_freq = self.cpu_cur_freq(last_cpu)?;
        Ok(VcpuRawSample {
            usage,
            throttled,
            last_cpu,
            core_freq,
        })
    }

    /// Write the vCPU cgroup's `cpu.max`.
    fn set_vcpu_max(&mut self, vm: VmId, vcpu: VcpuId, max: CpuMax) -> Result<()>;

    /// Read back the vCPU cgroup's current `cpu.max`.
    fn vcpu_max(&self, vm: VmId, vcpu: VcpuId) -> Result<CpuMax>;

    /// Remove any limit (`echo "max" > cpu.max`). Default implementation
    /// writes [`CpuMax::unlimited`].
    fn clear_vcpu_max(&mut self, vm: VmId, vcpu: VcpuId) -> Result<()> {
        self.set_vcpu_max(vm, vcpu, CpuMax::unlimited())
    }

    /// Write the VM scope's `cpu.weight` (CFS shares, 1–10000; kernel
    /// default 100). Used by the shares-based baseline policy, not by the
    /// paper's controller.
    fn set_vm_weight(&mut self, vm: VmId, weight: u32) -> Result<()>;

    /// Read back the VM scope's `cpu.weight`.
    fn vm_weight(&self, vm: VmId) -> Result<u32>;
}

/// Clamp a weight into the kernel's accepted `cpu.weight` range.
pub fn clamp_cpu_weight(weight: u32) -> u32 {
    weight.clamp(1, 10_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_max_follows_eq1() {
        let t = TopologyInfo {
            nr_cpus: 40,
            max_mhz: MHz(2400),
        };
        // p = 1 s, 40 hardware threads -> 40 s of CPU time per period.
        assert_eq!(t.c_max(Micros::SEC), Micros(40_000_000));
        assert_eq!(t.c_max(Micros(100_000)), Micros(4_000_000));
    }
}
