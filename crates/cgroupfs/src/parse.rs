//! Parsers and formatters for the kernel interface files the controller
//! reads and writes.
//!
//! Formats implemented exactly as the kernel emits them, so the
//! [`crate::fs::FsBackend`] works against a real cgroup-v2 mount:
//!
//! * `cpu.max` — `"$QUOTA $PERIOD\n"` with `QUOTA ∈ {max, <µs>}`;
//! * `cpu.stat` — `key value` lines; unknown keys are ignored (newer
//!   kernels add PSI-adjacent fields);
//! * `cgroup.threads` — one TID per line;
//! * `scaling_cur_freq` — a single integer in **kHz**;
//! * `/proc/{tid}/stat` — the 52-field process stat line; we extract field
//!   39 (`processor`, the CPU the thread last ran on), coping with
//!   parentheses and spaces inside `comm`.

use crate::error::{CgroupError, Result};
use crate::model::{CpuMax, CpuStat};
use vfc_simcore::{CpuId, MHz, Micros, Tid};

/// Parse the content of a `cpu.max` file.
pub fn parse_cpu_max(content: &str) -> Result<CpuMax> {
    let mut it = content.split_ascii_whitespace();
    let quota = it
        .next()
        .ok_or_else(|| CgroupError::parse("cpu.max", content))?;
    let period = it
        .next()
        .ok_or_else(|| CgroupError::parse("cpu.max", content))?;
    if it.next().is_some() {
        return Err(CgroupError::parse("cpu.max", content));
    }
    let quota = if quota == "max" {
        None
    } else {
        Some(Micros(
            quota
                .parse()
                .map_err(|_| CgroupError::parse("cpu.max quota", content))?,
        ))
    };
    let period = Micros(
        period
            .parse()
            .map_err(|_| CgroupError::parse("cpu.max period", content))?,
    );
    Ok(CpuMax { quota, period })
}

/// Render a [`CpuMax`] in the exact format the kernel accepts on write.
pub fn format_cpu_max(max: &CpuMax) -> String {
    match max.quota {
        None => format!("max {}\n", max.period.as_u64()),
        Some(q) => format!("{} {}\n", q.as_u64(), max.period.as_u64()),
    }
}

/// Parse the content of a `cpu.stat` file. Unknown keys are skipped.
pub fn parse_cpu_stat(content: &str) -> Result<CpuStat> {
    let mut stat = CpuStat::default();
    let mut saw_usage = false;
    for line in content.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| CgroupError::parse("cpu.stat line", line))?;
        let parse_u64 = || -> Result<u64> {
            value
                .trim()
                .parse()
                .map_err(|_| CgroupError::parse("cpu.stat value", line))
        };
        match key {
            "usage_usec" => {
                stat.usage_usec = Micros(parse_u64()?);
                saw_usage = true;
            }
            "user_usec" => stat.user_usec = Micros(parse_u64()?),
            "system_usec" => stat.system_usec = Micros(parse_u64()?),
            "nr_periods" => stat.nr_periods = parse_u64()?,
            "nr_throttled" => stat.nr_throttled = parse_u64()?,
            "throttled_usec" => stat.throttled_usec = Micros(parse_u64()?),
            _ => {} // nr_bursts, burst_usec, core_sched.*, …
        }
    }
    if !saw_usage {
        return Err(CgroupError::parse("cpu.stat (no usage_usec)", content));
    }
    Ok(stat)
}

/// Render a [`CpuStat`] as the kernel does (the six guaranteed fields).
pub fn format_cpu_stat(stat: &CpuStat) -> String {
    format!(
        "usage_usec {}\nuser_usec {}\nsystem_usec {}\nnr_periods {}\nnr_throttled {}\nthrottled_usec {}\n",
        stat.usage_usec.as_u64(),
        stat.user_usec.as_u64(),
        stat.system_usec.as_u64(),
        stat.nr_periods,
        stat.nr_throttled,
        stat.throttled_usec.as_u64(),
    )
}

/// Parse a `cgroup.threads` file: one TID per line.
pub fn parse_threads(content: &str) -> Result<Vec<Tid>> {
    content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| {
            l.parse::<u32>()
                .map(Tid::new)
                .map_err(|_| CgroupError::parse("cgroup.threads", l))
        })
        .collect()
}

/// Render a `cgroup.threads` file.
pub fn format_threads(tids: &[Tid]) -> String {
    let mut out = String::with_capacity(tids.len() * 8);
    for t in tids {
        out.push_str(&t.as_u32().to_string());
        out.push('\n');
    }
    out
}

/// Parse a `scaling_cur_freq` file (kHz) into MHz.
pub fn parse_scaling_cur_freq(content: &str) -> Result<MHz> {
    let khz: u64 = content
        .trim()
        .parse()
        .map_err(|_| CgroupError::parse("scaling_cur_freq", content))?;
    Ok(MHz::from_khz(khz))
}

/// Render a `scaling_cur_freq` file from a MHz value.
pub fn format_scaling_cur_freq(freq: MHz) -> String {
    format!("{}\n", freq.as_khz())
}

/// Extract the `processor` field (39th, the CPU the thread last ran on)
/// from a `/proc/{tid}/stat` line.
///
/// The `comm` field (2nd) is delimited by parentheses and may itself
/// contain spaces and parentheses (e.g. `(CPU 0/KVM)`), so fields are
/// counted from the **last** closing parenthesis, per proc(5).
pub fn parse_stat_last_cpu(content: &str) -> Result<CpuId> {
    let after_comm = content
        .rfind(')')
        .map(|i| &content[i + 1..])
        .ok_or_else(|| CgroupError::parse("/proc/tid/stat (no comm)", content))?;
    // after_comm starts at field 3 (state). processor is field 39, i.e.
    // the 37th whitespace-separated token here (0-based index 36).
    let tok = after_comm
        .split_ascii_whitespace()
        .nth(36)
        .ok_or_else(|| CgroupError::parse("/proc/tid/stat (short)", content))?;
    tok.parse::<u32>()
        .map(CpuId::new)
        .map_err(|_| CgroupError::parse("/proc/tid/stat processor", tok))
}

/// Render a minimal-but-valid `/proc/{tid}/stat` line (52 fields) for a
/// KVM vCPU thread, with the given last-run CPU. Used by fixtures and the
/// simulator's procfs emulation.
pub fn format_stat_line(tid: Tid, comm: &str, last_cpu: CpuId) -> String {
    // Fields 3..=38 and 40..=52, zeroed except state ("R") and a plausible
    // priority block — the controller only ever reads field 39.
    let mut fields: Vec<String> = Vec::with_capacity(52);
    fields.push(tid.as_u32().to_string()); // 1 pid
    fields.push(format!("({comm})")); // 2 comm
    fields.push("R".to_string()); // 3 state
    for _ in 4..=38 {
        fields.push("0".to_string());
    }
    fields.push(last_cpu.as_u32().to_string()); // 39 processor
    for _ in 40..=52 {
        fields.push("0".to_string());
    }
    fields.join(" ") + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_max_unlimited_roundtrip() {
        let m = parse_cpu_max("max 100000\n").unwrap();
        assert!(m.is_unlimited());
        assert_eq!(m.period, Micros(100_000));
        assert_eq!(format_cpu_max(&m), "max 100000\n");
    }

    #[test]
    fn cpu_max_limited_roundtrip() {
        let m = parse_cpu_max("50000 100000\n").unwrap();
        assert_eq!(m.quota, Some(Micros(50_000)));
        assert_eq!(format_cpu_max(&m), "50000 100000\n");
    }

    #[test]
    fn cpu_max_rejects_garbage() {
        assert!(parse_cpu_max("").is_err());
        assert!(parse_cpu_max("max").is_err());
        assert!(parse_cpu_max("10 20 30").is_err());
        assert!(parse_cpu_max("abc 100000").is_err());
        assert!(parse_cpu_max("100 def").is_err());
    }

    #[test]
    fn cpu_stat_parses_kernel_output() {
        let content = "usage_usec 1234567\nuser_usec 1000000\nsystem_usec 234567\n\
                       nr_periods 100\nnr_throttled 7\nthrottled_usec 42000\n\
                       nr_bursts 0\nburst_usec 0\n";
        let s = parse_cpu_stat(content).unwrap();
        assert_eq!(s.usage_usec, Micros(1_234_567));
        assert_eq!(s.user_usec, Micros(1_000_000));
        assert_eq!(s.system_usec, Micros(234_567));
        assert_eq!(s.nr_periods, 100);
        assert_eq!(s.nr_throttled, 7);
        assert_eq!(s.throttled_usec, Micros(42_000));
    }

    #[test]
    fn cpu_stat_roundtrip() {
        let s = CpuStat {
            usage_usec: Micros(5),
            user_usec: Micros(4),
            system_usec: Micros(1),
            nr_periods: 2,
            nr_throttled: 1,
            throttled_usec: Micros(9),
        };
        assert_eq!(parse_cpu_stat(&format_cpu_stat(&s)).unwrap(), s);
    }

    #[test]
    fn cpu_stat_requires_usage() {
        assert!(parse_cpu_stat("user_usec 1\n").is_err());
        assert!(parse_cpu_stat("usage_usec notanumber\n").is_err());
        assert!(parse_cpu_stat("nolinevalue\n").is_err());
    }

    #[test]
    fn threads_roundtrip() {
        let tids = vec![Tid::new(101), Tid::new(102), Tid::new(9999)];
        let content = format_threads(&tids);
        assert_eq!(parse_threads(&content).unwrap(), tids);
        assert_eq!(parse_threads("").unwrap(), vec![]);
        assert_eq!(parse_threads("\n\n10\n\n").unwrap(), vec![Tid::new(10)]);
        assert!(parse_threads("abc\n").is_err());
    }

    #[test]
    fn scaling_cur_freq_roundtrip() {
        assert_eq!(parse_scaling_cur_freq("2400000\n").unwrap(), MHz(2400));
        assert_eq!(format_scaling_cur_freq(MHz(2400)), "2400000\n");
        assert!(parse_scaling_cur_freq("fast\n").is_err());
    }

    #[test]
    fn proc_stat_extracts_processor() {
        let line = format_stat_line(Tid::new(4242), "CPU 0/KVM", CpuId::new(17));
        assert_eq!(parse_stat_last_cpu(&line).unwrap(), CpuId::new(17));
    }

    #[test]
    fn proc_stat_handles_parens_and_spaces_in_comm() {
        // comm with nested parens and spaces, as KVM vCPU threads have.
        let line = format_stat_line(Tid::new(7), "weird (comm) name", CpuId::new(3));
        assert_eq!(parse_stat_last_cpu(&line).unwrap(), CpuId::new(3));
    }

    #[test]
    fn proc_stat_rejects_malformed() {
        assert!(parse_stat_last_cpu("no comm here").is_err());
        assert!(parse_stat_last_cpu("1 (x) R 0 0").is_err()); // too short
    }

    #[test]
    fn proc_stat_line_has_52_fields_after_comm_normalization() {
        let line = format_stat_line(Tid::new(1), "qemu", CpuId::new(0));
        let after = &line[line.rfind(')').unwrap() + 1..];
        assert_eq!(after.split_ascii_whitespace().count(), 50); // fields 3..=52
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_cpu_max_roundtrip(
                quota in proptest::option::of(0u64..10_000_000),
                period in 1_000u64..1_000_000,
            ) {
                let m = CpuMax {
                    quota: quota.map(Micros),
                    period: Micros(period),
                };
                prop_assert_eq!(parse_cpu_max(&format_cpu_max(&m)).unwrap(), m);
            }

            #[test]
            fn prop_cpu_stat_roundtrip(
                usage in 0u64..u64::MAX / 16,
                periods in 0u64..1_000_000,
                throttled in 0u64..1_000_000,
                t_us in 0u64..u64::MAX / 2,
            ) {
                let user = Micros(usage / 10 * 9);
                let s = CpuStat {
                    usage_usec: Micros(usage),
                    user_usec: user,
                    system_usec: Micros(usage) - user,
                    nr_periods: periods,
                    nr_throttled: throttled,
                    throttled_usec: Micros(t_us),
                };
                prop_assert_eq!(parse_cpu_stat(&format_cpu_stat(&s)).unwrap(), s);
            }

            #[test]
            fn prop_threads_roundtrip(
                tids in proptest::collection::vec(0u32..u32::MAX, 0..50),
            ) {
                let tids: Vec<Tid> = tids.into_iter().map(Tid::new).collect();
                prop_assert_eq!(
                    parse_threads(&format_threads(&tids)).unwrap(),
                    tids
                );
            }

            #[test]
            fn prop_stat_line_extracts_any_cpu(
                tid in 0u32..u32::MAX,
                cpu in 0u32..4096,
                comm in "[ -~]{1,16}", // printable ASCII, may contain ) and spaces
            ) {
                let line = format_stat_line(Tid::new(tid), &comm, CpuId::new(cpu));
                prop_assert_eq!(
                    parse_stat_last_cpu(&line).unwrap(),
                    CpuId::new(cpu)
                );
            }

            #[test]
            fn prop_scaling_cur_freq_roundtrip(mhz in 0u32..100_000) {
                prop_assert_eq!(
                    parse_scaling_cur_freq(&format_scaling_cur_freq(MHz(mhz))).unwrap(),
                    MHz(mhz)
                );
            }

            #[test]
            fn prop_parsers_never_panic_on_garbage(s in ".{0,64}") {
                let _ = parse_cpu_max(&s);
                let _ = parse_cpu_stat(&s);
                let _ = parse_threads(&s);
                let _ = parse_scaling_cur_freq(&s);
                let _ = parse_stat_last_cpu(&s);
            }
        }
    }
}
