//! In-memory cgroup-v2 hierarchy.
//!
//! Used by the host simulator (`vfc-vmm`) as its authoritative cgroup
//! state, and by fixtures to materialize on-disk trees. Nodes are stored
//! in a flat arena (`Vec`) and addressed by [`NodeIdx`]; removed nodes are
//! tombstoned so indices stay stable — the hierarchy of a host changes
//! rarely (VM provision/teardown) while lookups happen every tick.
//!
//! The KVM layout helpers create the exact structure libvirt/KVM produce
//! on a systemd host:
//!
//! ```text
//! /machine.slice
//!   /machine-qemu\x2d1\x2dsmall0.scope      ← one per VM
//!     /libvirt
//!       /vcpu0                              ← one per vCPU (1 thread each)
//!       /vcpu1
//!       /emulator
//! ```

use crate::error::{CgroupError, Result};
use crate::model::{CpuMax, CpuStat, DEFAULT_WEIGHT};
use vfc_simcore::Tid;

/// Index of a node in the [`CgroupTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIdx(pub usize);

/// One cgroup directory.
#[derive(Debug, Clone)]
pub struct CgroupNode {
    /// Directory name (single path component).
    pub name: String,
    /// Parent group; `None` only for the root.
    pub parent: Option<NodeIdx>,
    /// Child indices (may include tombstoned entries; use [`CgroupTree::children`]).
    pub children: Vec<NodeIdx>,
    /// `cpu.max` limit.
    pub cpu_max: CpuMax,
    /// `cpu.stat` counters.
    pub cpu_stat: CpuStat,
    /// `cpu.weight` (CFS shares).
    pub weight: u32,
    /// `cgroup.threads` members (leaf groups only in practice).
    pub threads: Vec<Tid>,
    /// Marks a VM scope (the `machine-qemu…scope` level) — the grouping
    /// unit for VM-granular models such as LLC contention.
    pub vm_scope: bool,
    alive: bool,
}

impl CgroupNode {
    fn new(name: String, parent: Option<NodeIdx>) -> Self {
        CgroupNode {
            name,
            parent,
            children: Vec::new(),
            cpu_max: CpuMax::unlimited(),
            cpu_stat: CpuStat::default(),
            weight: DEFAULT_WEIGHT,
            threads: Vec::new(),
            vm_scope: false,
            alive: true,
        }
    }
}

/// An in-memory cgroup-v2 hierarchy rooted at `/`.
#[derive(Debug, Clone)]
pub struct CgroupTree {
    nodes: Vec<CgroupNode>,
}

/// Root node index (always present).
pub const ROOT: NodeIdx = NodeIdx(0);

impl Default for CgroupTree {
    fn default() -> Self {
        Self::new()
    }
}

impl CgroupTree {
    /// Create a tree containing only the root group.
    pub fn new() -> Self {
        CgroupTree {
            nodes: vec![CgroupNode::new(String::new(), None)],
        }
    }

    /// Immutable node access.
    pub fn node(&self, idx: NodeIdx) -> &CgroupNode {
        let n = &self.nodes[idx.0];
        debug_assert!(n.alive, "access to removed cgroup node");
        n
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, idx: NodeIdx) -> &mut CgroupNode {
        let n = &mut self.nodes[idx.0];
        debug_assert!(n.alive, "access to removed cgroup node");
        n
    }

    /// Number of live groups, including the root.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Always `false`: the root group cannot be removed.
    pub fn is_empty(&self) -> bool {
        false // the root always exists
    }

    /// Create a child group under `parent`. Errors if a live child with
    /// the same name exists.
    pub fn mkdir(&mut self, parent: NodeIdx, name: &str) -> Result<NodeIdx> {
        if name.is_empty() || name.contains('/') {
            return Err(CgroupError::Invalid(format!("bad cgroup name {name:?}")));
        }
        if self.child_named(parent, name).is_some() {
            return Err(CgroupError::Invalid(format!(
                "cgroup {name:?} already exists under {}",
                self.path_of(parent)
            )));
        }
        let idx = NodeIdx(self.nodes.len());
        self.nodes
            .push(CgroupNode::new(name.to_owned(), Some(parent)));
        self.nodes[parent.0].children.push(idx);
        Ok(idx)
    }

    /// Create every missing component of `path` (like `mkdir -p`).
    pub fn mkdir_all(&mut self, path: &str) -> Result<NodeIdx> {
        let mut cur = ROOT;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            cur = match self.child_named(cur, comp) {
                Some(idx) => idx,
                None => self.mkdir(cur, comp)?,
            };
        }
        Ok(cur)
    }

    /// Remove a leaf group. Errors if the group still has children or
    /// threads (matching kernel `rmdir` semantics).
    pub fn rmdir(&mut self, idx: NodeIdx) -> Result<()> {
        if idx == ROOT {
            return Err(CgroupError::Invalid("cannot remove the root".into()));
        }
        let node = &self.nodes[idx.0];
        if !node.alive {
            return Err(CgroupError::NoSuchGroup(format!("#{}", idx.0)));
        }
        if node.children.iter().any(|c| self.nodes[c.0].alive) {
            return Err(CgroupError::Invalid(format!(
                "cgroup {} has children",
                self.path_of(idx)
            )));
        }
        if !node.threads.is_empty() {
            return Err(CgroupError::Invalid(format!(
                "cgroup {} has threads",
                self.path_of(idx)
            )));
        }
        let parent = node.parent.expect("non-root has a parent");
        self.nodes[idx.0].alive = false;
        self.nodes[parent.0].children.retain(|c| *c != idx);
        Ok(())
    }

    /// Find a live child by name.
    pub fn child_named(&self, parent: NodeIdx, name: &str) -> Option<NodeIdx> {
        self.nodes[parent.0]
            .children
            .iter()
            .copied()
            .find(|c| self.nodes[c.0].alive && self.nodes[c.0].name == name)
    }

    /// Resolve an absolute path (`/a/b/c`); empty components ignored.
    pub fn resolve(&self, path: &str) -> Result<NodeIdx> {
        let mut cur = ROOT;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            cur = self
                .child_named(cur, comp)
                .ok_or_else(|| CgroupError::NoSuchGroup(path.to_owned()))?;
        }
        Ok(cur)
    }

    /// Absolute path of a node.
    pub fn path_of(&self, idx: NodeIdx) -> String {
        if idx == ROOT {
            return "/".to_owned();
        }
        let mut comps = Vec::new();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            if i == ROOT {
                break;
            }
            comps.push(self.nodes[i.0].name.as_str());
            cur = self.nodes[i.0].parent;
        }
        let mut out = String::new();
        for c in comps.iter().rev() {
            out.push('/');
            out.push_str(c);
        }
        out
    }

    /// Live children of a node.
    pub fn children(&self, idx: NodeIdx) -> impl Iterator<Item = NodeIdx> + '_ {
        self.nodes[idx.0]
            .children
            .iter()
            .copied()
            .filter(|c| self.nodes[c.0].alive)
    }

    /// Depth-first iteration over all live nodes, root included.
    pub fn iter_dfs(&self) -> Vec<NodeIdx> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.iter_dfs_into(&mut out);
        out
    }

    /// Like [`CgroupTree::iter_dfs`], into a caller-owned buffer — the
    /// per-tick scheduling engine reuses one across ticks, so the
    /// steady-state traversal allocates nothing. Recursion depth is the
    /// hierarchy depth (root → VM group → vCPU group, a small constant).
    pub fn iter_dfs_into(&self, out: &mut Vec<NodeIdx>) {
        out.clear();
        self.dfs_push(ROOT, out);
    }

    fn dfs_push(&self, idx: NodeIdx, out: &mut Vec<NodeIdx>) {
        out.push(idx);
        for c in &self.nodes[idx.0].children {
            if self.nodes[c.0].alive {
                self.dfs_push(*c, out);
            }
        }
    }

    /// Size of the node arena (live + tombstoned) — the exclusive upper
    /// bound on every [`NodeIdx`] this tree has ever issued. Lets hot
    /// paths use dense per-node scratch arrays instead of hash maps.
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// Attach a thread to a (leaf) group.
    pub fn attach_thread(&mut self, idx: NodeIdx, tid: Tid) {
        let node = self.node_mut(idx);
        if !node.threads.contains(&tid) {
            node.threads.push(tid);
        }
    }

    /// Aggregate `usage_usec` of a subtree (the kernel reports hierarchical
    /// usage in each group's `cpu.stat`; the simulator stores leaf usage
    /// and derives parents through this).
    pub fn subtree_usage(&self, idx: NodeIdx) -> vfc_simcore::Micros {
        let mut total = self.node(idx).cpu_stat.usage_usec;
        for c in self.nodes[idx.0].children.clone() {
            if self.nodes[c.0].alive {
                total += self.subtree_usage(c);
            }
        }
        total
    }
}

/// KVM/libvirt naming helpers.
pub mod kvm_layout {
    use super::*;

    /// The slice every machine scope lives under.
    pub const MACHINE_SLICE: &str = "machine.slice";

    /// Scope directory name for VM number `n` named `name`
    /// (systemd escapes `-` as `\x2d`).
    pub fn scope_name(n: u32, name: &str) -> String {
        format!("machine-qemu\\x2d{n}\\x2d{name}.scope")
    }

    /// Parse a scope directory name back into `(n, vm_name)`.
    pub fn parse_scope_name(dir: &str) -> Option<(u32, String)> {
        let rest = dir.strip_prefix("machine-qemu\\x2d")?;
        let rest = rest.strip_suffix(".scope")?;
        let (n, name) = rest.split_once("\\x2d")?;
        Some((n.parse().ok()?, name.to_owned()))
    }

    /// vCPU sub-group directory name.
    pub fn vcpu_dir(j: u32) -> String {
        format!("vcpu{j}")
    }

    /// Parse `vcpuN` back to `N`.
    pub fn parse_vcpu_dir(dir: &str) -> Option<u32> {
        dir.strip_prefix("vcpu")?.parse().ok()
    }

    /// Create the full scope + libvirt + vcpu layout for a VM; returns
    /// `(scope_idx, vcpu_idxs)`.
    pub fn provision(
        tree: &mut CgroupTree,
        n: u32,
        name: &str,
        vcpus: u32,
    ) -> Result<(NodeIdx, Vec<NodeIdx>)> {
        let slice = match tree.child_named(ROOT, MACHINE_SLICE) {
            Some(i) => i,
            None => tree.mkdir(ROOT, MACHINE_SLICE)?,
        };
        let scope = tree.mkdir(slice, &scope_name(n, name))?;
        tree.node_mut(scope).vm_scope = true;
        let libvirt = tree.mkdir(scope, "libvirt")?;
        let _emulator = tree.mkdir(libvirt, "emulator")?;
        let mut vcpu_idx = Vec::with_capacity(vcpus as usize);
        for j in 0..vcpus {
            vcpu_idx.push(tree.mkdir(libvirt, &vcpu_dir(j))?);
        }
        Ok((scope, vcpu_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfc_simcore::Micros;

    #[test]
    fn mkdir_resolve_path_roundtrip() {
        let mut t = CgroupTree::new();
        let a = t.mkdir(ROOT, "a").unwrap();
        let b = t.mkdir(a, "b").unwrap();
        assert_eq!(t.path_of(b), "/a/b");
        assert_eq!(t.resolve("/a/b").unwrap(), b);
        assert_eq!(t.resolve("/").unwrap(), ROOT);
        assert_eq!(t.path_of(ROOT), "/");
        assert!(t.resolve("/a/zz").is_err());
    }

    #[test]
    fn mkdir_rejects_duplicates_and_bad_names() {
        let mut t = CgroupTree::new();
        t.mkdir(ROOT, "a").unwrap();
        assert!(t.mkdir(ROOT, "a").is_err());
        assert!(t.mkdir(ROOT, "").is_err());
        assert!(t.mkdir(ROOT, "x/y").is_err());
    }

    #[test]
    fn mkdir_all_creates_and_reuses() {
        let mut t = CgroupTree::new();
        let c = t.mkdir_all("/x/y/z").unwrap();
        assert_eq!(t.path_of(c), "/x/y/z");
        let c2 = t.mkdir_all("/x/y/z").unwrap();
        assert_eq!(c, c2);
        assert_eq!(t.len(), 4); // root + x + y + z
    }

    #[test]
    fn rmdir_semantics() {
        let mut t = CgroupTree::new();
        let a = t.mkdir(ROOT, "a").unwrap();
        let b = t.mkdir(a, "b").unwrap();
        assert!(t.rmdir(a).is_err(), "non-empty");
        assert!(t.rmdir(ROOT).is_err(), "root");
        t.attach_thread(b, Tid::new(1));
        assert!(t.rmdir(b).is_err(), "has threads");
        t.node_mut(b).threads.clear();
        t.rmdir(b).unwrap();
        assert!(t.resolve("/a/b").is_err());
        t.rmdir(a).unwrap();
        assert_eq!(t.len(), 1);
        // double rmdir errors
        assert!(t.rmdir(a).is_err());
    }

    #[test]
    fn threads_attach_dedup() {
        let mut t = CgroupTree::new();
        let a = t.mkdir(ROOT, "a").unwrap();
        t.attach_thread(a, Tid::new(5));
        t.attach_thread(a, Tid::new(5));
        assert_eq!(t.node(a).threads, vec![Tid::new(5)]);
    }

    #[test]
    fn dfs_visits_all_live_nodes() {
        let mut t = CgroupTree::new();
        let a = t.mkdir(ROOT, "a").unwrap();
        let _b = t.mkdir(a, "b").unwrap();
        let c = t.mkdir(ROOT, "c").unwrap();
        t.rmdir(c).unwrap();
        let dfs = t.iter_dfs();
        assert_eq!(dfs.len(), 3); // root, a, b
        assert_eq!(dfs[0], ROOT);
    }

    #[test]
    fn subtree_usage_aggregates() {
        let mut t = CgroupTree::new();
        let a = t.mkdir(ROOT, "a").unwrap();
        let b = t.mkdir(a, "b").unwrap();
        let c = t.mkdir(a, "c").unwrap();
        t.node_mut(b).cpu_stat.usage_usec = Micros(100);
        t.node_mut(c).cpu_stat.usage_usec = Micros(50);
        assert_eq!(t.subtree_usage(a), Micros(150));
        assert_eq!(t.subtree_usage(ROOT), Micros(150));
    }

    #[test]
    fn kvm_scope_name_roundtrip() {
        let n = kvm_layout::scope_name(3, "small0");
        assert_eq!(n, "machine-qemu\\x2d3\\x2dsmall0.scope");
        assert_eq!(
            kvm_layout::parse_scope_name(&n),
            Some((3, "small0".to_owned()))
        );
        assert_eq!(kvm_layout::parse_scope_name("user.slice"), None);
        assert_eq!(kvm_layout::parse_vcpu_dir("vcpu7"), Some(7));
        assert_eq!(kvm_layout::parse_vcpu_dir("emulator"), None);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// A random operation script against the tree.
        #[derive(Debug, Clone)]
        enum Op {
            Mkdir { parent: usize, name: u8 },
            Rmdir { node: usize },
            Attach { node: usize, tid: u32 },
        }

        fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
            proptest::collection::vec(
                prop_oneof![
                    (0usize..32, 0u8..16).prop_map(|(parent, name)| Op::Mkdir { parent, name }),
                    (0usize..32).prop_map(|node| Op::Rmdir { node }),
                    (0usize..32, 0u32..100).prop_map(|(node, tid)| Op::Attach { node, tid }),
                ],
                0..60,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn prop_tree_stays_consistent(ops in arb_ops()) {
                let mut tree = CgroupTree::new();
                let mut live: Vec<NodeIdx> = vec![ROOT];
                for op in ops {
                    match op {
                        Op::Mkdir { parent, name } => {
                            let parent = live[parent % live.len()];
                            if let Ok(idx) =
                                tree.mkdir(parent, &format!("g{name}"))
                            {
                                live.push(idx);
                            }
                        }
                        Op::Rmdir { node } => {
                            let idx = live[node % live.len()];
                            if idx != ROOT && tree.rmdir(idx).is_ok() {
                                live.retain(|l| *l != idx);
                            }
                        }
                        Op::Attach { node, tid } => {
                            let idx = live[node % live.len()];
                            tree.attach_thread(idx, Tid::new(tid));
                        }
                    }
                }

                // Every live node resolves through its own path.
                for &idx in &live {
                    let path = tree.path_of(idx);
                    prop_assert_eq!(tree.resolve(&path).expect("live path"), idx);
                }
                // DFS sees exactly the live set.
                let dfs = tree.iter_dfs();
                prop_assert_eq!(dfs.len(), live.len());
                prop_assert_eq!(tree.len(), live.len());
                // No child lists point at dead nodes, and parent links
                // agree with child links.
                for &idx in &dfs {
                    for c in tree.children(idx) {
                        prop_assert_eq!(tree.node(c).parent, Some(idx));
                    }
                }
            }
        }
    }

    #[test]
    fn kvm_provision_creates_layout() {
        let mut t = CgroupTree::new();
        let (scope, vcpus) = kvm_layout::provision(&mut t, 1, "web", 2).unwrap();
        assert_eq!(
            t.path_of(scope),
            "/machine.slice/machine-qemu\\x2d1\\x2dweb.scope"
        );
        assert_eq!(vcpus.len(), 2);
        assert_eq!(
            t.path_of(vcpus[1]),
            "/machine.slice/machine-qemu\\x2d1\\x2dweb.scope/libvirt/vcpu1"
        );
        // Second VM shares machine.slice.
        let (scope2, _) = kvm_layout::provision(&mut t, 2, "db", 1).unwrap();
        assert_ne!(scope, scope2);
        // Same (n, name) collides, as in systemd.
        assert!(kvm_layout::provision(&mut t, 1, "web", 1).is_err());
    }
}
