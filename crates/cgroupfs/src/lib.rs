#![warn(missing_docs)]

//! cgroup-v2 CPU controller substrate.
//!
//! The virtual frequency controller (crate `vfc-controller`) talks to the
//! host exclusively through the interfaces defined here:
//!
//! * [`model`] — the CPU-controller state of a cgroup: [`model::CpuMax`]
//!   (the `cpu.max` quota/period pair), [`model::CpuStat`] (the `cpu.stat`
//!   usage and throttling counters) and weights;
//! * [`parse`] — exact parsers/formatters for the kernel file formats
//!   (`cpu.max`, `cpu.stat`, `cgroup.threads`, `scaling_cur_freq`,
//!   `/proc/{tid}/stat`);
//! * [`tree`] — an in-memory cgroup-v2 hierarchy with KVM's
//!   `machine.slice/machine-qemu…scope/vcpuN` layout helpers, used by the
//!   host simulator;
//! * [`backend`] — the [`backend::HostBackend`] trait: everything the
//!   controller needs to monitor vCPUs and apply cappings;
//! * [`fs`] — [`fs::FsBackend`], a real-filesystem implementation of
//!   `HostBackend` that reads/writes an actual cgroup-v2 mount (or any
//!   directory tree with the same shape, which is how it is tested);
//! * [`fixture`] — helpers that materialize a fake `/sys/fs/cgroup` +
//!   `/proc` + `/sys/devices` tree on disk for tests and examples.

pub mod backend;
pub mod error;
pub mod fault;
pub mod fixture;
pub mod fs;
pub mod model;
pub mod parse;
pub mod tree;
pub mod v1;

pub use backend::{HostBackend, TopologyInfo, VmCgroupInfo};
pub use error::{CgroupError, Result};
pub use fault::{FaultInjectingBackend, FaultKind, FaultOp, FaultPlan, FaultStats};
pub use model::{CpuMax, CpuStat};
pub use tree::{CgroupTree, NodeIdx};
