//! cgroup **v1** CPU-controller file formats.
//!
//! §III.B of the paper: *"There are two versions of cgroup in Linux,
//! however the version is not important as our controller works on both."*
//! The v1 interface spreads the same state across the `cpu` and `cpuacct`
//! controllers:
//!
//! | v2 | v1 |
//! |---|---|
//! | `cpu.max` (`"$QUOTA $PERIOD"`) | `cpu.cfs_quota_us` (µs, `-1` = none) + `cpu.cfs_period_us` |
//! | `cpu.stat::usage_usec` | `cpuacct.usage` (**nanoseconds**) |
//! | `cpu.stat::nr_periods/…` | `cpu.stat` (same keys, no `_usec` suffixes: `throttled_time` in ns) |
//! | `cgroup.threads` | `tasks` |
//!
//! [`crate::fs::FsBackend`] auto-detects the hierarchy version and uses
//! these formats transparently.

use crate::error::{CgroupError, Result};
use crate::model::CpuMax;
use vfc_simcore::{Micros, Tid};

/// Parse `cpu.cfs_quota_us` (+ the period read separately) into a
/// [`CpuMax`]. Quota `-1` (or any negative) means unlimited.
pub fn parse_cfs_quota(quota_content: &str, period_content: &str) -> Result<CpuMax> {
    let quota: i64 = quota_content
        .trim()
        .parse()
        .map_err(|_| CgroupError::parse("cpu.cfs_quota_us", quota_content))?;
    let period: u64 = period_content
        .trim()
        .parse()
        .map_err(|_| CgroupError::parse("cpu.cfs_period_us", period_content))?;
    Ok(CpuMax {
        quota: if quota < 0 {
            None
        } else {
            Some(Micros(quota as u64))
        },
        period: Micros(period),
    })
}

/// Render the `cpu.cfs_quota_us` file content of a [`CpuMax`].
pub fn format_cfs_quota(max: &CpuMax) -> String {
    match max.quota {
        None => "-1\n".to_owned(),
        Some(q) => format!("{}\n", q.as_u64()),
    }
}

/// Render the `cpu.cfs_period_us` file content.
pub fn format_cfs_period(max: &CpuMax) -> String {
    format!("{}\n", max.period.as_u64())
}

/// Parse `cpuacct.usage` (cumulative nanoseconds) into µs.
pub fn parse_cpuacct_usage(content: &str) -> Result<Micros> {
    let ns: u64 = content
        .trim()
        .parse()
        .map_err(|_| CgroupError::parse("cpuacct.usage", content))?;
    Ok(Micros(ns / 1_000))
}

/// Render a `cpuacct.usage` file from a µs value.
pub fn format_cpuacct_usage(usage: Micros) -> String {
    format!("{}\n", usage.as_u64() * 1_000)
}

/// Parse a v1 `tasks` file (same shape as v2 `cgroup.threads`).
pub fn parse_tasks(content: &str) -> Result<Vec<Tid>> {
    crate::parse::parse_threads(content)
}

/// Throttling statistics from a v1 `cpu.stat` file: `nr_periods`,
/// `nr_throttled`, and `throttled_time` in **nanoseconds** (returned in
/// µs). Unknown keys are ignored; missing keys default to zero (the file
/// exists on any CFS-bandwidth-enabled v1 hierarchy).
pub fn parse_v1_cpu_stat(content: &str) -> Result<(u64, u64, Micros)> {
    let mut nr_periods = 0u64;
    let mut nr_throttled = 0u64;
    let mut throttled = Micros::ZERO;
    for line in content.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| CgroupError::parse("v1 cpu.stat line", line))?;
        let v: u64 = value
            .trim()
            .parse()
            .map_err(|_| CgroupError::parse("v1 cpu.stat value", line))?;
        match key {
            "nr_periods" => nr_periods = v,
            "nr_throttled" => nr_throttled = v,
            "throttled_time" => throttled = Micros(v / 1_000),
            _ => {}
        }
    }
    Ok((nr_periods, nr_throttled, throttled))
}

/// Render a v1 `cpu.stat` file.
pub fn format_v1_cpu_stat(nr_periods: u64, nr_throttled: u64, throttled: Micros) -> String {
    format!(
        "nr_periods {nr_periods}\nnr_throttled {nr_throttled}\nthrottled_time {}\n",
        throttled.as_u64() * 1_000
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_roundtrip_limited() {
        let m = parse_cfs_quota("25000\n", "100000\n").unwrap();
        assert_eq!(m.quota, Some(Micros(25_000)));
        assert_eq!(m.period, Micros(100_000));
        assert_eq!(format_cfs_quota(&m), "25000\n");
        assert_eq!(format_cfs_period(&m), "100000\n");
    }

    #[test]
    fn quota_roundtrip_unlimited() {
        let m = parse_cfs_quota("-1\n", "100000\n").unwrap();
        assert!(m.is_unlimited());
        assert_eq!(format_cfs_quota(&m), "-1\n");
    }

    #[test]
    fn quota_rejects_garbage() {
        assert!(parse_cfs_quota("abc", "100000").is_err());
        assert!(parse_cfs_quota("100", "xyz").is_err());
    }

    #[test]
    fn cpuacct_usage_is_nanoseconds() {
        assert_eq!(
            parse_cpuacct_usage("1234567000\n").unwrap(),
            Micros(1_234_567)
        );
        assert_eq!(format_cpuacct_usage(Micros(42)), "42000\n");
        // Roundtrip.
        let u = Micros(999_999);
        assert_eq!(parse_cpuacct_usage(&format_cpuacct_usage(u)).unwrap(), u);
        assert!(parse_cpuacct_usage("x").is_err());
    }

    #[test]
    fn v1_cpu_stat_roundtrip_and_units() {
        let content = format_v1_cpu_stat(100, 7, Micros(42_000));
        let (p, t, us) = parse_v1_cpu_stat(&content).unwrap();
        assert_eq!((p, t, us), (100, 7, Micros(42_000)));
        // Real kernel output with extra keys.
        let (p, t, us) =
            parse_v1_cpu_stat("nr_periods 5\nnr_throttled 2\nthrottled_time 1500000\nwait_sum 9\n")
                .unwrap();
        assert_eq!((p, t, us), (5, 2, Micros(1_500)));
        // Missing keys default to zero; junk errors.
        assert_eq!(parse_v1_cpu_stat("").unwrap(), (0, 0, Micros::ZERO));
        assert!(parse_v1_cpu_stat("nr_periods abc\n").is_err());
        assert!(parse_v1_cpu_stat("lonelytoken\n").is_err());
    }

    #[test]
    fn tasks_parses_like_threads() {
        assert_eq!(
            parse_tasks("7\n8\n").unwrap(),
            vec![Tid::new(7), Tid::new(8)]
        );
    }

    #[test]
    fn equivalence_with_v2_semantics() {
        // The same CpuMax produces the same budget regardless of which
        // interface serialized it.
        let m = CpuMax::with_period(Micros(50_000), Micros(100_000));
        let v1 = parse_cfs_quota(&format_cfs_quota(&m), &format_cfs_period(&m)).unwrap();
        let v2 = crate::parse::parse_cpu_max(&crate::parse::format_cpu_max(&m)).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(v1.budget_for(Micros::SEC), v2.budget_for(Micros::SEC));
    }
}
