//! Real-filesystem [`HostBackend`].
//!
//! [`FsBackend`] drives an actual cgroup-v2 mount, `/proc`, and
//! `/sys/devices/system/cpu` — or any directory tree with the same shape,
//! which is how it is tested (see [`crate::fixture`]). On a cgroup-v2
//! host with KVM VMs it can be pointed at the real roots:
//!
//! ```no_run
//! use vfc_cgroupfs::fs::FsBackend;
//! let backend = FsBackend::system().unwrap();
//! ```
//!
//! VM discovery follows the libvirt/systemd layout:
//! `machine.slice/machine-qemu\x2dN\x2dNAME.scope`, with vCPU sub-groups
//! either under `…scope/libvirt/vcpuJ` (modern libvirt) or directly under
//! `…scope/vcpuJ`.
//!
//! The guaranteed virtual frequency `F_v` of each VM is not stored in the
//! kernel; provide it with [`FsBackend::with_vfreq_table`] (in production
//! this would come from the IaaS control plane's template database).

use crate::backend::{HostBackend, TopologyInfo, VmCgroupInfo};
use crate::error::{CgroupError, Result};
use crate::model::CpuMax;
use crate::parse;
use crate::tree::kvm_layout;
use crate::v1;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::RwLock;
use vfc_simcore::{CpuId, MHz, Micros, Tid, VcpuId, VmId};

/// One discovered VM scope.
#[derive(Debug, Clone)]
struct DiscoveredVm {
    /// libvirt machine number (ordering key).
    number: u32,
    name: String,
    /// The `machine-qemu…scope` directory itself.
    scope_dir: PathBuf,
    /// Per-vCPU read/write plans, indexed by vCPU id.
    vcpus: Vec<VcpuPlan>,
}

/// Precomputed paths of every file the control loop touches for one
/// vCPU, joined once at discovery. The per-period reads and the
/// `cpu.max` write then run straight off these — no `PathBuf::join`
/// (and no allocation) per sample. The members are hierarchy-version
/// specific: the plan is built for the version the backend speaks.
#[derive(Debug, Clone)]
struct VcpuPlan {
    /// v2: `cpu.stat` (usage + throttled); v1: `cpuacct.usage`.
    usage: PathBuf,
    /// v2: `cpu.stat` (same file as `usage`); v1: the v1-flavored
    /// `cpu.stat` with `throttled_time`.
    throttled: PathBuf,
    /// v2: `cgroup.threads`; v1: `tasks`.
    threads: PathBuf,
    /// v2: `cpu.max`; v1: `cpu.cfs_quota_us`.
    max: PathBuf,
    /// v1 only: `cpu.cfs_period_us` (unused placeholder on v2).
    period: PathBuf,
}

impl VcpuPlan {
    fn new(dir: PathBuf, version: CgroupVersion) -> Self {
        match version {
            CgroupVersion::V2 => VcpuPlan {
                usage: dir.join("cpu.stat"),
                throttled: dir.join("cpu.stat"),
                threads: dir.join("cgroup.threads"),
                max: dir.join("cpu.max"),
                period: dir.join("cpu.max"),
            },
            CgroupVersion::V1 => VcpuPlan {
                usage: dir.join("cpuacct.usage"),
                throttled: dir.join("cpu.stat"),
                threads: dir.join("tasks"),
                max: dir.join("cpu.cfs_quota_us"),
                period: dir.join("cpu.cfs_period_us"),
            },
        }
    }
}

/// Which cgroup hierarchy version the backend speaks. §III.B of the
/// paper: the controller works on both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgroupVersion {
    /// Unified hierarchy: `cpu.max`, `cpu.stat`, `cgroup.threads`.
    V2,
    /// Legacy hierarchy: `cpu.cfs_quota_us`/`cpu.cfs_period_us`,
    /// `cpuacct.usage`, `tasks`.
    V1,
}

/// [`HostBackend`] over a real (or fixture) filesystem tree.
pub struct FsBackend {
    cgroup_root: PathBuf,
    proc_root: PathBuf,
    cpu_root: PathBuf,
    version: CgroupVersion,
    vfreq: HashMap<String, MHz>,
    /// Discovery cache, refreshed by [`HostBackend::vms`]. Behind a
    /// lock (not a `RefCell`) so the backend is `Sync`: the sharded
    /// controller reads several shards' vCPUs concurrently through a
    /// shared `&FsBackend`.
    cache: RwLock<Vec<DiscoveredVm>>,
    /// Per-read-pass memo of `scaling_cur_freq` by CPU, cleared by
    /// [`HostBackend::begin_read_pass`]: vCPUs packed on one core cost
    /// one sysfs read per pass instead of one each.
    freq_memo: RwLock<HashMap<u32, MHz>>,
}

impl FsBackend {
    /// Backend over explicit roots (fixture trees, containers, tests),
    /// auto-detecting the hierarchy version from the tree's shape.
    pub fn new(
        cgroup_root: impl Into<PathBuf>,
        proc_root: impl Into<PathBuf>,
        cpu_root: impl Into<PathBuf>,
    ) -> Self {
        let cgroup_root = cgroup_root.into();
        let version = Self::detect_version(&cgroup_root);
        FsBackend {
            cgroup_root,
            proc_root: proc_root.into(),
            cpu_root: cpu_root.into(),
            version,
            vfreq: HashMap::new(),
            cache: RwLock::new(Vec::new()),
            freq_memo: RwLock::new(HashMap::new()),
        }
    }

    /// Force a hierarchy version instead of auto-detection.
    pub fn with_version(mut self, version: CgroupVersion) -> Self {
        self.version = version;
        self
    }

    /// Hierarchy version in use.
    pub fn version(&self) -> CgroupVersion {
        self.version
    }

    /// A unified mount has `cgroup.controllers` at its root; anything
    /// else is treated as a v1 `cpu,cpuacct` hierarchy.
    fn detect_version(cgroup_root: &Path) -> CgroupVersion {
        if cgroup_root.join("cgroup.controllers").exists() {
            CgroupVersion::V2
        } else {
            CgroupVersion::V1
        }
    }

    /// Backend over the real system paths. Errors if `/sys/fs/cgroup` is
    /// neither a v2 mount nor a v1 `cpu,cpuacct` hierarchy.
    pub fn system() -> Result<Self> {
        let root = Path::new("/sys/fs/cgroup");
        if root.join("cgroup.controllers").exists() {
            return Ok(FsBackend::new(root, "/proc", "/sys/devices/system/cpu"));
        }
        for legacy in ["cpu,cpuacct", "cpu"] {
            let candidate = root.join(legacy);
            if candidate.is_dir() {
                return Ok(
                    FsBackend::new(candidate, "/proc", "/sys/devices/system/cpu")
                        .with_version(CgroupVersion::V1),
                );
            }
        }
        Err(CgroupError::Invalid(
            "/sys/fs/cgroup is neither a cgroup-v2 mount nor a v1 cpu hierarchy".into(),
        ))
    }

    /// Provide the guaranteed virtual frequency for VMs by name.
    pub fn with_vfreq_table(mut self, table: HashMap<String, MHz>) -> Self {
        self.vfreq = table;
        self
    }

    /// Set/replace a single VM's guaranteed frequency.
    pub fn set_vfreq(&mut self, vm_name: impl Into<String>, freq: MHz) {
        self.vfreq.insert(vm_name.into(), freq);
    }

    fn read(&self, path: &Path) -> Result<String> {
        fs::read_to_string(path).map_err(|e| CgroupError::io(path.display().to_string(), e))
    }

    fn write(&self, path: &Path, content: &str) -> Result<()> {
        fs::write(path, content).map_err(|e| CgroupError::io(path.display().to_string(), e))
    }

    /// Scan `machine.slice` for VM scopes; returns them sorted by machine
    /// number so `VmId`s are stable across rescans while the VM set is
    /// unchanged.
    fn discover(&self) -> Result<Vec<DiscoveredVm>> {
        let slice = self.cgroup_root.join(kvm_layout::MACHINE_SLICE);
        let mut vms = Vec::new();
        let entries = match fs::read_dir(&slice) {
            Ok(e) => e,
            // No machine.slice yet: no VMs, not an error.
            Err(_) => return Ok(vms),
        };
        for entry in entries {
            let entry = entry.map_err(|e| CgroupError::io(slice.display().to_string(), e))?;
            let dir_name = entry.file_name().to_string_lossy().into_owned();
            let Some((number, name)) = kvm_layout::parse_scope_name(&dir_name) else {
                continue;
            };
            let scope = entry.path();
            // vCPU groups live under scope/libvirt/ (modern libvirt) or
            // directly under scope/.
            let vcpu_parent = if scope.join("libvirt").is_dir() {
                scope.join("libvirt")
            } else {
                scope.clone()
            };
            let mut vcpus: Vec<(u32, PathBuf)> = Vec::new();
            let children = fs::read_dir(&vcpu_parent)
                .map_err(|e| CgroupError::io(vcpu_parent.display().to_string(), e))?;
            for c in children {
                let c = c.map_err(|e| CgroupError::io(vcpu_parent.display().to_string(), e))?;
                let cname = c.file_name().to_string_lossy().into_owned();
                if let Some(j) = kvm_layout::parse_vcpu_dir(&cname) {
                    if c.path().is_dir() {
                        vcpus.push((j, c.path()));
                    }
                }
            }
            vcpus.sort_by_key(|(j, _)| *j);
            vms.push(DiscoveredVm {
                number,
                name,
                scope_dir: scope.clone(),
                vcpus: vcpus
                    .into_iter()
                    .map(|(_, p)| VcpuPlan::new(p, self.version))
                    .collect(),
            });
        }
        vms.sort_by_key(|v| v.number);
        Ok(vms)
    }

    /// Path of a VM's scope directory from the cache, refreshing once on
    /// miss.
    fn scope_dir(&self, vm: VmId) -> Result<PathBuf> {
        let lookup = |cache: &[DiscoveredVm]| -> Option<PathBuf> {
            cache.get(vm.as_usize()).map(|v| v.scope_dir.clone())
        };
        if let Some(p) = lookup(&self.cache.read().unwrap()) {
            return Ok(p);
        }
        let fresh = self.discover()?;
        *self.cache.write().unwrap() = fresh;
        lookup(&self.cache.read().unwrap()).ok_or(CgroupError::NoSuchVcpu {
            vm: vm.as_u32(),
            vcpu: 0,
        })
    }

    /// Run `f` against a vCPU's precomputed path plan, refreshing the
    /// discovery cache once on miss. The closure executes holding the
    /// cache's read lock, so it must not re-enter cache-mutating paths —
    /// the file reads and writes it performs never do.
    fn with_vcpu_plan<T>(
        &self,
        vm: VmId,
        vcpu: VcpuId,
        f: impl FnOnce(&VcpuPlan) -> Result<T>,
    ) -> Result<T> {
        {
            let cache = self.cache.read().unwrap();
            if let Some(plan) = cache
                .get(vm.as_usize())
                .and_then(|v| v.vcpus.get(vcpu.as_usize()))
            {
                return f(plan);
            }
        }
        let fresh = self.discover()?;
        *self.cache.write().unwrap() = fresh;
        let cache = self.cache.read().unwrap();
        match cache
            .get(vm.as_usize())
            .and_then(|v| v.vcpus.get(vcpu.as_usize()))
        {
            Some(plan) => f(plan),
            None => Err(CgroupError::NoSuchVcpu {
                vm: vm.as_u32(),
                vcpu: vcpu.as_u32(),
            }),
        }
    }
}

impl HostBackend for FsBackend {
    fn topology(&self) -> TopologyInfo {
        // Count cpuN directories and read cpu0's hardware max frequency.
        let mut nr_cpus = 0u32;
        if let Ok(entries) = fs::read_dir(&self.cpu_root) {
            for e in entries.flatten() {
                let name = e.file_name().to_string_lossy().into_owned();
                if let Some(idx) = name.strip_prefix("cpu") {
                    if idx.chars().all(|c| c.is_ascii_digit()) && !idx.is_empty() {
                        nr_cpus += 1;
                    }
                }
            }
        }
        let max_path = self.cpu_root.join("cpu0/cpufreq/cpuinfo_max_freq");
        let max_mhz = self
            .read(&max_path)
            .ok()
            .and_then(|s| parse::parse_scaling_cur_freq(&s).ok())
            .unwrap_or(MHz::ZERO);
        TopologyInfo { nr_cpus, max_mhz }
    }

    fn vms(&self) -> Vec<VmCgroupInfo> {
        let discovered = self.discover().unwrap_or_default();
        let infos = discovered
            .iter()
            .enumerate()
            .map(|(i, v)| VmCgroupInfo {
                vm: VmId::new(i as u32),
                name: v.name.clone(),
                nr_vcpus: v.vcpus.len() as u32,
                vfreq: self.vfreq.get(&v.name).copied(),
            })
            .collect();
        *self.cache.write().unwrap() = discovered;
        infos
    }

    fn vcpu_usage(&self, vm: VmId, vcpu: VcpuId) -> Result<Micros> {
        self.with_vcpu_plan(vm, vcpu, |plan| match self.version {
            CgroupVersion::V2 => {
                let stat = parse::parse_cpu_stat(&self.read(&plan.usage)?)?;
                Ok(stat.usage_usec)
            }
            CgroupVersion::V1 => v1::parse_cpuacct_usage(&self.read(&plan.usage)?),
        })
    }

    fn vcpu_throttled(&self, vm: VmId, vcpu: VcpuId) -> Result<Micros> {
        self.with_vcpu_plan(vm, vcpu, |plan| match self.version {
            CgroupVersion::V2 => {
                let stat = parse::parse_cpu_stat(&self.read(&plan.throttled)?)?;
                Ok(stat.throttled_usec)
            }
            CgroupVersion::V1 => {
                // v1 reports `throttled_time` in ns inside its own
                // cpu.stat; tolerate its absence (bandwidth control may
                // be compiled out).
                match self.read(&plan.throttled) {
                    Ok(content) => {
                        let (_, _, throttled) = v1::parse_v1_cpu_stat(&content)?;
                        Ok(throttled)
                    }
                    Err(_) => Ok(Micros::ZERO),
                }
            }
        })
    }

    fn vcpu_threads(&self, vm: VmId, vcpu: VcpuId) -> Result<Vec<Tid>> {
        self.with_vcpu_plan(vm, vcpu, |plan| match self.version {
            CgroupVersion::V2 => parse::parse_threads(&self.read(&plan.threads)?),
            CgroupVersion::V1 => v1::parse_tasks(&self.read(&plan.threads)?),
        })
    }

    fn thread_last_cpu(&self, tid: Tid) -> Result<CpuId> {
        let path = self.proc_root.join(tid.as_u32().to_string()).join("stat");
        parse::parse_stat_last_cpu(&self.read(&path)?)
    }

    fn cpu_cur_freq(&self, cpu: CpuId) -> Result<MHz> {
        let path = self
            .cpu_root
            .join(format!("cpu{}", cpu.as_u32()))
            .join("cpufreq/scaling_cur_freq");
        parse::parse_scaling_cur_freq(&self.read(&path)?)
    }

    fn begin_read_pass(&self) {
        self.freq_memo.write().unwrap().clear();
    }

    /// Fused monitoring read: on v2 one `cpu.stat` parse yields both
    /// `usage_usec` and `throttled_usec` (the default trait path parses
    /// the same file twice), and `scaling_cur_freq` is memoised per CPU
    /// for the duration of the read pass. Error order matches the
    /// default exactly: usage source first, then throttled, threads,
    /// `/proc` stat, frequency.
    fn read_vcpu_raw(&self, vm: VmId, vcpu: VcpuId) -> Result<crate::backend::VcpuRawSample> {
        let (usage, throttled, tid) = self.with_vcpu_plan(vm, vcpu, |plan| match self.version {
            CgroupVersion::V2 => {
                let stat = parse::parse_cpu_stat(&self.read(&plan.usage)?)?;
                let tid = parse::parse_threads(&self.read(&plan.threads)?)?
                    .first()
                    .copied();
                Ok((stat.usage_usec, stat.throttled_usec, tid))
            }
            CgroupVersion::V1 => {
                let usage = v1::parse_cpuacct_usage(&self.read(&plan.usage)?)?;
                let throttled = match self.read(&plan.throttled) {
                    Ok(content) => v1::parse_v1_cpu_stat(&content)?.2,
                    Err(_) => Micros::ZERO,
                };
                let tid = v1::parse_tasks(&self.read(&plan.threads)?)?
                    .first()
                    .copied();
                Ok((usage, throttled, tid))
            }
        })?;
        let last_cpu = match tid {
            Some(tid) => self.thread_last_cpu(tid)?,
            None => CpuId::new(0),
        };
        let core_freq = {
            let memo = self.freq_memo.read().unwrap();
            memo.get(&last_cpu.as_u32()).copied()
        };
        let core_freq = match core_freq {
            Some(f) => f,
            None => {
                let f = self.cpu_cur_freq(last_cpu)?;
                self.freq_memo.write().unwrap().insert(last_cpu.as_u32(), f);
                f
            }
        };
        Ok(crate::backend::VcpuRawSample {
            usage,
            throttled,
            last_cpu,
            core_freq,
        })
    }

    fn set_vcpu_max(&mut self, vm: VmId, vcpu: VcpuId, max: CpuMax) -> Result<()> {
        self.with_vcpu_plan(vm, vcpu, |plan| match self.version {
            CgroupVersion::V2 => self.write(&plan.max, &parse::format_cpu_max(&max)),
            CgroupVersion::V1 => {
                // Period first: the kernel rejects quotas larger than the
                // current period.
                self.write(&plan.period, &v1::format_cfs_period(&max))?;
                self.write(&plan.max, &v1::format_cfs_quota(&max))
            }
        })
    }

    fn vcpu_max(&self, vm: VmId, vcpu: VcpuId) -> Result<CpuMax> {
        self.with_vcpu_plan(vm, vcpu, |plan| match self.version {
            CgroupVersion::V2 => parse::parse_cpu_max(&self.read(&plan.max)?),
            CgroupVersion::V1 => {
                v1::parse_cfs_quota(&self.read(&plan.max)?, &self.read(&plan.period)?)
            }
        })
    }

    fn set_vm_weight(&mut self, vm: VmId, weight: u32) -> Result<()> {
        let dir = self.scope_dir(vm)?;
        let weight = crate::backend::clamp_cpu_weight(weight);
        match self.version {
            CgroupVersion::V2 => self.write(&dir.join("cpu.weight"), &format!("{weight}\n")),
            // v1 `cpu.shares` uses 2–262144 with default 1024; convert
            // from the v2 scale (default 100).
            CgroupVersion::V1 => {
                let shares = (weight as u64 * 1_024 / 100).clamp(2, 262_144);
                self.write(&dir.join("cpu.shares"), &format!("{shares}\n"))
            }
        }
    }

    fn vm_weight(&self, vm: VmId) -> Result<u32> {
        let dir = self.scope_dir(vm)?;
        match self.version {
            CgroupVersion::V2 => {
                let content = self.read(&dir.join("cpu.weight"))?;
                content
                    .trim()
                    .parse()
                    .map_err(|_| CgroupError::parse("cpu.weight", &content))
            }
            CgroupVersion::V1 => {
                let content = self.read(&dir.join("cpu.shares"))?;
                let shares: u64 = content
                    .trim()
                    .parse()
                    .map_err(|_| CgroupError::parse("cpu.shares", &content))?;
                Ok(crate::backend::clamp_cpu_weight(
                    (shares * 100 / 1_024) as u32,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::FixtureTree;

    #[test]
    fn discovers_vms_and_reads_state() {
        let fx = FixtureTree::builder()
            .cpus(4, MHz(2400))
            .vm("small0", 2, &[101, 102])
            .vm("large0", 1, &[201])
            .build();
        let backend = fx.backend();

        let topo = backend.topology();
        assert_eq!(topo.nr_cpus, 4);
        assert_eq!(topo.max_mhz, MHz(2400));

        let vms = backend.vms();
        assert_eq!(vms.len(), 2);
        assert_eq!(vms[0].name, "small0");
        assert_eq!(vms[0].nr_vcpus, 2);
        assert_eq!(vms[1].name, "large0");

        // Fresh groups: zero usage, unlimited cpu.max, one thread each.
        let u = backend.vcpu_usage(vms[0].vm, VcpuId::new(0)).unwrap();
        assert_eq!(u, Micros::ZERO);
        let threads = backend.vcpu_threads(vms[0].vm, VcpuId::new(1)).unwrap();
        assert_eq!(threads, vec![Tid::new(102)]);
        assert!(backend
            .vcpu_max(vms[0].vm, VcpuId::new(0))
            .unwrap()
            .is_unlimited());
    }

    #[test]
    fn writes_cpu_max_and_reads_back() {
        let fx = FixtureTree::builder()
            .cpus(2, MHz(2000))
            .vm("a", 1, &[11])
            .build();
        let mut backend = fx.backend();
        let vm = backend.vms()[0].vm;
        let cap = CpuMax::with_period(Micros(25_000), Micros(100_000));
        backend.set_vcpu_max(vm, VcpuId::new(0), cap).unwrap();
        assert_eq!(backend.vcpu_max(vm, VcpuId::new(0)).unwrap(), cap);
        backend.clear_vcpu_max(vm, VcpuId::new(0)).unwrap();
        assert!(backend.vcpu_max(vm, VcpuId::new(0)).unwrap().is_unlimited());
    }

    #[test]
    fn thread_placement_and_core_freq() {
        let fx = FixtureTree::builder()
            .cpus(2, MHz(2400))
            .vm("a", 1, &[11])
            .build();
        fx.set_thread_cpu(Tid::new(11), CpuId::new(1));
        fx.set_cpu_freq(CpuId::new(1), MHz(1800));
        let backend = fx.backend();
        assert_eq!(
            backend.thread_last_cpu(Tid::new(11)).unwrap(),
            CpuId::new(1)
        );
        assert_eq!(backend.cpu_cur_freq(CpuId::new(1)).unwrap(), MHz(1800));
    }

    #[test]
    fn usage_updates_are_visible() {
        let fx = FixtureTree::builder()
            .cpus(1, MHz(2400))
            .vm("a", 1, &[11])
            .build();
        let backend = fx.backend();
        let vm = backend.vms()[0].vm;
        fx.add_vcpu_usage("a", 0, Micros(123_456));
        assert_eq!(
            backend.vcpu_usage(vm, VcpuId::new(0)).unwrap(),
            Micros(123_456)
        );
        fx.add_vcpu_usage("a", 0, Micros(1_000));
        assert_eq!(
            backend.vcpu_usage(vm, VcpuId::new(0)).unwrap(),
            Micros(124_456)
        );
    }

    #[test]
    fn vfreq_table_is_surfaced() {
        let fx = FixtureTree::builder()
            .cpus(1, MHz(2400))
            .vm("web", 1, &[11])
            .build();
        let mut backend = fx.backend();
        backend.set_vfreq("web", MHz(500));
        let vms = backend.vms();
        assert_eq!(vms[0].vfreq, Some(MHz(500)));
    }

    #[test]
    fn unknown_vcpu_errors() {
        let fx = FixtureTree::builder()
            .cpus(1, MHz(2400))
            .vm("a", 1, &[11])
            .build();
        let backend = fx.backend();
        let vm = backend.vms()[0].vm;
        assert!(backend.vcpu_usage(vm, VcpuId::new(5)).is_err());
        assert!(backend.vcpu_usage(VmId::new(9), VcpuId::new(0)).is_err());
    }

    #[test]
    fn empty_tree_has_no_vms() {
        let fx = FixtureTree::builder().cpus(1, MHz(1000)).build();
        let backend = fx.backend();
        assert!(backend.vms().is_empty());
    }

    #[test]
    fn version_is_autodetected() {
        let v2 = FixtureTree::builder().cpus(1, MHz(1000)).build();
        assert_eq!(v2.backend().version(), CgroupVersion::V2);
        let v1 = FixtureTree::builder().cpus(1, MHz(1000)).v1().build();
        assert_eq!(v1.backend().version(), CgroupVersion::V1);
    }

    #[test]
    fn throttled_counter_is_readable_on_both_versions() {
        for v1 in [false, true] {
            let b = FixtureTree::builder().cpus(1, MHz(2400)).vm("t", 1, &[5]);
            let fx = if v1 { b.v1().build() } else { b.build() };
            let backend = fx.backend();
            let vm = backend.vms()[0].vm;
            assert_eq!(
                backend.vcpu_throttled(vm, VcpuId::new(0)).unwrap(),
                Micros::ZERO
            );
            fx.add_vcpu_throttled("t", 0, Micros(12_345));
            assert_eq!(
                backend.vcpu_throttled(vm, VcpuId::new(0)).unwrap(),
                Micros(12_345),
                "version v1={v1}"
            );
        }
    }

    #[test]
    fn v1_tree_reads_and_writes() {
        let fx = FixtureTree::builder()
            .cpus(2, MHz(2400))
            .vm("legacy", 2, &[41, 42])
            .v1()
            .build();
        let mut backend = fx.backend();
        let vms = backend.vms();
        assert_eq!(vms.len(), 1);
        assert_eq!(vms[0].nr_vcpus, 2);

        // Usage via cpuacct.usage (nanoseconds on disk).
        fx.add_vcpu_usage("legacy", 0, Micros(123_456));
        assert_eq!(
            backend.vcpu_usage(vms[0].vm, VcpuId::new(0)).unwrap(),
            Micros(123_456)
        );

        // Threads via `tasks`.
        assert_eq!(
            backend.vcpu_threads(vms[0].vm, VcpuId::new(1)).unwrap(),
            vec![Tid::new(42)]
        );

        // Quota via cfs_quota_us / cfs_period_us.
        assert!(backend
            .vcpu_max(vms[0].vm, VcpuId::new(0))
            .unwrap()
            .is_unlimited());
        let cap = CpuMax::with_period(Micros(20_833), Micros(100_000));
        backend
            .set_vcpu_max(vms[0].vm, VcpuId::new(0), cap)
            .unwrap();
        assert_eq!(backend.vcpu_max(vms[0].vm, VcpuId::new(0)).unwrap(), cap);
        assert_eq!(fx.vcpu_cpu_max("legacy", 0), cap);
        backend.clear_vcpu_max(vms[0].vm, VcpuId::new(0)).unwrap();
        assert!(fx.vcpu_cpu_max("legacy", 0).is_unlimited());
    }
}
