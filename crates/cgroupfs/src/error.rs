//! Error type shared by all cgroup backends.

use std::fmt;
use std::io;

/// Errors surfaced by cgroup parsing and backends.
#[derive(Debug)]
pub enum CgroupError {
    /// A kernel interface file did not match its documented format.
    Parse {
        /// Which kernel file format failed to parse.
        what: &'static str,
        /// The offending content (truncated to 256 bytes).
        content: String,
    },
    /// A cgroup path does not exist in the hierarchy.
    NoSuchGroup(String),
    /// The requested VM or vCPU is unknown to the backend.
    NoSuchVcpu {
        /// Raw VM id.
        vm: u32,
        /// Raw vCPU index.
        vcpu: u32,
    },
    /// Underlying filesystem error (real-FS backend).
    Io {
        /// Path of the file that failed.
        path: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// An operation that is invalid for the hierarchy state, e.g. removing
    /// a cgroup that still has children.
    Invalid(String),
}

impl fmt::Display for CgroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CgroupError::Parse { what, content } => {
                write!(f, "failed to parse {what}: {content:?}")
            }
            CgroupError::NoSuchGroup(path) => write!(f, "no such cgroup: {path}"),
            CgroupError::NoSuchVcpu { vm, vcpu } => {
                write!(f, "no such vCPU: vm{vm}/vcpu{vcpu}")
            }
            CgroupError::Io { path, source } => write!(f, "io error on {path}: {source}"),
            CgroupError::Invalid(msg) => write!(f, "invalid cgroup operation: {msg}"),
        }
    }
}

impl std::error::Error for CgroupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CgroupError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl CgroupError {
    /// Wrap an I/O error with the path that produced it.
    pub fn io(path: impl Into<String>, source: io::Error) -> Self {
        CgroupError::Io {
            path: path.into(),
            source,
        }
    }

    /// Build a parse error, truncating pathological content.
    pub fn parse(what: &'static str, content: &str) -> Self {
        let mut content = content.to_owned();
        content.truncate(256);
        CgroupError::Parse { what, content }
    }

    /// Is this error worth retrying on the next control period?
    ///
    /// Transient errors cover the failure modes a live kernel interface
    /// exhibits under load: torn reads that fail to parse, and the
    /// retriable `errno` family (`EINTR`, `EAGAIN`, `EBUSY`, timeouts).
    /// The controller's degradation ladder reacts to a transient error by
    /// skipping the sample (or reusing a recent one) and retrying the
    /// operation on the next iteration, instead of aborting the loop.
    pub fn is_transient(&self) -> bool {
        match self {
            // A torn/odd read of a kernel file: the next read usually works.
            CgroupError::Parse { .. } => true,
            CgroupError::Io { source, .. } => matches!(
                source.kind(),
                io::ErrorKind::Interrupted
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::ResourceBusy
                    | io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }

    /// Did the cgroup (and therefore the VM or vCPU) disappear?
    ///
    /// VMs shut down and migrate away between `vms()` enumeration and the
    /// per-vCPU reads that follow, so the controller treats these as the
    /// normal end of a VM's life: it drops the VM's wallet and cached
    /// samples instead of retrying.
    pub fn is_vanished(&self) -> bool {
        match self {
            CgroupError::NoSuchGroup(_) | CgroupError::NoSuchVcpu { .. } => true,
            CgroupError::Io { source, .. } => source.kind() == io::ErrorKind::NotFound,
            _ => false,
        }
    }
}

/// Result alias for cgroup operations.
pub type Result<T> = std::result::Result<T, CgroupError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CgroupError::parse("cpu.max", "garbage");
        assert!(e.to_string().contains("cpu.max"));
        let e = CgroupError::NoSuchGroup("/a/b".into());
        assert!(e.to_string().contains("/a/b"));
        let e = CgroupError::NoSuchVcpu { vm: 1, vcpu: 2 };
        assert!(e.to_string().contains("vm1/vcpu2"));
        let e = CgroupError::io("/tmp/x", io::Error::new(io::ErrorKind::NotFound, "nope"));
        assert!(e.to_string().contains("/tmp/x"));
        let e = CgroupError::Invalid("busy".into());
        assert!(e.to_string().contains("busy"));
    }

    #[test]
    fn parse_error_truncates() {
        let long = "x".repeat(10_000);
        if let CgroupError::Parse { content, .. } = CgroupError::parse("cpu.stat", &long) {
            assert!(content.len() <= 256);
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn io_source_is_chained() {
        use std::error::Error;
        let e = CgroupError::io("/p", io::Error::other("inner"));
        assert!(e.source().is_some());
    }

    #[test]
    fn taxonomy_transient() {
        assert!(CgroupError::parse("cpu.stat", "torn").is_transient());
        for kind in [
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::ResourceBusy,
            io::ErrorKind::TimedOut,
        ] {
            let e = CgroupError::io("/p", io::Error::new(kind, "again"));
            assert!(e.is_transient(), "{kind:?} should be transient");
            assert!(!e.is_vanished(), "{kind:?} is not a disappearance");
        }
        let denied = CgroupError::io(
            "/p",
            io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
        );
        assert!(!denied.is_transient());
    }

    #[test]
    fn taxonomy_vanished() {
        assert!(CgroupError::NoSuchGroup("/a".into()).is_vanished());
        assert!(CgroupError::NoSuchVcpu { vm: 1, vcpu: 0 }.is_vanished());
        let gone = CgroupError::io("/p", io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(gone.is_vanished());
        assert!(!gone.is_transient());
        assert!(!CgroupError::Invalid("x".into()).is_vanished());
        assert!(!CgroupError::parse("cpu.max", "junk").is_vanished());
    }
}
