//! Deterministic fault injection for any [`HostBackend`].
//!
//! Real hosts misbehave: `cpu.stat` reads race with cgroup removal, a VM
//! shuts down between the `vms()` enumeration and the per-vCPU reads that
//! follow, `cpu.max` writes bounce with `EBUSY` while the kernel is
//! reconfiguring a subtree, and `/proc` files occasionally yield torn or
//! empty content. [`FaultInjectingBackend`] wraps any backend — the
//! simulator or the real filesystem backend — and injects exactly these
//! failure modes, reproducibly, so the controller's degradation behaviour
//! can be tested like any other feature.
//!
//! Faults come from two sources, both described by a [`FaultPlan`]:
//!
//! * **random faults** — each operation class carries an independent
//!   probability; when a fault fires, its [`FaultKind`] is drawn uniformly
//!   from the plan's kind list. All draws come from a seeded
//!   [`SplitMix64`], so a given plan + call sequence replays bit-identically;
//! * **scripted faults** — precise "fail the next N `cpu.max` writes of
//!   vm2/vcpu0 with `EBUSY`" entries, matched before any dice are rolled.
//!
//! Whole-VM disappearance is modelled separately (see
//! [`FaultInjectingBackend::vanish_vm`]) because it is a *sequence* of
//! observations, not a single failing call: the stale `vms()` listing
//! still contains the VM, every subsequent per-VM operation fails with a
//! [vanished](crate::error::CgroupError::is_vanished) error, and later
//! listings no longer include it.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::io;

use crate::backend::{HostBackend, TopologyInfo, VmCgroupInfo};
use crate::error::{CgroupError, Result};
use crate::model::CpuMax;
use vfc_simcore::{CpuId, MHz, Micros, SplitMix64, Tid, VcpuId, VmId};

/// The backend operation classes a fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultOp {
    /// `vcpu_usage` — the `cpu.stat::usage_usec` read.
    VcpuUsage,
    /// `vcpu_throttled` — the `cpu.stat::throttled_usec` read.
    VcpuThrottled,
    /// `vcpu_threads` — the `cgroup.threads` read.
    VcpuThreads,
    /// `thread_last_cpu` — the `/proc/{tid}/stat` read.
    ThreadLastCpu,
    /// `cpu_cur_freq` — the `scaling_cur_freq` read.
    CpuCurFreq,
    /// `set_vcpu_max` — the `cpu.max` write (including `clear_vcpu_max`).
    SetVcpuMax,
    /// `vcpu_max` — the `cpu.max` read-back.
    VcpuMax,
    /// `set_vm_weight` — the `cpu.weight` write.
    SetVmWeight,
    /// `vm_weight` — the `cpu.weight` read-back.
    VmWeight,
}

impl FaultOp {
    /// Every operation class, in declaration order.
    pub const ALL: [FaultOp; 9] = [
        FaultOp::VcpuUsage,
        FaultOp::VcpuThrottled,
        FaultOp::VcpuThreads,
        FaultOp::ThreadLastCpu,
        FaultOp::CpuCurFreq,
        FaultOp::SetVcpuMax,
        FaultOp::VcpuMax,
        FaultOp::SetVmWeight,
        FaultOp::VmWeight,
    ];

    /// The monitoring reads the control loop performs every period.
    pub const READS: [FaultOp; 5] = [
        FaultOp::VcpuUsage,
        FaultOp::VcpuThrottled,
        FaultOp::VcpuThreads,
        FaultOp::ThreadLastCpu,
        FaultOp::CpuCurFreq,
    ];

    /// Is this a state-changing write?
    pub fn is_write(self) -> bool {
        matches!(self, FaultOp::SetVcpuMax | FaultOp::SetVmWeight)
    }
}

/// What goes wrong when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation returns [`CgroupError::Io`] with the given kind
    /// (e.g. `ResourceBusy` for `EBUSY`, `Interrupted` for `EINTR`).
    Io(io::ErrorKind),
    /// A torn read: the operation returns [`CgroupError::Parse`], as if
    /// the kernel file held garbage. Writes treat this as `EBUSY`.
    Torn,
    /// A stale read: the operation succeeds but returns the *previous*
    /// successful value (or zero/empty if there is none), as if the page
    /// cache served outdated content. Writes treat this as `EBUSY`.
    Stale,
    /// A zero read: the operation succeeds but returns zero/empty, as if
    /// the counter had been reset. Writes treat this as `EBUSY`.
    Zero,
}

impl FaultKind {
    /// The transient kinds a loaded production host actually exhibits;
    /// the default palette for [`FaultPlan::random`].
    pub const TRANSIENT: [FaultKind; 5] = [
        FaultKind::Io(io::ErrorKind::Interrupted),
        FaultKind::Io(io::ErrorKind::ResourceBusy),
        FaultKind::Torn,
        FaultKind::Stale,
        FaultKind::Zero,
    ];
}

/// A scripted fault: fail the next `remaining` matching operations.
#[derive(Debug, Clone)]
struct ScriptedFault {
    op: FaultOp,
    vm: Option<VmId>,
    vcpu: Option<VcpuId>,
    kind: FaultKind,
    remaining: u32,
}

/// Declarative description of which faults to inject.
///
/// A plan combines per-operation probabilities (for chaos testing) with a
/// scripted schedule (for precise degradation tests). Scripted entries
/// always win over the dice.
///
/// The knobs, all builder-style and all optional (the default plan is
/// [`FaultPlan::none`], a transparent pass-through):
///
/// | knob | default | effect |
/// |---|---|---|
/// | [`with_rate`](FaultPlan::with_rate) (or [`random`](FaultPlan::random) for all ops) | 0.0 | independent per-call fault probability for one [`FaultOp`] class, clamped to `[0, 1]` |
/// | [`with_kinds`](FaultPlan::with_kinds) | [`FaultKind::TRANSIENT`] | the palette random faults draw from, uniformly |
/// | [`with_vanish_rate`](FaultPlan::with_vanish_rate) | 0.0 | per-`vms()`-call probability that one listed VM disappears (stale-listing semantics) |
/// | [`with_target_vm`](FaultPlan::with_target_vm) | any VM | confine random faults + vanishes to one victim so bystanders stay provably clean |
/// | [`script`](FaultPlan::script) | empty | "fail the next N matching ops with kind K" entries, matched before any dice roll |
///
/// ```
/// use vfc_cgroupfs::fault::{FaultKind, FaultOp, FaultPlan};
/// use std::io;
///
/// // 1 % chaos on every monitoring read, plus exactly three EBUSY
/// // bounces on the first cpu.max writes — replayable under any seed.
/// let mut plan = FaultPlan::none().with_vanish_rate(0.001);
/// for op in FaultOp::READS {
///     plan = plan.with_rate(op, 0.01);
/// }
/// let plan = plan.script(
///     FaultOp::SetVcpuMax,
///     None,
///     None,
///     FaultKind::Io(io::ErrorKind::ResourceBusy),
///     3,
/// );
/// # let _ = plan;
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Per-operation-class fault probability; absent class = never.
    rates: HashMap<FaultOp, f64>,
    /// Kind palette for random faults; empty = [`FaultKind::TRANSIENT`].
    kinds: Vec<FaultKind>,
    /// Scripted entries, consumed in insertion order before any dice.
    script: Vec<ScriptedFault>,
    /// Per-`vms()`-call probability of one whole-VM disappearance.
    vanish_rate: f64,
    /// When set, random faults and vanishes only hit this VM.
    target_vm: Option<VmId>,
}

impl FaultPlan {
    /// A plan that injects nothing; the decorator becomes a transparent
    /// pass-through.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fault every operation class with probability `rate`, drawing kinds
    /// uniformly from [`FaultKind::TRANSIENT`].
    pub fn random(rate: f64) -> Self {
        let mut plan = FaultPlan::default();
        for op in FaultOp::ALL {
            plan.rates.insert(op, rate);
        }
        plan
    }

    /// Override the fault probability of one operation class.
    pub fn with_rate(mut self, op: FaultOp, rate: f64) -> Self {
        self.rates.insert(op, rate.clamp(0.0, 1.0));
        self
    }

    /// Replace the palette of kinds random faults are drawn from.
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// Each `vms()` call makes a uniformly chosen listed VM vanish with
    /// this probability (see [`FaultInjectingBackend::vanish_vm`]).
    pub fn with_vanish_rate(mut self, rate: f64) -> Self {
        self.vanish_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Confine *random* faults to operations attributable to one VM:
    /// other VMs never fault, and the host-global reads that cannot be
    /// attributed to a VM (`thread_last_cpu`, `cpu_cur_freq`) are spared
    /// too. Random vanishes only ever claim the target. Scripted entries
    /// keep their own filters and are unaffected.
    ///
    /// This is what lets a chaos test assert invariants about the
    /// *fault-free* VMs: with a target, every other VM's samples are
    /// trustworthy by construction.
    pub fn with_target_vm(mut self, vm: VmId) -> Self {
        self.target_vm = Some(vm);
        self
    }

    /// Script a fault: the next `times` operations matching `op` (and the
    /// `vm`/`vcpu` filters, when given) fail with `kind`. Entries are
    /// consumed in insertion order.
    pub fn script(
        mut self,
        op: FaultOp,
        vm: Option<VmId>,
        vcpu: Option<VcpuId>,
        kind: FaultKind,
        times: u32,
    ) -> Self {
        self.script.push(ScriptedFault {
            op,
            vm,
            vcpu,
            kind,
            remaining: times,
        });
        self
    }

    fn rate(&self, op: FaultOp) -> f64 {
        self.rates.get(&op).copied().unwrap_or(0.0)
    }

    fn kinds(&self) -> &[FaultKind] {
        if self.kinds.is_empty() {
            &FaultKind::TRANSIENT
        } else {
            &self.kinds
        }
    }
}

/// Counters of injected faults, for assertions and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Monitoring reads that returned an injected `Err`.
    pub read_errors: u64,
    /// Writes that returned an injected `Err`.
    pub write_errors: u64,
    /// Reads answered with a stale (previous) value.
    pub stale_reads: u64,
    /// Reads answered with zero/empty content.
    pub zero_reads: u64,
    /// VMs made to vanish (scripted or random).
    pub vanished_vms: u64,
}

impl FaultStats {
    /// Total number of operations that were tampered with.
    pub fn total(&self) -> u64 {
        self.read_errors + self.write_errors + self.stale_reads + self.zero_reads
    }
}

/// Interior-mutable state: monitoring methods take `&self`, but fault
/// decisions consume RNG state and update caches/stats.
#[derive(Debug)]
struct FaultState {
    rng: SplitMix64,
    script: Vec<ScriptedFault>,
    /// VMs that will appear in one more `vms()` listing and then vanish.
    vanishing: BTreeSet<VmId>,
    /// VMs that are gone: absent from listings, per-VM operations fail.
    vanished: BTreeSet<VmId>,
    stats: FaultStats,
    last_usage: HashMap<(VmId, VcpuId), Micros>,
    last_throttled: HashMap<(VmId, VcpuId), Micros>,
    last_freq: HashMap<CpuId, MHz>,
    armed: bool,
}

/// A [`HostBackend`] decorator that injects deterministic faults per the
/// configured [`FaultPlan`]. See the [module docs](self) for the model.
#[derive(Debug)]
pub struct FaultInjectingBackend<B: HostBackend> {
    inner: B,
    plan: FaultPlan,
    state: RefCell<FaultState>,
}

impl<B: HostBackend> FaultInjectingBackend<B> {
    /// Wrap `inner`, drawing all randomness from SplitMix64 seeded with
    /// `seed` — identical plans, seeds and call sequences replay
    /// identically.
    pub fn new(inner: B, plan: FaultPlan, seed: u64) -> Self {
        let script = plan.script.clone();
        FaultInjectingBackend {
            inner,
            plan,
            state: RefCell::new(FaultState {
                rng: SplitMix64::new(seed),
                script,
                vanishing: BTreeSet::new(),
                vanished: BTreeSet::new(),
                stats: FaultStats::default(),
                last_usage: HashMap::new(),
                last_throttled: HashMap::new(),
                last_freq: HashMap::new(),
                armed: true,
            }),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The wrapped backend, mutably (e.g. to advance a simulator).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwrap, discarding the fault layer.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Stop injecting: every subsequent operation passes straight
    /// through. Vanished VMs stay vanished — a disappeared VM does not
    /// come back just because the fault storm ended.
    pub fn disarm(&self) {
        self.state.borrow_mut().armed = false;
    }

    /// Resume injecting after [`disarm`](Self::disarm).
    pub fn arm(&self) {
        self.state.borrow_mut().armed = true;
    }

    /// Counters of everything injected so far.
    pub fn stats(&self) -> FaultStats {
        self.state.borrow().stats
    }

    /// Script the disappearance of `vm` with stale-listing semantics:
    /// the *next* `vms()` call still reports it (the enumeration raced
    /// the shutdown), every per-VM operation already fails with a
    /// [vanished](CgroupError::is_vanished) error, and listings after
    /// that omit it.
    pub fn vanish_vm(&self, vm: VmId) {
        let mut st = self.state.borrow_mut();
        st.vanishing.insert(vm);
        st.stats.vanished_vms += 1;
    }

    /// Append a scripted fault at runtime: the next `times` operations
    /// matching `op` (and the optional `vm`/`vcpu` filters) fail with
    /// `kind`. Same semantics as [`FaultPlan::script`], but usable
    /// mid-test to stage faults relative to the current state.
    pub fn script_fault(
        &self,
        op: FaultOp,
        vm: Option<VmId>,
        vcpu: Option<VcpuId>,
        kind: FaultKind,
        times: u32,
    ) {
        if times == 0 {
            return;
        }
        self.state.borrow_mut().script.push(ScriptedFault {
            op,
            vm,
            vcpu,
            kind,
            remaining: times,
        });
    }

    /// Undo a [`vanish_vm`](Self::vanish_vm): the VM is listed and
    /// reachable again (it never actually left the inner backend).
    pub fn restore_vm(&self, vm: VmId) {
        let mut st = self.state.borrow_mut();
        st.vanishing.remove(&vm);
        st.vanished.remove(&vm);
    }

    /// Is `vm` currently hidden by the fault layer?
    pub fn is_vanished(&self, vm: VmId) -> bool {
        let st = self.state.borrow();
        st.vanished.contains(&vm) || st.vanishing.contains(&vm)
    }

    /// Decide whether this call faults, and how. Scripted entries are
    /// consulted first; otherwise the plan's per-op probability rolls.
    fn decide(&self, op: FaultOp, vm: Option<VmId>, vcpu: Option<VcpuId>) -> Option<FaultKind> {
        let mut st = self.state.borrow_mut();
        if !st.armed {
            return None;
        }
        if let Some(idx) = st.script.iter().position(|s| {
            s.op == op
                && s.remaining > 0
                && (s.vm.is_none() || s.vm == vm)
                && (s.vcpu.is_none() || s.vcpu == vcpu)
        }) {
            st.script[idx].remaining -= 1;
            let kind = st.script[idx].kind;
            if st.script[idx].remaining == 0 {
                st.script.remove(idx);
            }
            return Some(kind);
        }
        if let Some(target) = self.plan.target_vm {
            // Targeted plan: random faults only hit the target VM, and
            // never the host-global reads (vm is None there).
            if vm != Some(target) {
                return None;
            }
        }
        let p = self.plan.rate(op);
        if p > 0.0 && st.rng.chance(p) {
            let kinds = self.plan.kinds();
            let i = st.rng.next_below(kinds.len() as u64) as usize;
            return Some(kinds[i]);
        }
        None
    }

    /// Error for a per-VM operation on a vanished VM: the cgroup subtree
    /// is gone.
    fn vanished_err(vm: VmId) -> CgroupError {
        CgroupError::NoSuchGroup(format!("{vm}.scope"))
    }

    fn err_for(op: FaultOp, kind: FaultKind) -> CgroupError {
        match kind {
            FaultKind::Io(k) => CgroupError::io(
                format!("<injected:{op:?}>"),
                io::Error::new(k, "injected fault"),
            ),
            // Torn on an errorful path (or any kind on a write) degrades
            // to the closest real-world failure.
            FaultKind::Torn => CgroupError::parse("injected torn read", "<injected garbage>"),
            FaultKind::Stale | FaultKind::Zero => CgroupError::io(
                format!("<injected:{op:?}>"),
                io::Error::new(io::ErrorKind::ResourceBusy, "injected fault"),
            ),
        }
    }

    fn check_vm(&self, vm: VmId) -> Result<()> {
        if self.is_vanished(vm) {
            Err(Self::vanished_err(vm))
        } else {
            Ok(())
        }
    }
}

impl<B: HostBackend> HostBackend for FaultInjectingBackend<B> {
    fn topology(&self) -> TopologyInfo {
        // Topology is static; nothing worth faulting.
        self.inner.topology()
    }

    fn vms(&self) -> Vec<VmCgroupInfo> {
        let all = self.inner.vms();
        let mut st = self.state.borrow_mut();
        // Random whole-VM disappearance: the chosen VM is still in this
        // listing (the race window) but unreachable from now on.
        if st.armed && self.plan.vanish_rate > 0.0 && st.rng.chance(self.plan.vanish_rate) {
            let alive: Vec<VmId> = all
                .iter()
                .map(|v| v.vm)
                .filter(|vm| !st.vanished.contains(vm) && !st.vanishing.contains(vm))
                .filter(|vm| self.plan.target_vm.is_none_or(|t| t == *vm))
                .collect();
            if !alive.is_empty() {
                let pick = alive[st.rng.next_below(alive.len() as u64) as usize];
                st.vanishing.insert(pick);
                st.stats.vanished_vms += 1;
            }
        }
        let listed: Vec<VmCgroupInfo> = all
            .into_iter()
            .filter(|v| !st.vanished.contains(&v.vm))
            .collect();
        // Stale-listing window consumed: next listing omits these too.
        let vanishing = std::mem::take(&mut st.vanishing);
        st.vanished.extend(vanishing);
        listed
    }

    fn begin_read_pass(&self) {
        // Forwarded so the inner backend's per-pass amortisations still
        // reset. `read_vcpu_raw` is deliberately NOT overridden: the
        // trait default decomposes it into the fine-grained calls below,
        // so every fault draw happens per call, in the legacy order —
        // a fault plan replays identically whether the monitor reads
        // through the batched or the fine-grained surface.
        self.inner.begin_read_pass();
    }

    fn vcpu_usage(&self, vm: VmId, vcpu: VcpuId) -> Result<Micros> {
        self.check_vm(vm)?;
        match self.decide(FaultOp::VcpuUsage, Some(vm), Some(vcpu)) {
            None => {
                let v = self.inner.vcpu_usage(vm, vcpu)?;
                self.state.borrow_mut().last_usage.insert((vm, vcpu), v);
                Ok(v)
            }
            Some(FaultKind::Stale) => {
                let mut st = self.state.borrow_mut();
                st.stats.stale_reads += 1;
                Ok(st
                    .last_usage
                    .get(&(vm, vcpu))
                    .copied()
                    .unwrap_or(Micros::ZERO))
            }
            Some(FaultKind::Zero) => {
                self.state.borrow_mut().stats.zero_reads += 1;
                Ok(Micros::ZERO)
            }
            Some(kind) => {
                self.state.borrow_mut().stats.read_errors += 1;
                Err(Self::err_for(FaultOp::VcpuUsage, kind))
            }
        }
    }

    fn vcpu_throttled(&self, vm: VmId, vcpu: VcpuId) -> Result<Micros> {
        self.check_vm(vm)?;
        match self.decide(FaultOp::VcpuThrottled, Some(vm), Some(vcpu)) {
            None => {
                let v = self.inner.vcpu_throttled(vm, vcpu)?;
                self.state.borrow_mut().last_throttled.insert((vm, vcpu), v);
                Ok(v)
            }
            Some(FaultKind::Stale) => {
                let mut st = self.state.borrow_mut();
                st.stats.stale_reads += 1;
                Ok(st
                    .last_throttled
                    .get(&(vm, vcpu))
                    .copied()
                    .unwrap_or(Micros::ZERO))
            }
            Some(FaultKind::Zero) => {
                self.state.borrow_mut().stats.zero_reads += 1;
                Ok(Micros::ZERO)
            }
            Some(kind) => {
                self.state.borrow_mut().stats.read_errors += 1;
                Err(Self::err_for(FaultOp::VcpuThrottled, kind))
            }
        }
    }

    fn vcpu_threads(&self, vm: VmId, vcpu: VcpuId) -> Result<Vec<Tid>> {
        self.check_vm(vm)?;
        match self.decide(FaultOp::VcpuThreads, Some(vm), Some(vcpu)) {
            None => self.inner.vcpu_threads(vm, vcpu),
            // The thread is mid-exit: `cgroup.threads` reads empty.
            Some(FaultKind::Stale) | Some(FaultKind::Zero) => {
                self.state.borrow_mut().stats.zero_reads += 1;
                Ok(Vec::new())
            }
            Some(kind) => {
                self.state.borrow_mut().stats.read_errors += 1;
                Err(Self::err_for(FaultOp::VcpuThreads, kind))
            }
        }
    }

    fn thread_last_cpu(&self, tid: Tid) -> Result<CpuId> {
        match self.decide(FaultOp::ThreadLastCpu, None, None) {
            None => self.inner.thread_last_cpu(tid),
            // `/proc/{tid}/stat` of a reaped thread: report core 0, the
            // same fallback the monitor uses for empty thread lists.
            Some(FaultKind::Stale) | Some(FaultKind::Zero) => {
                self.state.borrow_mut().stats.zero_reads += 1;
                Ok(CpuId::new(0))
            }
            Some(kind) => {
                self.state.borrow_mut().stats.read_errors += 1;
                Err(Self::err_for(FaultOp::ThreadLastCpu, kind))
            }
        }
    }

    fn cpu_cur_freq(&self, cpu: CpuId) -> Result<MHz> {
        match self.decide(FaultOp::CpuCurFreq, None, None) {
            None => {
                let v = self.inner.cpu_cur_freq(cpu)?;
                self.state.borrow_mut().last_freq.insert(cpu, v);
                Ok(v)
            }
            Some(FaultKind::Stale) => {
                let mut st = self.state.borrow_mut();
                st.stats.stale_reads += 1;
                match st.last_freq.get(&cpu).copied() {
                    Some(v) => Ok(v),
                    None => {
                        drop(st);
                        self.inner.cpu_cur_freq(cpu)
                    }
                }
            }
            Some(FaultKind::Zero) => {
                self.state.borrow_mut().stats.zero_reads += 1;
                Ok(MHz(0))
            }
            Some(kind) => {
                self.state.borrow_mut().stats.read_errors += 1;
                Err(Self::err_for(FaultOp::CpuCurFreq, kind))
            }
        }
    }

    fn set_vcpu_max(&mut self, vm: VmId, vcpu: VcpuId, max: CpuMax) -> Result<()> {
        self.check_vm(vm)?;
        match self.decide(FaultOp::SetVcpuMax, Some(vm), Some(vcpu)) {
            None => self.inner.set_vcpu_max(vm, vcpu, max),
            Some(kind) => {
                self.state.borrow_mut().stats.write_errors += 1;
                Err(Self::err_for(FaultOp::SetVcpuMax, kind))
            }
        }
    }

    fn vcpu_max(&self, vm: VmId, vcpu: VcpuId) -> Result<CpuMax> {
        self.check_vm(vm)?;
        match self.decide(FaultOp::VcpuMax, Some(vm), Some(vcpu)) {
            None | Some(FaultKind::Stale) | Some(FaultKind::Zero) => self.inner.vcpu_max(vm, vcpu),
            Some(kind) => {
                self.state.borrow_mut().stats.read_errors += 1;
                Err(Self::err_for(FaultOp::VcpuMax, kind))
            }
        }
    }

    fn set_vm_weight(&mut self, vm: VmId, weight: u32) -> Result<()> {
        self.check_vm(vm)?;
        match self.decide(FaultOp::SetVmWeight, Some(vm), None) {
            None => self.inner.set_vm_weight(vm, weight),
            Some(kind) => {
                self.state.borrow_mut().stats.write_errors += 1;
                Err(Self::err_for(FaultOp::SetVmWeight, kind))
            }
        }
    }

    fn vm_weight(&self, vm: VmId) -> Result<u32> {
        self.check_vm(vm)?;
        match self.decide(FaultOp::VmWeight, Some(vm), None) {
            None | Some(FaultKind::Stale) | Some(FaultKind::Zero) => self.inner.vm_weight(vm),
            Some(kind) => {
                self.state.borrow_mut().stats.read_errors += 1;
                Err(Self::err_for(FaultOp::VmWeight, kind))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::FixtureTree;
    use crate::fs::FsBackend;

    /// A three-VM on-disk fixture; keep the tree alive while the backend
    /// is in use.
    fn fixture() -> (FixtureTree, FsBackend) {
        let fx = FixtureTree::builder()
            .cpus(4, MHz(2400))
            .vm("alpha", 2, &[100, 101])
            .vm("beta", 1, &[200])
            .vm("gamma", 1, &[300])
            .build();
        let backend = fx.backend();
        (fx, backend)
    }

    #[test]
    fn no_plan_is_transparent() {
        let (_fx, inner) = fixture();
        let want_vms = inner.vms();
        let faulty = FaultInjectingBackend::new(inner, FaultPlan::none(), 1);
        assert_eq!(faulty.vms(), want_vms);
        let vm = want_vms[0].vm;
        for _ in 0..100 {
            assert!(faulty.vcpu_usage(vm, VcpuId::new(0)).is_ok());
        }
        assert_eq!(faulty.stats().total(), 0);
    }

    #[test]
    fn seeded_runs_replay_identically() {
        let plan = FaultPlan::random(0.3);
        let run = |seed: u64| {
            let (_fx, inner) = fixture();
            let faulty = FaultInjectingBackend::new(inner, plan.clone(), seed);
            let vm = faulty.vms()[0].vm;
            (0..200)
                .map(|_| faulty.vcpu_usage(vm, VcpuId::new(0)).is_ok())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7), "same seed, same fault sequence");
        assert_ne!(run(7), run(8), "different seed, different sequence");
    }

    #[test]
    fn rate_one_always_faults_other_ops_untouched() {
        let (_fx, inner) = fixture();
        let always = FaultInjectingBackend::new(
            inner,
            FaultPlan::none()
                .with_rate(FaultOp::VcpuUsage, 1.0)
                .with_kinds(&[FaultKind::Io(io::ErrorKind::Interrupted)]),
            3,
        );
        let vm = always.vms()[0].vm;
        for _ in 0..50 {
            let err = always.vcpu_usage(vm, VcpuId::new(0)).unwrap_err();
            assert!(err.is_transient());
        }
        assert_eq!(always.stats().read_errors, 50);
        // Other ops are untouched.
        assert!(always.vcpu_threads(vm, VcpuId::new(0)).is_ok());
    }

    #[test]
    fn scripted_faults_fire_first_then_expire() {
        let plan = FaultPlan::none().script(
            FaultOp::SetVcpuMax,
            None,
            Some(VcpuId::new(0)),
            FaultKind::Io(io::ErrorKind::ResourceBusy),
            2,
        );
        let (_fx, inner) = fixture();
        let mut faulty = FaultInjectingBackend::new(inner, plan, 4);
        let vm = faulty.vms()[0].vm;
        let cap = CpuMax::with_period(Micros(50_000), Micros(100_000));
        // vcpu1 does not match the filter.
        assert!(faulty.set_vcpu_max(vm, VcpuId::new(1), cap).is_ok());
        assert!(faulty.set_vcpu_max(vm, VcpuId::new(0), cap).is_err());
        assert!(faulty.set_vcpu_max(vm, VcpuId::new(0), cap).is_err());
        // Script exhausted.
        assert!(faulty.set_vcpu_max(vm, VcpuId::new(0), cap).is_ok());
        assert_eq!(faulty.stats().write_errors, 2);
    }

    #[test]
    fn stale_and_zero_reads_succeed_with_wrong_data() {
        let (fx, inner) = fixture();
        let plan = FaultPlan::none()
            .script(FaultOp::VcpuUsage, None, None, FaultKind::Zero, 1)
            .script(FaultOp::VcpuUsage, None, None, FaultKind::Stale, 1);
        let faulty = FaultInjectingBackend::new(inner, plan, 5);
        let vm = faulty.vms()[0].vm;
        // First call: zero read (the counter "reset").
        assert_eq!(faulty.vcpu_usage(vm, VcpuId::new(0)).unwrap(), Micros::ZERO);
        assert_eq!(faulty.stats().zero_reads, 1);
        // Second call: stale — no successful read yet, so still zero.
        fx.add_vcpu_usage("alpha", 0, Micros(500_000));
        assert_eq!(faulty.vcpu_usage(vm, VcpuId::new(0)).unwrap(), Micros::ZERO);
        assert_eq!(faulty.stats().stale_reads, 1);
        // Script exhausted: real value now visible.
        assert_eq!(
            faulty.vcpu_usage(vm, VcpuId::new(0)).unwrap(),
            Micros(500_000)
        );
    }

    #[test]
    fn stale_read_replays_last_successful_value() {
        let (fx, inner) = fixture();
        let faulty = FaultInjectingBackend::new(inner, FaultPlan::none(), 5);
        let vm = faulty.vms()[0].vm;
        fx.add_vcpu_usage("alpha", 0, Micros(250_000));
        assert_eq!(
            faulty.vcpu_usage(vm, VcpuId::new(0)).unwrap(),
            Micros(250_000)
        );
        // Stage a stale fault *after* a successful read was cached, then
        // advance the real counter: the stale read replays the old value.
        faulty.script_fault(FaultOp::VcpuUsage, Some(vm), None, FaultKind::Stale, 1);
        fx.add_vcpu_usage("alpha", 0, Micros(100_000));
        assert_eq!(
            faulty.vcpu_usage(vm, VcpuId::new(0)).unwrap(),
            Micros(250_000),
            "stale read replays the cached value"
        );
        assert_eq!(
            faulty.vcpu_usage(vm, VcpuId::new(0)).unwrap(),
            Micros(350_000),
            "script exhausted, real value visible again"
        );
    }

    #[test]
    fn vanish_vm_has_stale_listing_semantics() {
        let (_fx, inner) = fixture();
        let faulty = FaultInjectingBackend::new(inner, FaultPlan::none(), 6);
        let before = faulty.vms();
        let victim = before[0].vm;
        faulty.vanish_vm(victim);
        // The next listing still contains the victim (stale enumeration)…
        let stale = faulty.vms();
        assert!(stale.iter().any(|v| v.vm == victim));
        // …but per-VM reads already fail with a vanished error…
        let err = faulty.vcpu_usage(victim, VcpuId::new(0)).unwrap_err();
        assert!(err.is_vanished());
        // …and the listing after that omits it.
        let fresh = faulty.vms();
        assert!(!fresh.iter().any(|v| v.vm == victim));
        assert_eq!(fresh.len(), before.len() - 1);
        // Other VMs are untouched.
        let other = fresh[0].vm;
        assert!(faulty.vcpu_usage(other, VcpuId::new(0)).is_ok());
        // Restoring brings it back.
        faulty.restore_vm(victim);
        assert!(faulty.vms().iter().any(|v| v.vm == victim));
        assert!(faulty.vcpu_usage(victim, VcpuId::new(0)).is_ok());
    }

    #[test]
    fn disarm_stops_random_faults_but_not_vanishes() {
        let (_fx, inner) = fixture();
        let faulty = FaultInjectingBackend::new(inner, FaultPlan::random(1.0), 9);
        let vm = faulty.vms()[0].vm;
        faulty.disarm();
        for _ in 0..50 {
            assert!(faulty.vcpu_usage(vm, VcpuId::new(0)).is_ok());
        }
        faulty.vanish_vm(vm);
        faulty.vms();
        faulty.vms();
        assert!(faulty.vcpu_usage(vm, VcpuId::new(0)).is_err());
        faulty.arm();
        assert!(faulty.vcpu_usage(vm, VcpuId::new(0)).is_err());
    }

    #[test]
    fn target_vm_confines_random_faults() {
        let (_fx, inner) = fixture();
        let vms = inner.vms();
        let (victim, bystander) = (vms[0].vm, vms[1].vm);
        let faulty = FaultInjectingBackend::new(
            inner,
            FaultPlan::random(1.0)
                .with_kinds(&[FaultKind::Io(io::ErrorKind::Interrupted)])
                .with_target_vm(victim),
            13,
        );
        for _ in 0..50 {
            assert!(faulty.vcpu_usage(victim, VcpuId::new(0)).is_err());
            assert!(faulty.vcpu_usage(bystander, VcpuId::new(0)).is_ok());
            // Host-global reads cannot be attributed to a VM, so a
            // targeted plan never faults them.
            assert!(faulty.thread_last_cpu(Tid(100)).is_ok());
            assert!(faulty.cpu_cur_freq(CpuId::new(0)).is_ok());
        }
        assert_eq!(faulty.stats().read_errors, 50);
    }

    #[test]
    fn target_vm_confines_random_vanishes() {
        let (_fx, inner) = fixture();
        let target = inner.vms()[1].vm;
        let faulty = FaultInjectingBackend::new(
            inner,
            FaultPlan::none()
                .with_vanish_rate(1.0)
                .with_target_vm(target),
            17,
        );
        let total = faulty.inner().vms().len();
        // First listing: the target is picked but still listed (race
        // window); afterwards only the target is ever gone.
        assert_eq!(faulty.vms().len(), total);
        for _ in 0..5 {
            let listed = faulty.vms();
            assert_eq!(listed.len(), total - 1);
            assert!(!listed.iter().any(|v| v.vm == target));
        }
        assert_eq!(faulty.stats().vanished_vms, 1);
    }

    #[test]
    fn random_vanish_keeps_victim_in_current_listing() {
        let (_fx, inner) = fixture();
        let faulty = FaultInjectingBackend::new(inner, FaultPlan::none().with_vanish_rate(1.0), 11);
        let total = faulty.inner().vms().len();
        assert!(total >= 2, "fixture should host several VMs");
        // Every listing loses at most one VM relative to the previous one
        // (vanish fires each call until nobody is left).
        let mut prev = total + 1;
        loop {
            let now = faulty.vms().len();
            assert!(now == prev || now + 1 == prev, "{now} after {prev}");
            if now == 0 {
                break;
            }
            prev = now;
        }
        assert_eq!(faulty.stats().vanished_vms as usize, total);
    }
}
