//! CPU-controller state attached to a cgroup.

use serde::{Deserialize, Serialize};
use vfc_simcore::Micros;

/// Default cgroup-v2 CPU bandwidth period (`cpu.max` second field).
pub const DEFAULT_PERIOD: Micros = Micros(100_000);

/// Default `cpu.weight` value.
pub const DEFAULT_WEIGHT: u32 = 100;

/// The `cpu.max` bandwidth limit of a cgroup: at most `quota` µs of CPU
/// time per `period` µs of wall clock, across all threads of the group.
///
/// `quota == None` encodes the literal `max` (unlimited), the kernel
/// default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuMax {
    /// Allowed CPU time per period; `None` = `max` (no limit).
    pub quota: Option<Micros>,
    /// Bandwidth enforcement period.
    pub period: Micros,
}

impl Default for CpuMax {
    fn default() -> Self {
        CpuMax::unlimited()
    }
}

impl CpuMax {
    /// The kernel default: `max 100000`.
    pub const fn unlimited() -> Self {
        CpuMax {
            quota: None,
            period: DEFAULT_PERIOD,
        }
    }

    /// A concrete limit with the default period.
    pub const fn limited(quota: Micros) -> Self {
        CpuMax {
            quota: Some(quota),
            period: DEFAULT_PERIOD,
        }
    }

    /// A concrete limit with an explicit period.
    pub const fn with_period(quota: Micros, period: Micros) -> Self {
        CpuMax {
            quota: Some(quota),
            period,
        }
    }

    /// Is this the unlimited (`max`) configuration?
    #[inline]
    pub fn is_unlimited(&self) -> bool {
        self.quota.is_none()
    }

    /// CPU-time budget available during a window of `window` µs,
    /// pro-rated from the quota/period ratio. Unlimited groups get
    /// `u64::MAX` µs.
    ///
    /// The real kernel refills the quota every `period`; enforcing the
    /// *average* bandwidth over an engine tick is equivalent at the 100 ms
    /// resolution the simulator runs at.
    #[inline]
    pub fn budget_for(&self, window: Micros) -> Micros {
        match self.quota {
            None => Micros(u64::MAX),
            Some(q) => {
                if self.period.is_zero() {
                    Micros::ZERO
                } else {
                    // q * window / period, in u128 to avoid overflow.
                    Micros(
                        ((q.as_u64() as u128 * window.as_u64() as u128)
                            / self.period.as_u64() as u128) as u64,
                    )
                }
            }
        }
    }

    /// Fraction of one CPU this limit allows (`quota/period`);
    /// `f64::INFINITY` when unlimited.
    #[inline]
    pub fn cpu_fraction(&self) -> f64 {
        match self.quota {
            None => f64::INFINITY,
            Some(q) => q.ratio_of(self.period),
        }
    }
}

/// The `cpu.stat` counters of a cgroup (the subset the controller uses,
/// which is also the subset cgroup-v2 guarantees for every group with the
/// `cpu` controller enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CpuStat {
    /// Total CPU time consumed by the group since creation.
    pub usage_usec: Micros,
    /// User-mode share of `usage_usec`.
    pub user_usec: Micros,
    /// Kernel-mode share of `usage_usec`.
    pub system_usec: Micros,
    /// Number of enforcement periods that have elapsed (only counted while
    /// a limit is set, as in the kernel).
    pub nr_periods: u64,
    /// Number of periods in which the group was throttled.
    pub nr_throttled: u64,
    /// Total time the group spent throttled.
    pub throttled_usec: Micros,
}

impl CpuStat {
    /// Record `used` µs of CPU consumption (split user/system with the
    /// kernel-typical 90/10 ratio used by the simulator).
    pub fn account_usage(&mut self, used: Micros) {
        self.usage_usec += used;
        let user = Micros(used.as_u64() * 9 / 10);
        self.user_usec += user;
        self.system_usec += used - user;
    }

    /// Record the outcome of one enforcement period.
    pub fn account_period(&mut self, throttled_for: Micros) {
        self.nr_periods += 1;
        if !throttled_for.is_zero() {
            self.nr_throttled += 1;
            self.throttled_usec += throttled_for;
        }
    }

    /// Throttle ratio over the group's lifetime (`nr_throttled /
    /// nr_periods`), 0 when no period has elapsed.
    pub fn throttle_ratio(&self) -> f64 {
        if self.nr_periods == 0 {
            0.0
        } else {
            self.nr_throttled as f64 / self.nr_periods as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_effectively_infinite() {
        let m = CpuMax::unlimited();
        assert!(m.is_unlimited());
        assert_eq!(m.budget_for(Micros(100_000)), Micros(u64::MAX));
        assert!(m.cpu_fraction().is_infinite());
    }

    #[test]
    fn budget_prorates_quota() {
        // 50 ms per 100 ms period => 0.5 CPU => 500 ms per second.
        let m = CpuMax::with_period(Micros(50_000), Micros(100_000));
        assert_eq!(m.budget_for(Micros::SEC), Micros(500_000));
        assert_eq!(m.budget_for(Micros(100_000)), Micros(50_000));
        assert_eq!(m.budget_for(Micros::ZERO), Micros::ZERO);
        assert!((m.cpu_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn budget_handles_large_quotas_without_overflow() {
        // Multi-CPU quota: 64 CPUs' worth of time per period.
        let m = CpuMax::with_period(Micros(6_400_000), Micros(100_000));
        assert_eq!(m.budget_for(Micros::SEC), Micros(64_000_000));
    }

    #[test]
    fn zero_period_yields_zero_budget() {
        let m = CpuMax {
            quota: Some(Micros(1)),
            period: Micros::ZERO,
        };
        assert_eq!(m.budget_for(Micros::SEC), Micros::ZERO);
    }

    #[test]
    fn stat_accounting() {
        let mut s = CpuStat::default();
        s.account_usage(Micros(1000));
        assert_eq!(s.usage_usec, Micros(1000));
        assert_eq!(s.user_usec + s.system_usec, s.usage_usec);
        s.account_period(Micros::ZERO);
        s.account_period(Micros(250));
        assert_eq!(s.nr_periods, 2);
        assert_eq!(s.nr_throttled, 1);
        assert_eq!(s.throttled_usec, Micros(250));
        assert!((s.throttle_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn throttle_ratio_empty() {
        assert_eq!(CpuStat::default().throttle_ratio(), 0.0);
    }
}
