//! On-disk fixture trees for testing and demonstrating [`crate::fs::FsBackend`]
//! without root privileges or a KVM host.
//!
//! [`FixtureTree`] materializes, in a unique temp directory:
//!
//! ```text
//! <root>/cgroup/machine.slice/machine-qemu\x2dN\x2dNAME.scope/libvirt/vcpuJ/
//!     cpu.max  cpu.stat  cgroup.threads
//! <root>/proc/<tid>/stat
//! <root>/cpu/cpuI/cpufreq/{scaling_cur_freq, cpuinfo_max_freq}
//! ```
//!
//! Tests mutate the tree (usage counters, thread placement, core
//! frequencies) between controller iterations to emulate a live host.
//! The directory is removed on drop.

use crate::fs::CgroupVersion;
use crate::model::{CpuMax, CpuStat};
use crate::parse;
use crate::tree::kvm_layout;
use crate::v1;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use vfc_simcore::{CpuId, MHz, Micros, Tid};

static FIXTURE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Builder for a [`FixtureTree`].
#[derive(Debug)]
pub struct FixtureBuilder {
    cpus: u32,
    max_mhz: MHz,
    vms: Vec<(String, u32, Vec<Tid>)>,
    version: CgroupVersion,
}

impl Default for FixtureBuilder {
    fn default() -> Self {
        FixtureBuilder {
            cpus: 0,
            max_mhz: MHz::ZERO,
            vms: Vec::new(),
            version: CgroupVersion::V2,
        }
    }
}

impl FixtureBuilder {
    /// Host topology: `n` CPUs, all with hardware max `max_mhz`.
    pub fn cpus(mut self, n: u32, max_mhz: MHz) -> Self {
        self.cpus = n;
        self.max_mhz = max_mhz;
        self
    }

    /// Add a VM with `vcpus` vCPUs whose threads get the given TIDs
    /// (one per vCPU; extra TIDs ignored, missing ones synthesized).
    pub fn vm(mut self, name: &str, vcpus: u32, tids: &[u32]) -> Self {
        self.vms.push((
            name.to_owned(),
            vcpus,
            tids.iter().copied().map(Tid::new).collect(),
        ));
        self
    }

    /// Build a legacy cgroup-v1 (`cpu,cpuacct`) tree instead of v2.
    pub fn v1(mut self) -> Self {
        self.version = CgroupVersion::V1;
        self
    }

    /// Write the tree to disk.
    pub fn build(self) -> FixtureTree {
        let id = FIXTURE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!("vfc-fixture-{}-{id}", std::process::id()));
        let tree = FixtureTree {
            root,
            version: self.version,
        };
        tree.init(&self);
        tree
    }
}

/// A materialized fixture tree (see module docs).
#[derive(Debug)]
pub struct FixtureTree {
    root: PathBuf,
    version: CgroupVersion,
}

impl FixtureTree {
    /// Start building a fixture.
    pub fn builder() -> FixtureBuilder {
        FixtureBuilder::default()
    }

    /// Root of the fixture tree.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// cgroup-v2 mount point of this fixture.
    pub fn cgroup_root(&self) -> PathBuf {
        self.root.join("cgroup")
    }

    /// `/proc` of this fixture.
    pub fn proc_root(&self) -> PathBuf {
        self.root.join("proc")
    }

    /// `/sys/devices/system/cpu` of this fixture.
    pub fn cpu_root(&self) -> PathBuf {
        self.root.join("cpu")
    }

    /// A fresh [`crate::fs::FsBackend`] over this fixture.
    pub fn backend(&self) -> crate::fs::FsBackend {
        crate::fs::FsBackend::new(self.cgroup_root(), self.proc_root(), self.cpu_root())
    }

    fn init(&self, b: &FixtureBuilder) {
        // Topology files.
        for i in 0..b.cpus {
            let dir = self.cpu_root().join(format!("cpu{i}")).join("cpufreq");
            fs::create_dir_all(&dir).expect("fixture mkdir");
            fs::write(
                dir.join("scaling_cur_freq"),
                parse::format_scaling_cur_freq(b.max_mhz),
            )
            .unwrap();
            fs::write(
                dir.join("cpuinfo_max_freq"),
                parse::format_scaling_cur_freq(b.max_mhz),
            )
            .unwrap();
        }
        fs::create_dir_all(self.cgroup_root().join(kvm_layout::MACHINE_SLICE)).unwrap();
        fs::create_dir_all(self.proc_root()).unwrap();
        if self.version == CgroupVersion::V2 {
            // Mark the root as a unified hierarchy for auto-detection.
            fs::write(
                self.cgroup_root().join("cgroup.controllers"),
                "cpuset cpu io memory pids\n",
            )
            .unwrap();
        }

        // VM scopes.
        for (n, (name, vcpus, tids)) in b.vms.iter().enumerate() {
            let scope = self
                .cgroup_root()
                .join(kvm_layout::MACHINE_SLICE)
                .join(kvm_layout::scope_name(n as u32 + 1, name));
            for j in 0..*vcpus {
                let vdir = scope.join("libvirt").join(kvm_layout::vcpu_dir(j));
                fs::create_dir_all(&vdir).unwrap();
                let tid = tids
                    .get(j as usize)
                    .copied()
                    .unwrap_or(Tid::new(1000 * (n as u32 + 1) + j));
                let unlimited = CpuMax::unlimited();
                match self.version {
                    CgroupVersion::V2 => {
                        fs::write(vdir.join("cpu.max"), parse::format_cpu_max(&unlimited)).unwrap();
                        fs::write(
                            vdir.join("cpu.stat"),
                            parse::format_cpu_stat(&CpuStat::default()),
                        )
                        .unwrap();
                        fs::write(vdir.join("cgroup.threads"), parse::format_threads(&[tid]))
                            .unwrap();
                    }
                    CgroupVersion::V1 => {
                        fs::write(
                            vdir.join("cpu.stat"),
                            v1::format_v1_cpu_stat(0, 0, Micros::ZERO),
                        )
                        .unwrap();
                        fs::write(
                            vdir.join("cpu.cfs_quota_us"),
                            v1::format_cfs_quota(&unlimited),
                        )
                        .unwrap();
                        fs::write(
                            vdir.join("cpu.cfs_period_us"),
                            v1::format_cfs_period(&unlimited),
                        )
                        .unwrap();
                        fs::write(
                            vdir.join("cpuacct.usage"),
                            v1::format_cpuacct_usage(Micros::ZERO),
                        )
                        .unwrap();
                        fs::write(vdir.join("tasks"), parse::format_threads(&[tid])).unwrap();
                    }
                }
                self.set_thread_cpu(tid, CpuId::new(j % b.cpus.max(1)));
            }
            // The emulator group libvirt also creates, plus the scope's
            // weight knob with its kernel default.
            fs::create_dir_all(scope.join("libvirt").join("emulator")).unwrap();
            match self.version {
                CgroupVersion::V2 => fs::write(scope.join("cpu.weight"), "100\n").unwrap(),
                CgroupVersion::V1 => fs::write(scope.join("cpu.shares"), "1024\n").unwrap(),
            }
        }
    }

    fn vcpu_dir(&self, vm_name: &str, vcpu: u32) -> PathBuf {
        let slice = self.cgroup_root().join(kvm_layout::MACHINE_SLICE);
        let entries = fs::read_dir(&slice).expect("fixture machine.slice");
        for e in entries.flatten() {
            let dir = e.file_name().to_string_lossy().into_owned();
            if let Some((_, name)) = kvm_layout::parse_scope_name(&dir) {
                if name == vm_name {
                    return e.path().join("libvirt").join(kvm_layout::vcpu_dir(vcpu));
                }
            }
        }
        panic!("fixture has no VM named {vm_name}");
    }

    /// Increase a vCPU's cumulative usage counter by `delta` (in whichever
    /// format this tree's version uses).
    pub fn add_vcpu_usage(&self, vm_name: &str, vcpu: u32, delta: Micros) {
        match self.version {
            CgroupVersion::V2 => {
                let path = self.vcpu_dir(vm_name, vcpu).join("cpu.stat");
                let mut stat = parse::parse_cpu_stat(&fs::read_to_string(&path).unwrap()).unwrap();
                stat.account_usage(delta);
                fs::write(&path, parse::format_cpu_stat(&stat)).unwrap();
            }
            CgroupVersion::V1 => {
                let path = self.vcpu_dir(vm_name, vcpu).join("cpuacct.usage");
                let usage = v1::parse_cpuacct_usage(&fs::read_to_string(&path).unwrap()).unwrap();
                fs::write(&path, v1::format_cpuacct_usage(usage + delta)).unwrap();
            }
        }
    }

    /// Read a vCPU's current CPU bandwidth limit (to assert on controller
    /// writes), regardless of the tree's version.
    pub fn vcpu_cpu_max(&self, vm_name: &str, vcpu: u32) -> CpuMax {
        let dir = self.vcpu_dir(vm_name, vcpu);
        match self.version {
            CgroupVersion::V2 => {
                parse::parse_cpu_max(&fs::read_to_string(dir.join("cpu.max")).unwrap()).unwrap()
            }
            CgroupVersion::V1 => v1::parse_cfs_quota(
                &fs::read_to_string(dir.join("cpu.cfs_quota_us")).unwrap(),
                &fs::read_to_string(dir.join("cpu.cfs_period_us")).unwrap(),
            )
            .unwrap(),
        }
    }

    /// Increase a vCPU's cumulative throttled time (the signal
    /// throttle-aware estimation consumes).
    pub fn add_vcpu_throttled(&self, vm_name: &str, vcpu: u32, delta: Micros) {
        let path = self.vcpu_dir(vm_name, vcpu).join("cpu.stat");
        match self.version {
            CgroupVersion::V2 => {
                let mut stat = parse::parse_cpu_stat(&fs::read_to_string(&path).unwrap()).unwrap();
                stat.account_period(delta);
                fs::write(&path, parse::format_cpu_stat(&stat)).unwrap();
            }
            CgroupVersion::V1 => {
                let (p, t, us) =
                    v1::parse_v1_cpu_stat(&fs::read_to_string(&path).unwrap()).unwrap();
                fs::write(&path, v1::format_v1_cpu_stat(p + 1, t + 1, us + delta)).unwrap();
            }
        }
    }

    /// Place a thread on a CPU (rewrites `/proc/<tid>/stat`).
    pub fn set_thread_cpu(&self, tid: Tid, cpu: CpuId) {
        let dir = self.proc_root().join(tid.as_u32().to_string());
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("stat"),
            parse::format_stat_line(tid, "CPU 0/KVM", cpu),
        )
        .unwrap();
    }

    /// Set a core's current frequency.
    pub fn set_cpu_freq(&self, cpu: CpuId, freq: MHz) {
        let path = self
            .cpu_root()
            .join(format!("cpu{}", cpu.as_u32()))
            .join("cpufreq/scaling_cur_freq");
        fs::write(path, parse::format_scaling_cur_freq(freq)).unwrap();
    }
}

impl Drop for FixtureTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_creates_expected_layout() {
        let fx = FixtureTree::builder()
            .cpus(2, MHz(2400))
            .vm("demo", 2, &[42, 43])
            .build();
        let scope = fx
            .cgroup_root()
            .join("machine.slice")
            .join(kvm_layout::scope_name(1, "demo"));
        assert!(scope.join("libvirt/vcpu0/cpu.max").exists());
        assert!(scope.join("libvirt/vcpu1/cpu.stat").exists());
        assert!(scope.join("libvirt/emulator").is_dir());
        assert!(fx.proc_root().join("42/stat").exists());
        assert!(fx.cpu_root().join("cpu1/cpufreq/scaling_cur_freq").exists());
    }

    #[test]
    fn fixture_cleans_up_on_drop() {
        let root;
        {
            let fx = FixtureTree::builder().cpus(1, MHz(1000)).build();
            root = fx.root().to_path_buf();
            assert!(root.exists());
        }
        assert!(!root.exists());
    }

    #[test]
    fn usage_and_cpu_max_helpers() {
        let fx = FixtureTree::builder()
            .cpus(1, MHz(1000))
            .vm("a", 1, &[7])
            .build();
        assert!(fx.vcpu_cpu_max("a", 0).is_unlimited());
        fx.add_vcpu_usage("a", 0, Micros(500));
        fx.add_vcpu_usage("a", 0, Micros(250));
        let stat_path = fx.vcpu_dir("a", 0).join("cpu.stat");
        let stat = parse::parse_cpu_stat(&fs::read_to_string(stat_path).unwrap()).unwrap();
        assert_eq!(stat.usage_usec, Micros(750));
    }

    #[test]
    #[should_panic(expected = "no VM named")]
    fn unknown_vm_panics() {
        let fx = FixtureTree::builder().cpus(1, MHz(1000)).build();
        fx.add_vcpu_usage("ghost", 0, Micros(1));
    }
}
