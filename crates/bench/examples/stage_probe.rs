//! Quick probe: stage timing breakdown at 1000 vCPUs, seq vs parallel.
use std::time::Instant;
use vfc_bench::{dense_host, warm_up};
use vfc_controller::controller::IterationReport;
use vfc_controller::{ControlMode, ShardCount};

fn main() {
    for (label, shards, par) in [
        ("seq-1", ShardCount::Fixed(1), false),
        ("seq-4", ShardCount::Fixed(4), false),
        ("par-4", ShardCount::Fixed(4), true),
    ] {
        let (mut host, mut ctl) = dense_host(1000, shards, ControlMode::Full);
        warm_up(&mut host, &mut ctl, 5);
        let mut report = IterationReport::default();
        let mut best = u128::MAX;
        for _ in 0..40 {
            host.advance_period();
            let t = Instant::now();
            if par {
                ctl.iterate_into_parallel(&mut host, &mut report).unwrap();
            } else {
                ctl.iterate_into(&mut host, &mut report).unwrap();
            }
            best = best.min(t.elapsed().as_micros());
        }
        let t = &report.timings;
        println!(
            "{label}: best-total {best}us | mon {:?} est {:?} enforce {:?} auction {:?} dist {:?} apply {:?} total {:?}",
            t.monitor, t.estimate, t.enforce, t.auction, t.distribute, t.apply, t.total
        );
    }
}
