//! Shared fixtures for the `vfc` Criterion benchmarks.
//!
//! The benches live in `benches/`:
//!
//! * `controller` — full-loop iteration cost vs hosted vCPU count, plus
//!   per-stage microbenchmarks (the §IV.A.2 "5 ms per iteration" claim);
//! * `scheduler` — engine tick cost vs thread count, `water_fill`
//!   microbenchmark;
//! * `placement` — Best/First-Fit over the §IV.C cluster under both
//!   constraints;
//! * `figures` — one benchmark per reproduced figure: each measures the
//!   cost of regenerating that figure's data (truncated scenario runs);
//! * `ablation` — controller cost under swept design parameters (auction
//!   window, history length, increase factor).

use vfc_controller::{ControlMode, Controller, ControllerConfig, ShardCount};
use vfc_cpusched::topology::NodeSpec;
use vfc_simcore::MHz;
use vfc_vmm::workload::SteadyDemand;
use vfc_vmm::{SimHost, VmTemplate};

/// A chetemi host loaded with saturating 2-vCPU VMs until `vcpus` vCPUs
/// are hosted, plus a ready controller.
pub fn loaded_host(vcpus: u32, mode: ControlMode) -> (SimHost, Controller) {
    let spec = NodeSpec::chetemi();
    let mut host = SimHost::new(spec, 42);
    let mut hosted = 0;
    while hosted < vcpus {
        let vm = host.provision(&VmTemplate::new("bench", 2, MHz(600)));
        host.attach_workload(vm, Box::new(SteadyDemand::full()));
        hosted += 2;
    }
    let controller = Controller::new(
        ControllerConfig::paper_defaults().with_mode(mode),
        host.topology_info(),
    );
    (host, controller)
}

/// A dense many-vCPU host for the sharding benchmarks: `vcpus / 2`
/// hardware threads (the same 2:1 virtual oversubscription as the
/// chetemi fixture, scaled up), saturating 2-vCPU VMs, and a controller
/// pinned to the given shard count. Sizes past [`loaded_host`]'s
/// chetemi node — 500, 1000, 2000 vCPUs — model the dense-host future
/// of ROADMAP open item 1, not the paper's testbed.
pub fn dense_host(vcpus: u32, shards: ShardCount, mode: ControlMode) -> (SimHost, Controller) {
    let spec = NodeSpec::custom("dense", 1, (vcpus / 4).max(1), 2, MHz(2400));
    let mut host = SimHost::new(spec, 42);
    let mut hosted = 0;
    while hosted < vcpus {
        let vm = host.provision(&VmTemplate::new("bench", 2, MHz(600)));
        host.attach_workload(vm, Box::new(SteadyDemand::full()));
        hosted += 2;
    }
    let mut cfg = ControllerConfig::paper_defaults().with_mode(mode);
    cfg.shard_count = shards;
    let controller = Controller::new(cfg, host.topology_info());
    (host, controller)
}

/// Drive `host` and `controller` through `n` warm-up periods so benches
/// measure steady state, not the cold-start ramp.
pub fn warm_up(host: &mut SimHost, controller: &mut Controller, n: u32) {
    for _ in 0..n {
        host.advance_period();
        controller.iterate(host).expect("sim backend");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (mut host, mut ctl) = loaded_host(8, ControlMode::Full);
        warm_up(&mut host, &mut ctl, 3);
        assert_eq!(ctl.iterations(), 3);
        assert_eq!(host.instances().len(), 4);
    }
}
