//! Ablation sweeps over the controller's design parameters (the knobs
//! §III.B.2 and §IV.A.1 call out): auction window size, history length
//! `n`, and the increase factor. Each bench runs a fixed 20-iteration
//! contended scenario, so the measured time reflects the parameter's cost
//! impact; the companion shape metrics (convergence, oscillation) are
//! asserted in the test suites.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vfc_controller::{ControlMode, Controller, ControllerConfig};
use vfc_cpusched::topology::NodeSpec;
use vfc_simcore::Micros;
use vfc_vmm::workload::SteadyDemand;
use vfc_vmm::{SimHost, VmTemplate};

fn contended_host() -> SimHost {
    let mut host = SimHost::new(NodeSpec::chetemi(), 42);
    for _ in 0..20 {
        let vm = host.provision(&VmTemplate::small());
        host.attach_workload(vm, Box::new(SteadyDemand::full()));
    }
    for _ in 0..10 {
        let vm = host.provision(&VmTemplate::large());
        host.attach_workload(vm, Box::new(SteadyDemand::full()));
    }
    host
}

fn run_iterations(cfg: ControllerConfig, n: u32) {
    let mut host = contended_host();
    let mut controller = Controller::new(cfg, host.topology_info());
    for _ in 0..n {
        host.advance_period();
        black_box(controller.iterate(&mut host).expect("sim backend"));
    }
}

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_window");
    group.sample_size(10);
    for window_us in [10_000u64, 100_000, 1_000_000] {
        group.bench_with_input(
            BenchmarkId::new("window_us", window_us),
            &window_us,
            |b, &w| {
                b.iter(|| {
                    let mut cfg = ControllerConfig::paper_defaults();
                    cfg.window = Micros(w);
                    run_iterations(cfg, 20);
                })
            },
        );
    }
    group.finish();
}

fn bench_history(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_history");
    group.sample_size(10);
    for n in [2usize, 5, 20, 60] {
        group.bench_with_input(BenchmarkId::new("history_len", n), &n, |b, &n| {
            b.iter(|| {
                let mut cfg = ControllerConfig::paper_defaults();
                cfg.history_len = n;
                run_iterations(cfg, 20);
            })
        });
    }
    group.finish();
}

fn bench_increase_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_increase_factor");
    group.sample_size(10);
    for factor in [0.3f64, 1.0, 3.0] {
        group.bench_with_input(
            BenchmarkId::new("factor", format!("{factor}")),
            &factor,
            |b, &f| {
                b.iter(|| {
                    let mut cfg = ControllerConfig::paper_defaults();
                    cfg.increase_factor = f;
                    run_iterations(cfg, 20);
                })
            },
        );
    }
    group.finish();
}

fn bench_monitor_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mode");
    group.sample_size(10);
    for (name, mode) in [
        ("monitor_only", ControlMode::MonitorOnly),
        ("full_control", ControlMode::Full),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| run_iterations(ControllerConfig::paper_defaults().with_mode(mode), 20))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_window,
    bench_history,
    bench_increase_factor,
    bench_monitor_vs_full
);
criterion_main!(benches);
