//! Controller loop cost (§IV.A.2: the paper reports ≈5 ms per 1 s
//! iteration on 80 hosted vCPUs, ≈4 ms of it monitoring).
//!
//! `iteration/*` measures one full six-stage iteration against the
//! in-memory host at several vCPU counts; `stages/*` isolates the
//! estimation and auction machinery on synthetic inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;
use vfc_bench::{dense_host, loaded_host, warm_up};
use vfc_controller::auction::{run_auction, Buyer};
use vfc_controller::controller::IterationReport;
use vfc_controller::credits::Wallet;
use vfc_controller::estimate::trend;
use vfc_controller::{ControlMode, ShardCount};
use vfc_simcore::{Micros, VcpuAddr, VcpuId, VmId};

fn bench_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("iteration");
    for vcpus in [20u32, 80, 160] {
        group.bench_with_input(BenchmarkId::new("full_loop", vcpus), &vcpus, |b, &vcpus| {
            let (mut host, mut ctl) = loaded_host(vcpus, ControlMode::Full);
            warm_up(&mut host, &mut ctl, 5);
            // The daemon's steady-state entry point: one reused report,
            // zero allocations per iteration. Advancing the simulated
            // host is per-sample setup, not controller work: keep it
            // outside the timed window.
            let mut report = IterationReport::default();
            b.iter_custom(|| {
                host.advance_period();
                let t = Instant::now();
                ctl.iterate_into(&mut host, &mut report)
                    .expect("sim backend");
                black_box(&report);
                t.elapsed()
            });
        });
    }
    // Scenario A for comparison: monitoring cost only.
    group.bench_function("monitor_only_80", |b| {
        let (mut host, mut ctl) = loaded_host(80, ControlMode::MonitorOnly);
        warm_up(&mut host, &mut ctl, 5);
        let mut report = IterationReport::default();
        b.iter_custom(|| {
            host.advance_period();
            let t = Instant::now();
            ctl.iterate_into(&mut host, &mut report)
                .expect("sim backend");
            black_box(&report);
            t.elapsed()
        });
    });
    group.finish();
}

/// Dense-host scaling (ROADMAP open item 1): the single-threaded loop
/// at 500/1000/2000 vCPUs, and the sharded parallel loop at the shard
/// counts `ShardCount::Auto` would pick for those densities (4 @ 1000,
/// 8 @ 2000). `full_loop/*` rows pin `Fixed(1)` so they measure the
/// unsharded pipeline even where Auto would shard; `sharded/*` rows run
/// [`Controller::iterate_into_parallel`], whose stage-1/2 fan-out is
/// required by BENCH_controller.json to beat the single-threaded p50 at
/// 1000 vCPUs by ≥ 2x.
fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("iteration");
    for vcpus in [500u32, 1000, 2000] {
        group.bench_with_input(BenchmarkId::new("full_loop", vcpus), &vcpus, |b, &vcpus| {
            let (mut host, mut ctl) = dense_host(vcpus, ShardCount::Fixed(1), ControlMode::Full);
            warm_up(&mut host, &mut ctl, 5);
            let mut report = IterationReport::default();
            b.iter_custom(|| {
                host.advance_period();
                let t = Instant::now();
                ctl.iterate_into(&mut host, &mut report)
                    .expect("sim backend");
                black_box(&report);
                t.elapsed()
            });
        });
    }
    for (vcpus, shards) in [(1000u32, 4u32), (2000, 8)] {
        group.bench_with_input(BenchmarkId::new("sharded", vcpus), &vcpus, |b, &vcpus| {
            let (mut host, mut ctl) =
                dense_host(vcpus, ShardCount::Fixed(shards), ControlMode::Full);
            warm_up(&mut host, &mut ctl, 5);
            let mut report = IterationReport::default();
            b.iter_custom(|| {
                host.advance_period();
                let t = Instant::now();
                ctl.iterate_into_parallel(&mut host, &mut report)
                    .expect("sim backend");
                black_box(&report);
                t.elapsed()
            });
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("stages");

    group.bench_function("trend_n5", |b| {
        let history = [100_000u64, 120_000, 140_000, 160_000, 180_000];
        b.iter(|| black_box(trend(black_box(&history))));
    });

    group.bench_function("auction_80_buyers", |b| {
        // 40 VMs × 2 vCPUs bidding for a 4 M µs market.
        b.iter(|| {
            let mut wallet = Wallet::new();
            let guarantee: HashMap<VmId, Micros> =
                (0..40).map(|i| (VmId::new(i), Micros(208_333))).collect();
            let observations: Vec<_> = (0..40)
                .flat_map(|i| {
                    (0..2).map(move |j| vfc_controller::monitor::VcpuObservation {
                        addr: VcpuAddr::new(VmId::new(i), VcpuId::new(j)),
                        used: Micros(100_000),
                        throttled: Micros::ZERO,
                        last_cpu: vfc_simcore::CpuId::new(0),
                        freq_est: vfc_simcore::MHz(240),
                    })
                })
                .collect();
            wallet.earn(&observations, &guarantee);
            let mut market = Micros(4_000_000);
            let mut buyers: Vec<Buyer> = observations
                .iter()
                .map(|o| Buyer {
                    addr: o.addr,
                    want: Micros(500_000),
                })
                .collect();
            let mut alloc = HashMap::new();
            black_box(run_auction(
                &mut market,
                &mut buyers,
                &mut wallet,
                Micros(100_000),
                &mut alloc,
            ))
        });
    });

    group.finish();
}

/// Event-core replay throughput: the full trace → events → report path
/// the `trace` experiment gates at datacenter scale, shrunk to a bench
/// sample. `replay_60vms_8nodes` is a busy fleet (every node runs its
/// controller every period); `quiet_fleet_40nodes` pins the core claim
/// that idle hosts schedule nothing — 4 busy + 36 idle nodes must cost
/// about the same as 4 busy nodes alone.
fn bench_event_core(c: &mut Criterion) {
    use vfc_cluster::{ClusterManager, EventDrivenCluster, Strategy, SyntheticTrace, TraceVmSpec};
    use vfc_cpusched::topology::NodeSpec;
    use vfc_placement::algo::PlacementAlgorithm;
    use vfc_simcore::MHz;
    use vfc_vmm::VmTemplate;

    let mut group = c.benchmark_group("events");

    let trace = SyntheticTrace::new(60, 60, 7).generate();
    {
        let mgr = ClusterManager::new(
            vec![NodeSpec::custom("bench", 1, 4, 2, MHz(2400)); 8],
            Strategy::FrequencyControl,
            7,
        );
        let mut cluster = EventDrivenCluster::new(mgr).with_algorithm(PlacementAlgorithm::BestFit);
        cluster.load_trace(trace.clone());
        cluster.run_until(60);
        eprintln!(
            "events/replay_60vms_8nodes: {} events per sample",
            cluster.stats().events_processed
        );
    }
    group.bench_function("replay_60vms_8nodes", |b| {
        b.iter_custom(|| {
            let mgr = ClusterManager::new(
                vec![NodeSpec::custom("bench", 1, 4, 2, MHz(2400)); 8],
                Strategy::FrequencyControl,
                7,
            );
            let mut cluster =
                EventDrivenCluster::new(mgr).with_algorithm(PlacementAlgorithm::BestFit);
            cluster.load_trace(trace.clone());
            let t = Instant::now();
            cluster.run_until(60);
            let d = t.elapsed();
            black_box(cluster.stats().events_processed);
            d
        });
    });

    // Datacenter scale: the 1200-node fleet of the `trace` experiment,
    // shrunk to a per-sample trace so the indexed-placement + event-core
    // fast path is timed at full fleet width. The `_serial` twin forces
    // one worker through the same replay; BENCH_controller.json's
    // events_gate compares the two — >= 2x parallel speedup on >= 4
    // cores, <= 1.1x parallel overhead on few-core runners.
    let dc_trace = SyntheticTrace::new(800, 25, 11).generate();
    let dc_nodes = vec![NodeSpec::custom("dc", 1, 4, 2, MHz(2400)); 1200];
    let dc_replay = |cluster_threads: usize| {
        let trace = dc_trace.clone();
        let nodes = dc_nodes.clone();
        move || {
            vfc_cluster::set_parallelism(cluster_threads);
            let mgr = ClusterManager::new(nodes.clone(), Strategy::FrequencyControl, 7);
            let mut cluster =
                EventDrivenCluster::new(mgr).with_algorithm(PlacementAlgorithm::FirstFit);
            cluster.load_trace(trace.clone());
            let t = Instant::now();
            cluster.run_until(25);
            let d = t.elapsed();
            black_box(cluster.stats().events_processed);
            vfc_cluster::set_parallelism(0);
            d
        }
    };
    // Events per replay is a pure function of the fixed trace + seed
    // (stable across machines); BENCH_controller.json pins it as
    // events_per_sample so the gate can print events/s from p50.
    {
        let mgr = ClusterManager::new(dc_nodes.clone(), Strategy::FrequencyControl, 7);
        let mut cluster = EventDrivenCluster::new(mgr).with_algorithm(PlacementAlgorithm::FirstFit);
        cluster.load_trace(dc_trace.clone());
        cluster.run_until(25);
        eprintln!(
            "events/replay_1200nodes: {} events per sample",
            cluster.stats().events_processed
        );
    }
    group.bench_function("replay_1200nodes", |b| {
        let mut sample = dc_replay(0);
        b.iter_custom(&mut sample);
    });
    group.bench_function("replay_1200nodes_serial", |b| {
        let mut sample = dc_replay(1);
        b.iter_custom(&mut sample);
    });

    let quiet: Vec<TraceVmSpec> = (0..8)
        .map(|i| TraceVmSpec {
            trace_id: format!("q-{i}"),
            arrival: 0,
            departure: None,
            template: VmTemplate::new("std", 2, MHz(2400)),
        })
        .collect();
    group.bench_function("quiet_fleet_40nodes", |b| {
        b.iter_custom(|| {
            let mgr = ClusterManager::new(
                vec![NodeSpec::custom("quiet", 1, 2, 2, MHz(2400)); 40],
                Strategy::FrequencyControl,
                7,
            );
            let mut cluster =
                EventDrivenCluster::new(mgr).with_algorithm(PlacementAlgorithm::FirstFit);
            cluster.load_trace(quiet.clone());
            let t = Instant::now();
            cluster.run_until(60);
            let d = t.elapsed();
            black_box(cluster.stats().events_processed);
            d
        });
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_iteration,
    bench_dense,
    bench_stages,
    bench_event_core
);
criterion_main!(benches);
