//! One benchmark per reproduced paper artifact: each measures the cost of
//! regenerating that table/figure's data. The heavy scenarios (Figs.
//! 6–14) run truncated (70 post-scale seconds at quick scale) so `cargo
//! bench` completes in minutes; the `experiments` binary produces the
//! full-length data.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vfc_controller::ControlMode;
use vfc_placement::cluster::ArrivalOrder;
use vfc_scenarios::estimator_figs::{trace, EstimatorFig};
use vfc_scenarios::eval1::{self, NodeKind};
use vfc_scenarios::eval2;
use vfc_scenarios::runner::{run, Scale};
use vfc_scenarios::{cfs_sides, overhead, placement_eval};
use vfc_simcore::Micros;

/// Truncated quick-scale spec for one of Figs. 6–9.
fn eval1_truncated(node: NodeKind, mode: ControlMode) -> vfc_scenarios::ScenarioSpec {
    let mut s = eval1::spec(node, mode, Scale::quick());
    s.duration = Micros(700_000_000); // pre-scale → 70 iterations
    s
}

fn eval2_truncated(mode: ControlMode) -> vfc_scenarios::ScenarioSpec {
    let mut s = eval2::spec(mode, Scale::quick());
    s.duration = Micros(700_000_000);
    s
}

fn bench_tables(c: &mut Criterion) {
    // Tables II/III/V are configuration constructors; Table IV the node
    // presets — all cheap, benched to pin their cost at "free".
    let mut group = c.benchmark_group("tables");
    group.bench_function("table2_table3_specs", |b| {
        b.iter(|| {
            black_box(eval1::spec(
                NodeKind::Chetemi,
                ControlMode::Full,
                Scale::paper(),
            ));
            black_box(eval1::spec(
                NodeKind::Chiclet,
                ControlMode::Full,
                Scale::paper(),
            ));
        })
    });
    group.bench_function("table4_node_specs", |b| {
        b.iter(|| {
            black_box(vfc_cpusched::topology::NodeSpec::chetemi());
            black_box(vfc_cpusched::topology::NodeSpec::chiclet());
        })
    });
    group.bench_function("table5_spec", |b| {
        b.iter(|| black_box(eval2::spec(ControlMode::Full, Scale::paper())))
    });
    group.finish();
}

fn bench_estimator_figs(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_figs");
    group.sample_size(20);
    for (name, fig) in [
        ("fig3_increase", EstimatorFig::Increase),
        ("fig4_decrease", EstimatorFig::Decrease),
        ("fig5_stable", EstimatorFig::Stable),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(trace(fig))));
    }
    group.finish();
}

fn bench_frequency_figs(c: &mut Criterion) {
    let mut group = c.benchmark_group("frequency_figs");
    group.sample_size(10);
    for (name, node, mode) in [
        (
            "fig6_chetemi_A",
            NodeKind::Chetemi,
            ControlMode::MonitorOnly,
        ),
        ("fig7_chetemi_B", NodeKind::Chetemi, ControlMode::Full),
        (
            "fig8_chiclet_A",
            NodeKind::Chiclet,
            ControlMode::MonitorOnly,
        ),
        ("fig9_chiclet_B", NodeKind::Chiclet, ControlMode::Full),
    ] {
        group.bench_function(name, |b| {
            let spec = eval1_truncated(node, mode);
            b.iter(|| black_box(run(&spec)));
        });
    }
    group.finish();
}

fn bench_rate_and_eval2_figs(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval2_and_rate_figs");
    group.sample_size(10);
    // Figs. 10/11/14 derive from the same runs as 6–9/12–13; the bench
    // measures the run + rate extraction.
    group.bench_function("fig10_fig11_rates", |b| {
        let spec = eval1_truncated(NodeKind::Chetemi, ControlMode::Full);
        b.iter(|| {
            let out = run(&spec);
            black_box(out.iterations_reported("small", "compress"));
        });
    });
    for (name, mode) in [
        ("fig12_A", ControlMode::MonitorOnly),
        ("fig13_B", ControlMode::Full),
    ] {
        group.bench_function(name, |b| {
            let spec = eval2_truncated(mode);
            b.iter(|| black_box(run(&spec)));
        });
    }
    group.finish();
}

fn bench_studies(c: &mut Criterion) {
    let mut group = c.benchmark_group("studies");
    group.sample_size(10);
    group.bench_function("placement_study", |b| {
        b.iter(|| black_box(placement_eval::study(ArrivalOrder::RoundRobin)))
    });
    group.bench_function("cfs_side_experiments", |b| {
        b.iter(|| {
            black_box(cfs_sides::experiment_a());
            black_box(cfs_sides::experiment_b());
        })
    });
    group.bench_function("overhead_measurement", |b| {
        b.iter(|| black_box(overhead::measure(80, 3)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_estimator_figs,
    bench_frequency_figs,
    bench_rate_and_eval2_figs,
    bench_studies
);
criterion_main!(benches);
