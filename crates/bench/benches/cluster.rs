//! Cluster-manager throughput: cost of one cluster period (node
//! advancement is rayon-parallel) at several cluster sizes and
//! strategies, plus the end-to-end strategy comparison at test scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vfc_cluster::{ClusterManager, Strategy};
use vfc_cpusched::topology::NodeSpec;
use vfc_simcore::MHz;
use vfc_vmm::workload::SteadyDemand;
use vfc_vmm::VmTemplate;

fn populated(nodes: usize, vms_per_node: usize, strategy: Strategy) -> ClusterManager {
    let mut manager = ClusterManager::new(vec![NodeSpec::chetemi(); nodes], strategy, 42);
    for _ in 0..nodes * vms_per_node {
        let _ = manager.deploy(
            &VmTemplate::new("std", 2, MHz(1000)),
            Box::new(SteadyDemand::full()),
        );
    }
    manager
}

fn bench_run_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_period");
    group.sample_size(10);
    for nodes in [4usize, 12, 22] {
        group.bench_with_input(
            BenchmarkId::new("freq_control_nodes", nodes),
            &nodes,
            |b, &nodes| {
                let mut manager = populated(nodes, 8, Strategy::FrequencyControl);
                // Warm up past the ramp.
                for _ in 0..3 {
                    manager.run_period();
                }
                b.iter(|| {
                    manager.run_period();
                    black_box(())
                });
            },
        );
    }
    group.bench_function("migration_nodes_12", |b| {
        let mut manager = populated(12, 8, Strategy::migration_default());
        for _ in 0..3 {
            manager.run_period();
        }
        b.iter(|| {
            manager.run_period();
            black_box(())
        });
    });
    group.finish();
}

fn bench_strategy_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_comparison");
    group.sample_size(10);
    group.bench_function("quick_three_way", |b| {
        b.iter(|| {
            black_box(vfc_scenarios::cluster_eval::compare(
                vfc_scenarios::cluster_eval::ClusterScenario::quick(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_run_period, bench_strategy_comparison);
criterion_main!(benches);
