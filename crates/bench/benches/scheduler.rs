//! Host engine cost: one 100 ms scheduling tick at several population
//! sizes, and the water-filling fair share in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vfc_cgroupfs::tree::{CgroupTree, ROOT};
use vfc_cpusched::engine::Engine;
use vfc_cpusched::fair::{water_fill, Entity};
use vfc_cpusched::topology::NodeSpec;
use vfc_simcore::{FastMap, Micros, Tid};

/// Tree of `vms` two-level scopes with `vcpus` single-thread leaves each.
fn build(vms: u32, vcpus: u32) -> (CgroupTree, FastMap<Tid, Micros>) {
    let mut tree = CgroupTree::new();
    let mut demands = FastMap::default();
    let mut tid = 100u32;
    for v in 0..vms {
        let scope = tree.mkdir(ROOT, &format!("vm{v}")).expect("fresh name");
        for j in 0..vcpus {
            let leaf = tree.mkdir(scope, &format!("vcpu{j}")).expect("fresh name");
            tree.attach_thread(leaf, Tid::new(tid));
            demands.insert(Tid::new(tid), Micros(100_000));
            tid += 1;
        }
    }
    (tree, demands)
}

fn bench_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_tick");
    for (vms, vcpus) in [(10u32, 2u32), (30, 2), (30, 4), (60, 4)] {
        let threads = vms * vcpus;
        group.bench_with_input(
            BenchmarkId::new("saturated", format!("{threads}threads")),
            &(vms, vcpus),
            |b, &(vms, vcpus)| {
                let spec = NodeSpec::chetemi();
                let mut engine = Engine::new(spec, 42);
                let (mut tree, demands) = build(vms, vcpus);
                b.iter(|| black_box(engine.tick(&mut tree, &demands)));
            },
        );
    }
    group.finish();
}

fn bench_water_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("water_fill");
    for n in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("entities", n), &n, |b, &n| {
            let entities: Vec<Entity> = (0..n)
                .map(|i| Entity::new(100, 10_000 + (i as u64 * 7919) % 90_000))
                .collect();
            b.iter(|| black_box(water_fill(black_box(1_000_000), &entities)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tick, bench_water_fill);
criterion_main!(benches);
