//! §IV.C placement throughput: Best/First-Fit of the paper's 400-VM
//! workload over the 22-node cluster under both constraint modes, plus a
//! parallel multi-order sweep (crossbeam scoped threads via rayon-free
//! std::thread::scope) as used by the harness to report several arrival
//! orders at once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vfc_placement::algo::{PlacementAlgorithm, Placer};
use vfc_placement::cluster::{paper_workload, ArrivalOrder, Cluster};
use vfc_placement::constraint::ConstraintMode;

fn bench_placement(c: &mut Criterion) {
    let cluster = Cluster::paper_cluster();
    let workload = paper_workload(ArrivalOrder::RoundRobin);

    let mut group = c.benchmark_group("place_400_vms");
    for (label, algo, mode) in [
        (
            "bestfit_frequency",
            PlacementAlgorithm::BestFit,
            ConstraintMode::Frequency,
        ),
        (
            "bestfit_core_count",
            PlacementAlgorithm::BestFit,
            ConstraintMode::core_count(),
        ),
        (
            "firstfit_frequency",
            PlacementAlgorithm::FirstFit,
            ConstraintMode::Frequency,
        ),
        (
            "worstfit_frequency",
            PlacementAlgorithm::WorstFit,
            ConstraintMode::Frequency,
        ),
    ] {
        group.bench_function(label, |b| {
            let placer = Placer::new(algo, mode);
            b.iter(|| black_box(placer.place(&cluster.nodes, &workload)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("placement_study");
    group.sample_size(20);
    group.bench_function("three_orders_sequential", |b| {
        b.iter(|| {
            for order in [
                ArrivalOrder::Grouped,
                ArrivalOrder::RoundRobin,
                ArrivalOrder::Shuffled(42),
            ] {
                black_box(vfc_scenarios::placement_eval::study(order));
            }
        });
    });
    group.bench_function("three_orders_parallel", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                let handles: Vec<_> = [
                    ArrivalOrder::Grouped,
                    ArrivalOrder::RoundRobin,
                    ArrivalOrder::Shuffled(42),
                ]
                .into_iter()
                .map(|order| s.spawn(move || vfc_scenarios::placement_eval::study(order)))
                .collect();
                for h in handles {
                    black_box(h.join().expect("study thread"));
                }
            });
        });
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // How placement cost scales with cluster size (nodes replicated).
    let mut group = c.benchmark_group("placement_scaling");
    let workload = paper_workload(ArrivalOrder::RoundRobin);
    for factor in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("cluster_x", factor),
            &factor,
            |b, &factor| {
                let mut nodes = Vec::new();
                for _ in 0..factor {
                    nodes.extend(Cluster::paper_cluster().nodes);
                }
                let placer = Placer::new(PlacementAlgorithm::BestFit, ConstraintMode::Frequency);
                b.iter(|| black_box(placer.place(&nodes, &workload)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_placement, bench_scaling);
criterion_main!(benches);
