#![warn(missing_docs)]

//! Host CPU substrate: everything below the cgroup interface.
//!
//! The paper runs on bare-metal Linux; this crate recreates the pieces of
//! that stack the virtual frequency controller interacts with, directly or
//! through side effects:
//!
//! * [`topology`] — SMT CPU topology ([`topology::NodeSpec`]) with the two
//!   Grid'5000 nodes from Table IV (*chetemi*, *chiclet*) as presets;
//! * [`fair`] — weighted water-filling fair share, the analytical core of
//!   a CFS-like scheduler: work-conserving, cap-respecting, weight-
//!   proportional;
//! * [`engine`] — the per-tick scheduling engine: hierarchical fair share
//!   over a cgroup tree with `cpu.max` quota throttling, thread→core
//!   placement, per-thread work accounting in hardware cycles;
//! * [`place`] — sticky thread placement (highly-loaded threads migrate
//!   rarely — the assumption §III.B.1 of the paper relies on);
//! * [`dvfs`] — frequency governors with seeded measurement noise
//!   (reproducing the paper's 16–150 MHz core-frequency variance);
//! * [`power`] — a standard idle+dynamic node power model used by the
//!   placement evaluation.

pub mod dvfs;
pub mod engine;
pub mod fair;
pub mod place;
pub mod power;
pub mod topology;

pub use dvfs::{Governor, GovernorKind};
pub use engine::{CacheModel, Engine, ThreadSlice, TickOutcome};
pub use topology::NodeSpec;
