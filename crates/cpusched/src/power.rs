//! Node power model.
//!
//! Used by the placement evaluation (§IV.C) to translate "7 of 22 nodes
//! can be shut down" into energy figures, and by the host simulator's
//! per-tick telemetry. The model is the standard affine-plus-dynamic
//! form used across the consolidation literature the paper cites:
//!
//! ```text
//! P(u, f) = P_idle + (P_max − P_idle) · u · (f / f_max)
//! ```
//!
//! with `u` the node utilization and `f` the average active-core
//! frequency. The utilization term is the standard *affine* server-power
//! model of the consolidation literature (Beloglazov-style): a large idle
//! floor plus a dynamic part linear in utilization — the regime in which
//! shutting down emptied nodes saves their full idle power, the premise
//! of every consolidation work the paper cites. The frequency term is
//! also linear: in
//! the 1.2–2.4 GHz operating range of server parts the supply voltage
//! barely scales and uncore power dominates, so measured node power grows
//! roughly linearly with frequency. A linear term also gives
//! `P(f)/f = P_idle/f + const`, strictly decreasing in `f`, i.e. energy
//! per unit of work is minimized at high frequency — the observation
//! (\[12\] in the paper) that wasting compute capacity can cost more energy
//! than finishing fast.

use crate::topology::NodeSpec;
use vfc_simcore::{MHz, Micros};

/// Utilization exponent of the power curve (1.0 = affine model).
const UTIL_EXP: f64 = 1.0;

/// Instantaneous node power draw in Watts.
///
/// `util` ∈ [0, 1] is the fraction of hardware-thread time in use; `freq`
/// is the average frequency of the active cores.
pub fn node_power_w(spec: &NodeSpec, util: f64, freq: MHz) -> f64 {
    let util = util.clamp(0.0, 1.0);
    let f_ratio = if spec.max_mhz.as_u32() == 0 {
        0.0
    } else {
        (freq.as_f64() / spec.max_mhz.as_f64()).clamp(0.0, 1.02)
    };
    spec.idle_power_w + (spec.max_power_w - spec.idle_power_w) * util.powf(UTIL_EXP) * f_ratio
}

/// Energy in Joules consumed over `wall` of wall-clock time at constant
/// `util`/`freq`.
pub fn energy_j(spec: &NodeSpec, util: f64, freq: MHz, wall: Micros) -> f64 {
    node_power_w(spec, util, freq) * wall.as_secs_f64()
}

/// Energy per unit of work (Joules per 10⁹ hardware cycles) when the node
/// runs `active_threads` threads at frequency `freq`.
///
/// Decreasing in `freq` for realistic parameters: finishing the same work
/// faster wins despite the higher draw, because the idle floor dominates.
pub fn energy_per_gcycle(spec: &NodeSpec, active_threads: u32, freq: MHz) -> f64 {
    if freq.as_u32() == 0 || active_threads == 0 {
        return f64::INFINITY;
    }
    let util = (active_threads as f64 / spec.nr_threads() as f64).clamp(0.0, 1.0);
    let p = node_power_w(spec, util, freq);
    // Work rate: active_threads × freq MHz = active × freq × 10⁶ cycles/s.
    let gcycles_per_s = active_threads as f64 * freq.as_f64() / 1_000.0;
    p / gcycles_per_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_node_draws_idle_power() {
        let spec = NodeSpec::chetemi();
        let p = node_power_w(&spec, 0.0, MHz(1200));
        assert!((p - spec.idle_power_w).abs() < 1e-9);
    }

    #[test]
    fn full_node_draws_max_power() {
        let spec = NodeSpec::chetemi();
        let p = node_power_w(&spec, 1.0, spec.max_mhz);
        assert!((p - spec.max_power_w).abs() < 1e-9);
    }

    #[test]
    fn power_is_monotone_in_util_and_freq() {
        let spec = NodeSpec::chiclet();
        let mut prev = 0.0;
        for u in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = node_power_w(&spec, u, spec.max_mhz);
            assert!(p >= prev);
            prev = p;
        }
        assert!(node_power_w(&spec, 0.5, MHz(1200)) < node_power_w(&spec, 0.5, MHz(2400)));
    }

    #[test]
    fn energy_j_scales_with_time() {
        let spec = NodeSpec::chetemi();
        let e1 = energy_j(&spec, 0.5, MHz(2400), Micros::from_secs(1));
        let e2 = energy_j(&spec, 0.5, MHz(2400), Micros::from_secs(2));
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn high_frequency_is_more_energy_efficient() {
        // The paper's [12]: CPUs are more efficient at high frequency —
        // energy per cycle drops as frequency rises (idle floor amortized).
        let spec = NodeSpec::chetemi();
        let threads = spec.nr_threads();
        let slow = energy_per_gcycle(&spec, threads, MHz(1200));
        let fast = energy_per_gcycle(&spec, threads, MHz(2400));
        assert!(
            fast < slow,
            "expected high freq to be more efficient: {fast} vs {slow}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        let spec = NodeSpec::chetemi();
        assert!(energy_per_gcycle(&spec, 0, MHz(2400)).is_infinite());
        assert!(energy_per_gcycle(&spec, 4, MHz(0)).is_infinite());
        // Utilization outside [0,1] is clamped, not propagated.
        let p = node_power_w(&spec, 7.0, spec.max_mhz);
        assert!((p - spec.max_power_w).abs() < 1e-9);
    }
}
