//! Thread → core placement.
//!
//! §III.B.1 of the paper rests on one scheduler behaviour: *vCPU threads
//! with high workload are moved less often than vCPU threads with low
//! workload* — which is why reading `/proc/{tid}/stat` once per second is
//! enough to locate the busy threads whose frequency matters. The placer
//! reproduces exactly that: a thread's probability of migrating away from
//! its previous core decreases linearly with its load.
//!
//! Within a tick a thread may run on several cores (load balancing); the
//! *primary* core — where it spent the most time — is what `/proc` reports
//! in field 39, and is what we record.

use std::collections::HashMap;
use vfc_simcore::{CpuId, FastMap, Micros, SplitMix64, Tid};

/// Per-thread placement result for one tick.
#[derive(Debug, Clone)]
pub struct ThreadPlacement {
    /// Time run on each core, largest first.
    pub slices: Vec<(CpuId, Micros)>,
}

impl ThreadPlacement {
    /// The core the thread spent the most time on — what `/proc/{tid}/stat`
    /// would show at the end of the tick.
    pub fn primary(&self) -> CpuId {
        self.slices
            .first()
            .map(|(c, _)| *c)
            .unwrap_or(CpuId::new(0))
    }

    /// Total time run.
    pub fn total(&self) -> Micros {
        self.slices.iter().map(|(_, t)| *t).sum()
    }
}

/// One thread's placement inside a [`PlacementBuf`]: a `(start, len)`
/// window into the buffer's flat slice array.
#[derive(Debug, Clone, Copy)]
pub struct PlacedThread {
    /// The thread.
    pub tid: Tid,
    start: u32,
    len: u32,
}

/// Reusable output and scratch buffers for [`Placer::place_into`].
///
/// The per-tick engine calls the placer once per host tick; routing the
/// result through one flat buffer (instead of a fresh
/// `HashMap<Tid, ThreadPlacement>` with a `Vec` per thread) removes a
/// per-thread allocation from every simulated tick.
#[derive(Debug, Default)]
pub struct PlacementBuf {
    /// One entry per placed thread, in packing order (largest first).
    pub entries: Vec<PlacedThread>,
    /// Busy time per core.
    pub core_busy: Vec<Micros>,
    slices: Vec<(CpuId, Micros)>,
    order: Vec<(Tid, Micros)>,
    remaining: Vec<Micros>,
}

impl PlacementBuf {
    /// Per-core time slices of one entry, largest first.
    pub fn slices_of(&self, e: &PlacedThread) -> &[(CpuId, Micros)] {
        &self.slices[e.start as usize..(e.start + e.len) as usize]
    }
}

/// Sticky, load-aware placer.
#[derive(Debug)]
pub struct Placer {
    nr_cpus: u32,
    /// Preferred (last primary) core per thread.
    sticky: FastMap<Tid, CpuId>,
    /// Base migration probability for an idle thread; a fully-loaded
    /// thread migrates with probability `base × (1 − load)² ≈ 0`.
    base_migration: f64,
    rng: SplitMix64,
}

impl Placer {
    /// Placer for a node with `nr_cpus` hardware threads.
    pub fn new(nr_cpus: u32, seed: u64) -> Self {
        Placer {
            nr_cpus,
            sticky: FastMap::default(),
            base_migration: 0.8,
            rng: SplitMix64::new(seed),
        }
    }

    /// Override the idle-thread migration probability (default 0.8/tick).
    pub fn with_base_migration(mut self, p: f64) -> Self {
        self.base_migration = p.clamp(0.0, 1.0);
        self
    }

    /// Place one tick's allocations onto cores.
    ///
    /// `allocs` is (thread, granted CPU time this tick); `tick` is the tick
    /// length (per-core capacity). Returns placements plus per-core busy
    /// time. Threads are packed largest-first; a thread whose preferred
    /// core lacks room spills the remainder onto the emptiest cores, like
    /// CFS load balancing does.
    pub fn place(
        &mut self,
        allocs: &[(Tid, Micros)],
        tick: Micros,
    ) -> (HashMap<Tid, ThreadPlacement>, Vec<Micros>) {
        let mut buf = PlacementBuf::default();
        self.place_into(allocs, tick, &mut buf);
        let mut out = HashMap::with_capacity(buf.entries.len());
        for e in &buf.entries {
            out.insert(
                e.tid,
                ThreadPlacement {
                    slices: buf.slices_of(e).to_vec(),
                },
            );
        }
        (out, buf.core_busy)
    }

    /// [`Placer::place`] into a caller-owned [`PlacementBuf`]. Packing
    /// order, tie-breaks, and RNG draw sequence are identical to
    /// [`Placer::place`]; only the result representation differs.
    pub fn place_into(&mut self, allocs: &[(Tid, Micros)], tick: Micros, buf: &mut PlacementBuf) {
        let n = self.nr_cpus as usize;
        buf.entries.clear();
        buf.slices.clear();
        buf.remaining.clear();
        buf.remaining.resize(n, tick);

        // Largest first for tight packing; tid tiebreak for determinism.
        buf.order.clear();
        buf.order.extend_from_slice(allocs);
        buf.order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        for oi in 0..buf.order.len() {
            let (tid, want) = buf.order[oi];
            let start = buf.slices.len() as u32;
            if want.is_zero() {
                // Idle threads still have a location; maybe migrate it.
                let cur = *self
                    .sticky
                    .entry(tid)
                    .or_insert_with(|| CpuId::new((tid.as_u32()) % self.nr_cpus.max(1)));
                let cur = if self.rng.chance(self.base_migration) {
                    CpuId::new(self.rng.next_below(self.nr_cpus as u64) as u32)
                } else {
                    cur
                };
                self.sticky.insert(tid, cur);
                buf.slices.push((cur, Micros::ZERO));
                buf.entries.push(PlacedThread { tid, start, len: 1 });
                continue;
            }

            let load = want.ratio_of(tick).clamp(0.0, 1.0);
            let p_migrate = self.base_migration * (1.0 - load) * (1.0 - load);
            let preferred = match self.sticky.get(&tid) {
                Some(&c) if !self.rng.chance(p_migrate) => Some(c),
                _ => None,
            };

            let mut left = want;

            // Try the sticky core first.
            if let Some(c) = preferred {
                let got = left.min(buf.remaining[c.as_usize()]);
                if !got.is_zero() {
                    buf.remaining[c.as_usize()] -= got;
                    buf.slices.push((c, got));
                    left -= got;
                }
            }

            // Spill to the emptiest cores.
            while !left.is_zero() {
                let (idx, &room) = buf
                    .remaining
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, r)| (**r, usize::MAX - *i))
                    .expect("at least one core");
                if room.is_zero() {
                    // Node over-committed beyond capacity: drop remainder.
                    // (The fair scheduler never allocates more than
                    // nr_cpus × tick, so this is unreachable from the
                    // engine; kept for standalone robustness.)
                    break;
                }
                let got = left.min(room);
                buf.remaining[idx] -= got;
                buf.slices.push((CpuId::new(idx as u32), got));
                left -= got;
            }

            let slices = &mut buf.slices[start as usize..];
            slices.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            if let Some((primary, _)) = slices.first() {
                self.sticky.insert(tid, *primary);
            }
            let len = buf.slices.len() as u32 - start;
            buf.entries.push(PlacedThread { tid, start, len });
        }

        buf.core_busy.clear();
        buf.core_busy
            .extend(buf.remaining.iter().map(|r| tick - *r));
    }

    /// Last primary core of a thread (procfs emulation between ticks).
    pub fn last_cpu(&self, tid: Tid) -> Option<CpuId> {
        self.sticky.get(&tid).copied()
    }

    /// Count of migrations is not tracked directly; expose stickiness for
    /// tests via the preferred-core table size.
    pub fn tracked_threads(&self) -> usize {
        self.sticky.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Micros = Micros(100_000);

    fn total_busy(busy: &[Micros]) -> Micros {
        busy.iter().copied().sum()
    }

    #[test]
    fn single_thread_fits_one_core() {
        let mut p = Placer::new(4, 1);
        let (out, busy) = p.place(&[(Tid::new(1), Micros(60_000))], TICK);
        let pl = &out[&Tid::new(1)];
        assert_eq!(pl.slices.len(), 1);
        assert_eq!(pl.total(), Micros(60_000));
        assert_eq!(total_busy(&busy), Micros(60_000));
    }

    #[test]
    fn full_load_threads_fill_all_cores() {
        let mut p = Placer::new(2, 1);
        let allocs: Vec<_> = (0..2).map(|i| (Tid::new(i), TICK)).collect();
        let (out, busy) = p.place(&allocs, TICK);
        assert_eq!(total_busy(&busy), Micros(200_000));
        let cores: Vec<CpuId> = out.values().map(|pl| pl.primary()).collect();
        assert_ne!(cores[0], cores[1], "two full threads on distinct cores");
    }

    #[test]
    fn oversized_demand_splits_across_cores() {
        // 3 threads of 80k on 2 cores (200k capacity): 240k demanded but
        // the engine would never allocate that; here allocs are already
        // feasible: 70k+70k+60k = 200k.
        let mut p = Placer::new(2, 1);
        let allocs = vec![
            (Tid::new(1), Micros(70_000)),
            (Tid::new(2), Micros(70_000)),
            (Tid::new(3), Micros(60_000)),
        ];
        let (out, busy) = p.place(&allocs, TICK);
        assert_eq!(total_busy(&busy), Micros(200_000));
        // Everyone got everything they asked for.
        for (tid, want) in allocs {
            assert_eq!(out[&tid].total(), want);
        }
        // The last-placed thread must have been split.
        let split = out.values().filter(|pl| pl.slices.len() > 1).count();
        assert_eq!(split, 1);
    }

    #[test]
    fn busy_threads_are_sticky() {
        let mut p = Placer::new(8, 7);
        let tid = Tid::new(9);
        let (out, _) = p.place(&[(tid, TICK)], TICK);
        let first = out[&tid].primary();
        let mut moved = 0;
        for _ in 0..100 {
            let (out, _) = p.place(&[(tid, TICK)], TICK);
            if out[&tid].primary() != first {
                moved += 1;
            }
        }
        assert_eq!(moved, 0, "a fully-loaded thread never migrates");
    }

    #[test]
    fn idle_threads_wander() {
        let mut p = Placer::new(8, 7);
        let tid = Tid::new(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let (out, _) = p.place(&[(tid, Micros::ZERO)], TICK);
            seen.insert(out[&tid].primary());
        }
        assert!(seen.len() > 3, "idle thread visited {} cores", seen.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut p = Placer::new(4, 99);
            let allocs: Vec<_> = (0..6)
                .map(|i| (Tid::new(i), Micros(30_000 + 1000 * i as u64)))
                .collect();
            let mut trace = Vec::new();
            for _ in 0..20 {
                let (out, _) = p.place(&allocs, TICK);
                let mut v: Vec<_> = out.iter().map(|(t, pl)| (*t, pl.primary())).collect();
                v.sort();
                trace.push(v);
            }
            trace
        };
        assert_eq!(run(), run());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn prop_placement_conserves_time(
                allocs in proptest::collection::vec(0u64..100_000, 0..24),
                nr_cpus in 1u32..8,
                seed in 0u64..1000,
            ) {
                // Clamp total to node capacity like the engine guarantees.
                let capacity = nr_cpus as u64 * TICK.as_u64();
                let mut feasible = Vec::new();
                let mut budget = capacity;
                for (i, a) in allocs.iter().enumerate() {
                    let a = (*a).min(TICK.as_u64()).min(budget);
                    budget -= a;
                    feasible.push((Tid::new(i as u32), Micros(a)));
                }

                let mut placer = Placer::new(nr_cpus, seed);
                let (out, busy) = placer.place(&feasible, TICK);

                // Every thread got exactly its allocation.
                for (tid, want) in &feasible {
                    prop_assert_eq!(out[tid].total(), *want);
                }
                // No core is over wall clock; busy matches slices.
                let mut per_core = vec![0u64; nr_cpus as usize];
                for placement in out.values() {
                    for (cpu, us) in &placement.slices {
                        per_core[cpu.as_usize()] += us.as_u64();
                    }
                }
                for (i, b) in busy.iter().enumerate() {
                    prop_assert_eq!(b.as_u64(), per_core[i]);
                    prop_assert!(b.as_u64() <= TICK.as_u64());
                }
                // Primary core is where the thread ran the most.
                for placement in out.values() {
                    if let Some((_, first)) = placement.slices.first() {
                        for (_, rest) in &placement.slices[1..] {
                            prop_assert!(first >= rest);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zero_alloc_thread_reports_a_location() {
        let mut p = Placer::new(4, 3);
        let (out, busy) = p.place(&[(Tid::new(5), Micros::ZERO)], TICK);
        assert_eq!(out[&Tid::new(5)].total(), Micros::ZERO);
        assert_eq!(total_busy(&busy), Micros::ZERO);
        assert!(out[&Tid::new(5)].primary().as_u32() < 4);
    }
}
