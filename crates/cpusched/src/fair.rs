//! Weighted water-filling fair share.
//!
//! This is the analytical heart of the CFS-like scheduler: given a
//! capacity `C` and entities with weights `w_i` and caps `cap_i`
//! (demand and/or quota), compute allocations `a_i` such that
//!
//! 1. `a_i ≤ cap_i` (never allocate what cannot be used),
//! 2. `Σ a_i ≤ C`,
//! 3. **work conservation** — if `Σ cap_i ≥ C` then `Σ a_i = C`,
//! 4. **weighted fairness** — unsaturated entities receive shares
//!    proportional to their weights (progressive filling / max-min
//!    fairness).
//!
//! The same routine is applied at every level of the cgroup hierarchy:
//! among the VM scopes of `machine.slice` (equal weights by default —
//! which is exactly why, in the paper's scenario A, CFS shares *per VM*
//! rather than per vCPU), and among the vCPU groups inside a VM.

/// One entity competing for capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entity {
    /// CFS weight (`cpu.weight`; default 100).
    pub weight: u32,
    /// Upper bound on the allocation (µs): min(demand, quota budget, …).
    pub cap: u64,
}

impl Entity {
    /// Entity with the given CFS weight and allocation cap.
    pub fn new(weight: u32, cap: u64) -> Self {
        Entity { weight, cap }
    }
}

/// Reusable scratch for [`water_fill_into`]: the active/next index lists
/// that [`water_fill`] would otherwise allocate per round.
#[derive(Debug, Default)]
pub struct FillScratch {
    active: Vec<usize>,
    next: Vec<usize>,
}

/// Progressive-filling allocation. See module docs for invariants.
///
/// Runs in `O(k·n)` where `k` is the number of filling rounds (bounded by
/// the number of distinct saturation events, ≤ n). Entities with zero
/// weight receive nothing until all positively-weighted entities are
/// saturated, then share the remainder equally (degenerate but total).
pub fn water_fill(capacity: u64, entities: &[Entity]) -> Vec<u64> {
    let mut alloc = Vec::new();
    let mut scratch = FillScratch::default();
    water_fill_into(capacity, entities, &mut alloc, &mut scratch);
    alloc
}

/// [`water_fill`] into caller-owned buffers. `alloc` is cleared and
/// resized to `entities.len()`; `scratch` holds the round bookkeeping.
/// The per-tick engine calls this at every hierarchy level, so reusing
/// the buffers removes the dominant allocation in the share pass.
pub fn water_fill_into(
    capacity: u64,
    entities: &[Entity],
    alloc: &mut Vec<u64>,
    scratch: &mut FillScratch,
) {
    let n = entities.len();
    alloc.clear();
    alloc.resize(n, 0);
    if n == 0 || capacity == 0 {
        return;
    }

    let mut remaining = capacity.min(
        entities
            .iter()
            .fold(0u64, |acc, e| acc.saturating_add(e.cap)),
    );
    // Active = not yet saturated.
    let FillScratch { active, next } = scratch;
    active.clear();
    active.extend((0..n).filter(|&i| entities[i].cap > 0));

    while remaining > 0 && !active.is_empty() {
        let total_weight: u64 = active.iter().map(|&i| entities[i].weight as u64).sum();
        next.clear();
        let mut distributed = 0u64;

        if total_weight == 0 {
            // All remaining entities have zero weight: share equally.
            let share = remaining / active.len() as u64;
            if share == 0 {
                // Fewer µs than entities: hand out 1 µs each, front first.
                for &i in active.iter().take(remaining as usize) {
                    alloc[i] += 1;
                }
                return;
            }
            for &i in active.iter() {
                let headroom = entities[i].cap - alloc[i];
                let got = share.min(headroom);
                alloc[i] += got;
                distributed += got;
                if alloc[i] < entities[i].cap {
                    next.push(i);
                }
            }
        } else {
            for &i in active.iter() {
                let fair =
                    (remaining as u128 * entities[i].weight as u128 / total_weight as u128) as u64;
                let headroom = entities[i].cap - alloc[i];
                let got = fair.min(headroom);
                alloc[i] += got;
                distributed += got;
                if alloc[i] < entities[i].cap {
                    next.push(i);
                }
            }
        }

        if distributed == 0 {
            // Integer-division dust: hand out 1 µs per unsaturated entity,
            // round-robin, until the dust is gone or everyone saturates.
            'dust: loop {
                let mut progressed = false;
                for &i in next.iter() {
                    if remaining == 0 {
                        break 'dust;
                    }
                    if alloc[i] < entities[i].cap {
                        alloc[i] += 1;
                        remaining -= 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            break;
        }

        remaining -= distributed;
        std::mem::swap(active, next);
    }
}

/// Convenience wrapper: equal weights.
pub fn water_fill_equal(capacity: u64, caps: &[u64]) -> Vec<u64> {
    let entities: Vec<Entity> = caps.iter().map(|&c| Entity::new(100, c)).collect();
    water_fill(capacity, &entities)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_zero_capacity() {
        assert!(water_fill(100, &[]).is_empty());
        assert_eq!(water_fill(0, &[Entity::new(100, 50)]), vec![0]);
    }

    #[test]
    fn equal_weights_split_equally() {
        let e = vec![Entity::new(100, 1000); 4];
        assert_eq!(water_fill(400, &e), vec![100; 4]);
    }

    #[test]
    fn surplus_from_small_demand_is_redistributed() {
        // One entity wants only 10; the other two absorb its surplus.
        let e = vec![
            Entity::new(100, 10),
            Entity::new(100, 1000),
            Entity::new(100, 1000),
        ];
        let a = water_fill(310, &e);
        assert_eq!(a[0], 10);
        assert_eq!(a[1], 150);
        assert_eq!(a[2], 150);
    }

    #[test]
    fn weights_are_respected() {
        // 2:1:1 weights, ample caps.
        let e = vec![
            Entity::new(200, 10_000),
            Entity::new(100, 10_000),
            Entity::new(100, 10_000),
        ];
        let a = water_fill(1000, &e);
        assert_eq!(a, vec![500, 250, 250]);
    }

    #[test]
    fn paper_example_fig1() {
        // Fig. 1: thread a has twice the CPU time of b and c on one core
        // with 10^6 cycles: 0.5 M / 0.25 M / 0.25 M.
        let e = vec![
            Entity::new(200, u64::MAX),
            Entity::new(100, u64::MAX),
            Entity::new(100, u64::MAX),
        ];
        let a = water_fill(1_000_000, &e);
        assert_eq!(a, vec![500_000, 250_000, 250_000]);
    }

    #[test]
    fn under_demand_is_not_inflated() {
        let e = vec![Entity::new(100, 30), Entity::new(100, 40)];
        let a = water_fill(1000, &e);
        assert_eq!(a, vec![30, 40]);
    }

    #[test]
    fn zero_weight_entities_get_leftovers_only() {
        let e = vec![Entity::new(0, 100), Entity::new(100, 60)];
        let a = water_fill(100, &e);
        assert_eq!(a[1], 60, "weighted entity saturates first");
        assert_eq!(a[0], 40, "zero-weight gets the leftover");
    }

    #[test]
    fn dust_is_distributed() {
        // 7 µs among 3 equal entities: 2/2/2 then 1 more to one of them.
        let a = water_fill_equal(7, &[100, 100, 100]);
        assert_eq!(a.iter().sum::<u64>(), 7);
        assert!(a.iter().all(|&x| x == 2 || x == 3));
    }

    #[test]
    fn single_entity_takes_min_of_cap_and_capacity() {
        assert_eq!(water_fill_equal(100, &[250]), vec![100]);
        assert_eq!(water_fill_equal(400, &[250]), vec![250]);
    }

    proptest! {
        #[test]
        fn prop_invariants(
            capacity in 0u64..5_000_000,
            caps in proptest::collection::vec(0u64..2_000_000, 0..40),
            weights in proptest::collection::vec(1u32..1000, 0..40),
        ) {
            let n = caps.len().min(weights.len());
            let entities: Vec<Entity> = (0..n)
                .map(|i| Entity::new(weights[i], caps[i]))
                .collect();
            let alloc = water_fill(capacity, &entities);

            // (1) caps respected
            for (a, e) in alloc.iter().zip(&entities) {
                prop_assert!(*a <= e.cap);
            }
            // (2) capacity respected
            let total: u64 = alloc.iter().sum();
            prop_assert!(total <= capacity);
            // (3) work conservation
            let cap_sum: u64 = entities.iter().map(|e| e.cap).sum();
            prop_assert_eq!(total, capacity.min(cap_sum));
        }

        #[test]
        fn prop_equal_weights_envy_free(
            capacity in 1u64..1_000_000,
            caps in proptest::collection::vec(1u64..500_000, 2..20),
        ) {
            // With equal weights, an entity with a larger cap never gets
            // less than one with a smaller cap (max-min fairness).
            let alloc = water_fill_equal(capacity, &caps);
            for i in 0..caps.len() {
                for j in 0..caps.len() {
                    if caps[i] >= caps[j] {
                        // allow 1 µs of integer dust
                        prop_assert!(alloc[i] + 1 >= alloc[j],
                            "cap[{}]={} got {}, cap[{}]={} got {}",
                            i, caps[i], alloc[i], j, caps[j], alloc[j]);
                    }
                }
            }
        }
    }
}
