//! Physical node descriptions.
//!
//! Capacity accounting uses **hardware threads** (`k^CPU` in the paper):
//! the evaluation workloads of Tables II/III only satisfy the core
//! splitting constraint (Eq. 7) when SMT threads are counted —
//! 92 000 MHz ≤ 40 × 2 400 MHz on *chetemi* and
//! 147 200 MHz ≤ 64 × 2 400 MHz on *chiclet* — so that is unambiguously
//! what the authors did.

use serde::{Deserialize, Serialize};
use vfc_cgroupfs::backend::TopologyInfo;
use vfc_simcore::{CpuId, MHz};

/// Static description of a physical machine (Table IV row + power data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Node family name (e.g. `chetemi`).
    pub name: String,
    /// Physical CPU packages.
    pub sockets: u32,
    /// Cores per package.
    pub cores_per_socket: u32,
    /// SMT threads per core (2 on both Table IV nodes).
    pub threads_per_core: u32,
    /// Maximum sustained all-core frequency (`F^MAX`, Table IV).
    pub max_mhz: MHz,
    /// Lowest P-state frequency the governor may select.
    pub min_mhz: MHz,
    /// Installed DRAM.
    pub mem_gb: u32,
    /// Power draw with all cores idle, Watts.
    pub idle_power_w: f64,
    /// Power draw with all cores busy at `max_mhz`, Watts.
    pub max_power_w: f64,
}

impl NodeSpec {
    /// A custom node with default power/memory figures.
    pub fn custom(
        name: &str,
        sockets: u32,
        cores_per_socket: u32,
        threads_per_core: u32,
        max_mhz: MHz,
    ) -> Self {
        NodeSpec {
            name: name.to_owned(),
            sockets,
            cores_per_socket,
            threads_per_core,
            max_mhz,
            min_mhz: MHz(max_mhz.as_u32() / 2),
            mem_gb: 64,
            idle_power_w: 100.0,
            max_power_w: 300.0,
        }
    }

    /// *chetemi* (Table IV): 2× Intel Xeon E5-2630 v4, 10 cores/CPU,
    /// 2 threads/core, 2 400 MHz, 256 GB RAM.
    pub fn chetemi() -> Self {
        NodeSpec {
            name: "chetemi".to_owned(),
            sockets: 2,
            cores_per_socket: 10,
            threads_per_core: 2,
            max_mhz: MHz(2400),
            min_mhz: MHz(1200),
            mem_gb: 256,
            idle_power_w: 97.0,
            max_power_w: 330.0,
        }
    }

    /// *chiclet* (Table IV): 2× AMD EPYC 7301, 16 cores/CPU,
    /// 2 threads/core, 2 400 MHz, 128 GB RAM.
    pub fn chiclet() -> Self {
        NodeSpec {
            name: "chiclet".to_owned(),
            sockets: 2,
            cores_per_socket: 16,
            threads_per_core: 2,
            max_mhz: MHz(2400),
            min_mhz: MHz(1200),
            mem_gb: 128,
            idle_power_w: 115.0,
            max_power_w: 350.0,
        }
    }

    /// Schedulable hardware threads (`k^CPU`).
    #[inline]
    pub fn nr_threads(&self) -> u32 {
        self.sockets * self.cores_per_socket * self.threads_per_core
    }

    /// Physical cores (without SMT).
    #[inline]
    pub fn nr_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// All hardware-thread ids of this node.
    pub fn cpus(&self) -> impl Iterator<Item = CpuId> {
        (0..self.nr_threads()).map(CpuId::new)
    }

    /// Total frequency capacity `k^CPU × F^MAX`, the right-hand side of
    /// Eq. 7, in MHz.
    #[inline]
    pub fn freq_capacity_mhz(&self) -> u64 {
        self.nr_threads() as u64 * self.max_mhz.as_u32() as u64
    }

    /// Topology summary for the controller.
    pub fn topology_info(&self) -> TopologyInfo {
        TopologyInfo {
            nr_cpus: self.nr_threads(),
            max_mhz: self.max_mhz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfc_simcore::Micros;

    #[test]
    fn chetemi_matches_table_iv() {
        let n = NodeSpec::chetemi();
        assert_eq!(n.nr_cores(), 20);
        assert_eq!(n.nr_threads(), 40);
        assert_eq!(n.max_mhz, MHz(2400));
        assert_eq!(n.mem_gb, 256);
        assert_eq!(n.freq_capacity_mhz(), 96_000);
    }

    #[test]
    fn chiclet_matches_table_iv() {
        let n = NodeSpec::chiclet();
        assert_eq!(n.nr_cores(), 32);
        assert_eq!(n.nr_threads(), 64);
        assert_eq!(n.freq_capacity_mhz(), 153_600);
        assert_eq!(n.mem_gb, 128);
    }

    #[test]
    fn paper_workloads_satisfy_eq7_with_smt_threads() {
        // Table II on chetemi: 20 small (2 vCPU @ 500) + 10 large (4 @ 1800).
        let demand_chetemi = 20 * 2 * 500 + 10 * 4 * 1800;
        assert!(demand_chetemi as u64 <= NodeSpec::chetemi().freq_capacity_mhz());
        // ... but NOT with physical cores only; this is why k^CPU counts
        // hardware threads.
        assert!(demand_chetemi as u64 > 20 * 2400);

        // Table III on chiclet: 32 small + 16 large.
        let demand_chiclet = 32 * 2 * 500 + 16 * 4 * 1800;
        assert!(demand_chiclet as u64 <= NodeSpec::chiclet().freq_capacity_mhz());

        // "both nodes are equally loaded" — identical load ratios.
        let r1 = demand_chetemi as f64 / NodeSpec::chetemi().freq_capacity_mhz() as f64;
        let r2 = demand_chiclet as f64 / NodeSpec::chiclet().freq_capacity_mhz() as f64;
        assert!((r1 - r2).abs() < 1e-9, "{r1} vs {r2}");
    }

    #[test]
    fn topology_info_conversion() {
        let t = NodeSpec::chetemi().topology_info();
        assert_eq!(t.nr_cpus, 40);
        assert_eq!(t.max_mhz, MHz(2400));
        assert_eq!(t.c_max(Micros::SEC), Micros(40_000_000));
    }

    #[test]
    fn custom_node() {
        let n = NodeSpec::custom("demo", 1, 2, 2, MHz(3000));
        assert_eq!(n.nr_threads(), 4);
        assert_eq!(n.min_mhz, MHz(1500));
        assert_eq!(n.cpus().count(), 4);
    }
}
