//! DVFS governor models.
//!
//! The paper's controller does not *set* hardware frequencies — it reads
//! them (`scaling_cur_freq`) to translate CPU-time shares into MHz
//! estimates. What matters for reproduction is therefore the *observable*
//! behaviour of the platform governor:
//!
//! * loaded cores converge to the all-core maximum ("the Linux scheduler
//!   increases the speed of the CPU cores that are running this kind of
//!   vCPUs — making all the CPU cores running at approximately the same
//!   speed", §III.B.1);
//! * readings carry small measurement noise — the paper reports average
//!   core-frequency variances of 16–150 MHz across its runs.

use serde::{Deserialize, Serialize};
use vfc_simcore::{MHz, SplitMix64};

/// Which frequency policy the host runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GovernorKind {
    /// Pin every core at `max` (the `performance` governor).
    Performance,
    /// Utilization-driven (schedutil-like): `f = min + (max−min)·min(1, 1.25·util)`.
    Schedutil,
    /// Pin every core at `min` (the `powersave` governor).
    Powersave,
}

/// A per-node governor instance with its own noise stream.
#[derive(Debug)]
pub struct Governor {
    kind: GovernorKind,
    min: MHz,
    max: MHz,
    /// Std-dev of the reading noise, MHz.
    noise_std: f64,
    rng: SplitMix64,
}

impl Governor {
    /// Create a governor for the `[min, max]` frequency range with its own noise stream.
    pub fn new(kind: GovernorKind, min: MHz, max: MHz, seed: u64) -> Self {
        Governor {
            kind,
            min,
            max,
            noise_std: 6.0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Override the reading-noise standard deviation (MHz). Zero disables
    /// noise entirely (useful for exact tests).
    pub fn with_noise_std(mut self, std: f64) -> Self {
        self.noise_std = std.max(0.0);
        self
    }

    /// The policy in effect.
    pub fn kind(&self) -> GovernorKind {
        self.kind
    }

    /// Frequency a core reports at the given utilization (`0..=1`).
    pub fn core_freq(&mut self, util: f64) -> MHz {
        let util = util.clamp(0.0, 1.0);
        let base = match self.kind {
            GovernorKind::Performance => self.max.as_f64(),
            GovernorKind::Powersave => self.min.as_f64(),
            GovernorKind::Schedutil => {
                // The kernel's schedutil picks f = 1.25 · f_max · util and
                // clamps; expressed against the [min, max] span so an idle
                // core sits at min rather than 0.
                let span = self.max.as_f64() - self.min.as_f64();
                self.min.as_f64() + span * (1.25 * util).min(1.0)
            }
        };
        let noisy = if self.noise_std > 0.0 {
            self.rng.normal(base, self.noise_std)
        } else {
            base
        };
        // Hardware can slightly exceed the sustained all-core max
        // (turbo residency), but never the min P-state floor.
        let clamped = noisy.clamp(self.min.as_f64(), self.max.as_f64() * 1.02);
        MHz(clamped.round() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_stays_at_max() {
        let mut g =
            Governor::new(GovernorKind::Performance, MHz(1200), MHz(2400), 1).with_noise_std(0.0);
        assert_eq!(g.core_freq(0.0), MHz(2400));
        assert_eq!(g.core_freq(1.0), MHz(2400));
    }

    #[test]
    fn powersave_stays_at_min() {
        let mut g =
            Governor::new(GovernorKind::Powersave, MHz(1200), MHz(2400), 1).with_noise_std(0.0);
        assert_eq!(g.core_freq(1.0), MHz(1200));
    }

    #[test]
    fn schedutil_scales_with_util() {
        let mut g =
            Governor::new(GovernorKind::Schedutil, MHz(1200), MHz(2400), 1).with_noise_std(0.0);
        assert_eq!(g.core_freq(0.0), MHz(1200));
        // 1.25 × 0.8 = 1.0 → max from 80 % utilization up.
        assert_eq!(g.core_freq(0.8), MHz(2400));
        assert_eq!(g.core_freq(1.0), MHz(2400));
        let half = g.core_freq(0.4); // 1200 + 1200·0.5 = 1800
        assert_eq!(half, MHz(1800));
    }

    #[test]
    fn noise_is_bounded_and_seedable() {
        let sample = |seed| {
            let mut g = Governor::new(GovernorKind::Schedutil, MHz(1200), MHz(2400), seed)
                .with_noise_std(10.0);
            (0..100)
                .map(|_| g.core_freq(1.0).as_u32())
                .collect::<Vec<_>>()
        };
        let a = sample(5);
        let b = sample(5);
        assert_eq!(a, b, "same seed, same readings");
        for &f in &a {
            assert!((1200..=2448).contains(&f), "freq {f} out of bounds");
        }
        // Readings actually vary.
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 5);
    }

    #[test]
    fn util_is_clamped() {
        let mut g =
            Governor::new(GovernorKind::Schedutil, MHz(1000), MHz(2000), 1).with_noise_std(0.0);
        assert_eq!(g.core_freq(-3.0), MHz(1000));
        assert_eq!(g.core_freq(42.0), MHz(2000));
    }
}
