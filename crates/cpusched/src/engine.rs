//! The per-tick host scheduling engine.
//!
//! One [`Engine::tick`] models what Linux does over a 100 ms bandwidth
//! period (the default `cpu.max` period):
//!
//! 1. **Hierarchical fair share** — node capacity (`nr_cpus × tick` µs of
//!    CPU time) is distributed over the cgroup tree by weighted
//!    water-filling ([`crate::fair`]); every group is capped by its
//!    `cpu.max` budget and by its subtree demand; every thread by its own
//!    demand and the wall clock (`tick`).
//! 2. **Throttling accounting** — groups that hit their quota get
//!    `nr_throttled`/`throttled_usec` updates in their `cpu.stat`.
//! 3. **Placement** — granted time is packed onto cores with sticky,
//!    load-aware placement ([`crate::place`]).
//! 4. **DVFS** — per-core utilization drives the governor; the resulting
//!    frequencies determine how much *work* (hardware cycles) each thread
//!    actually performed.
//! 5. **Power** — node draw from utilization and average frequency.
//!
//! The engine deliberately knows nothing about VMs: it sees a cgroup tree
//! and per-thread demands, exactly like the kernel.

use crate::dvfs::Governor;
use crate::fair::{water_fill_into, Entity, FillScratch};
use crate::place::{PlacementBuf, Placer};
use crate::power::node_power_w;
use crate::topology::NodeSpec;
use vfc_cgroupfs::tree::{CgroupTree, NodeIdx, ROOT};
use vfc_simcore::{CpuId, Cycles, FastMap, MHz, Micros, Tid};

/// What one thread got out of a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadSlice {
    /// CPU time actually run.
    pub ran: Micros,
    /// Core the thread mainly ran on (what `/proc/{tid}/stat` reports).
    pub last_cpu: CpuId,
    /// Hardware cycles performed (`Σ slice_µs × core_MHz`).
    pub work: Cycles,
}

/// Aggregate result of one engine tick.
#[derive(Debug, Clone, Default)]
pub struct TickOutcome {
    /// Per-thread outcome of the tick.
    pub threads: FastMap<Tid, ThreadSlice>,
    /// Frequency each core reported this tick.
    pub core_freqs: Vec<MHz>,
    /// Busy time per core.
    pub core_busy: Vec<Micros>,
    /// Node utilization (busy / capacity) in [0, 1].
    pub utilization: f64,
    /// Node power draw, Watts.
    pub power_w: f64,
}

impl TickOutcome {
    /// Mean frequency across all cores.
    pub fn mean_core_freq(&self) -> MHz {
        if self.core_freqs.is_empty() {
            return MHz::ZERO;
        }
        let sum: u64 = self.core_freqs.iter().map(|f| f.as_u32() as u64).sum();
        MHz((sum / self.core_freqs.len() as u64) as u32)
    }
}

/// Optional last-level-cache contention model.
///
/// §V of the paper flags cache access as future work, and uses cache
/// allocation as its explanation for the small throughput drop of the
/// large instances in the three-class evaluation (Fig. 14). The model is
/// deliberately simple: every *distinct top-level cgroup* (≈ VM) with
/// running threads evicts its co-runners' cache lines, degrading the
/// effective work of every thread by `penalty_per_corunner` per
/// additional active group, floored at `floor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheModel {
    /// Relative work lost per additional co-running VM (e.g. 0.01 = 1 %).
    pub penalty_per_corunner: f64,
    /// Lower bound on the work multiplier (e.g. 0.7).
    pub floor: f64,
}

impl CacheModel {
    /// A mild default: 0.5 % per co-runner, floored at 80 %.
    pub fn mild() -> Self {
        CacheModel {
            penalty_per_corunner: 0.005,
            floor: 0.8,
        }
    }

    /// Work multiplier when `active_groups` VMs run simultaneously.
    pub fn multiplier(&self, active_groups: usize) -> f64 {
        let corunners = active_groups.saturating_sub(1) as f64;
        (1.0 - self.penalty_per_corunner * corunners).max(self.floor)
    }
}

/// Reusable per-tick working memory. Every buffer here used to be a
/// fresh allocation inside [`Engine::tick`]; at cluster scale (1,200
/// hosts × 10 ticks × 300 periods) those dominated the replay profile,
/// so the engine now owns one set and [`Engine::tick_into`] reuses it.
#[derive(Debug, Default)]
struct Scratch {
    /// Pre-order DFS of the live tree.
    dfs: Vec<NodeIdx>,
    /// Demand-side cap per node, dense by arena index.
    caps: Vec<u64>,
    /// Granted budget per group, dense by arena index.
    group_alloc: Vec<u64>,
    /// Children of the group currently being filled.
    children: Vec<NodeIdx>,
    /// Water-filling entities of the current group.
    entities: Vec<Entity>,
    /// Water-filling output of the current group.
    shares: Vec<u64>,
    fill: FillScratch,
    /// Granted CPU time per thread.
    thread_alloc: FastMap<Tid, Micros>,
    /// Every known thread with its allocation, DFS order.
    all_threads: Vec<(Tid, Micros)>,
    place: PlacementBuf,
}

/// Host scheduling engine. See module docs.
#[derive(Debug)]
pub struct Engine {
    spec: NodeSpec,
    tick: Micros,
    governor: Governor,
    placer: Placer,
    /// Frequencies from the last tick (idle cores keep reporting).
    core_freqs: Vec<MHz>,
    cache_model: Option<CacheModel>,
    scratch: Scratch,
}

impl Engine {
    /// Engine with the default 100 ms tick and a schedutil-like governor.
    pub fn new(spec: NodeSpec, seed: u64) -> Self {
        let governor = Governor::new(
            crate::dvfs::GovernorKind::Schedutil,
            spec.min_mhz,
            spec.max_mhz,
            seed ^ 0x9E37_79B9,
        );
        Engine::with_parts(spec, Micros(100_000), governor, seed)
    }

    /// Fully explicit construction.
    pub fn with_parts(spec: NodeSpec, tick: Micros, governor: Governor, seed: u64) -> Self {
        assert!(!tick.is_zero(), "tick must be positive");
        let nr = spec.nr_threads();
        let min = spec.min_mhz;
        Engine {
            placer: Placer::new(nr, seed ^ 0x5151_5151),
            core_freqs: vec![min; nr as usize],
            spec,
            tick,
            governor,
            cache_model: None,
            scratch: Scratch::default(),
        }
    }

    /// Enable the LLC contention model.
    pub fn with_cache_model(mut self, model: CacheModel) -> Self {
        self.cache_model = Some(model);
        self
    }

    /// The node this engine schedules.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// The engine tick length.
    pub fn tick_len(&self) -> Micros {
        self.tick
    }

    /// Current frequency of one core (between ticks, the last reading).
    pub fn core_freq(&self, cpu: CpuId) -> MHz {
        self.core_freqs
            .get(cpu.as_usize())
            .copied()
            .unwrap_or(MHz::ZERO)
    }

    /// Last primary core of a thread, if it ever ran.
    pub fn thread_last_cpu(&self, tid: Tid) -> Option<CpuId> {
        self.placer.last_cpu(tid)
    }

    /// Advance the host by one tick.
    ///
    /// `demands` maps each thread to the CPU time it *wants* this tick
    /// (clamped to `tick`); absent threads are idle. Usage and throttling
    /// are accounted into `tree`.
    pub fn tick(&mut self, tree: &mut CgroupTree, demands: &FastMap<Tid, Micros>) -> TickOutcome {
        let mut out = TickOutcome::default();
        self.tick_into(tree, demands, &mut out);
        out
    }

    /// [`Engine::tick`] into a caller-owned [`TickOutcome`], reusing the
    /// engine's internal scratch buffers. Behaviour (allocations granted,
    /// accounting, RNG draw sequence, outcome values) is identical to
    /// [`Engine::tick`]; only the allocation profile differs — the
    /// steady-state tick performs no heap allocation, which is what makes
    /// the 1,200-node trace replay fast.
    pub fn tick_into(
        &mut self,
        tree: &mut CgroupTree,
        demands: &FastMap<Tid, Micros>,
        out: &mut TickOutcome,
    ) {
        let tick = self.tick;
        let arena = tree.arena_size();
        let Scratch {
            dfs,
            caps,
            group_alloc,
            children,
            entities,
            shares,
            fill,
            thread_alloc,
            all_threads,
            place,
        } = &mut self.scratch;

        // ---- 1. demand-side caps, bottom-up -------------------------------
        tree.iter_dfs_into(dfs);
        caps.clear();
        caps.resize(arena, 0);
        for &idx in dfs.iter().rev() {
            let node = tree.node(idx);
            let thread_demand: u64 = node
                .threads
                .iter()
                .map(|t| {
                    demands
                        .get(t)
                        .copied()
                        .unwrap_or(Micros::ZERO)
                        .min(tick)
                        .as_u64()
                })
                .sum();
            let child_demand: u64 = tree.children(idx).map(|c| caps[c.0]).sum();
            let raw = thread_demand + child_demand;
            let quota = node.cpu_max.budget_for(tick).as_u64();
            caps[idx.0] = raw.min(quota);
        }

        // ---- 2. allocation, top-down --------------------------------------
        let capacity = (self.spec.nr_threads() as u64) * tick.as_u64();
        thread_alloc.clear();
        group_alloc.clear();
        group_alloc.resize(arena, 0);
        group_alloc[ROOT.0] = capacity.min(caps[ROOT.0]);

        // Pre-order traversal (parents before children); iter_dfs is one.
        for &idx in dfs.iter() {
            let budget = group_alloc[idx.0];
            let node = tree.node(idx);
            children.clear();
            children.extend(tree.children(idx));
            // Entities: child groups first, then direct threads.
            entities.clear();
            for &c in children.iter() {
                entities.push(Entity::new(tree.node(c).weight, caps[c.0]));
            }
            for t in &node.threads {
                let d = demands.get(t).copied().unwrap_or(Micros::ZERO).min(tick);
                entities.push(Entity::new(node.weight, d.as_u64()));
            }
            if entities.is_empty() {
                continue;
            }
            water_fill_into(budget, entities, shares, fill);
            for (i, &c) in children.iter().enumerate() {
                group_alloc[c.0] = shares[i];
            }
            for (k, t) in node.threads.iter().enumerate() {
                thread_alloc.insert(*t, Micros(shares[children.len() + k]));
            }
        }

        // ---- 3. usage + throttling accounting ------------------------------
        // Leaf usage, then per-group periods for limited groups.
        for &idx in dfs.iter() {
            let node = tree.node(idx);
            let has_threads = !node.threads.is_empty();
            let used: Micros = node
                .threads
                .iter()
                .map(|t| thread_alloc.get(t).copied().unwrap_or(Micros::ZERO))
                .sum();
            let unlimited = node.cpu_max.is_unlimited();
            let quota = node.cpu_max.budget_for(tick).as_u64();
            let raw_demand: u64 = if unlimited {
                0
            } else {
                node.threads
                    .iter()
                    .map(|t| {
                        demands
                            .get(t)
                            .copied()
                            .unwrap_or(Micros::ZERO)
                            .min(tick)
                            .as_u64()
                    })
                    .sum::<u64>()
                    + tree.children(idx).map(|c| caps[c.0]).sum::<u64>()
            };
            if has_threads {
                tree.node_mut(idx).cpu_stat.account_usage(used);
            }
            if !unlimited {
                let throttled_for = if raw_demand > quota {
                    Micros(raw_demand - quota)
                } else {
                    Micros::ZERO
                };
                tree.node_mut(idx).cpu_stat.account_period(throttled_for);
            }
        }

        // ---- 4. placement ---------------------------------------------------
        // Include every known thread so idle ones keep a location.
        all_threads.clear();
        for &idx in dfs.iter() {
            for t in &tree.node(idx).threads {
                all_threads.push((*t, thread_alloc.get(t).copied().unwrap_or(Micros::ZERO)));
            }
        }
        self.placer.place_into(all_threads, tick, place);
        let core_busy = &place.core_busy;

        // ---- 5. DVFS ---------------------------------------------------------
        for (i, busy) in core_busy.iter().enumerate() {
            let util = busy.ratio_of(tick);
            self.core_freqs[i] = self.governor.core_freq(util);
        }

        // ---- 6. per-thread work ----------------------------------------------
        // Optional LLC contention: count the distinct VM-level groups that
        // actually ran this tick. VM scopes are marked in the tree (the
        // KVM layout marks its `machine-qemu…scope` groups); plain trees
        // without marks fall back to the children of the root.
        let cache_multiplier =
            match self.cache_model {
                None => 1.0,
                Some(model) => {
                    let subtree_active =
                        |top: NodeIdx| -> bool {
                            let mut stack = vec![top];
                            while let Some(idx) = stack.pop() {
                                if tree.node(idx).threads.iter().any(|t| {
                                    thread_alloc.get(t).map(|a| !a.is_zero()).unwrap_or(false)
                                }) {
                                    return true;
                                }
                                stack.extend(tree.children(idx));
                            }
                            false
                        };
                    let marked: Vec<NodeIdx> = dfs
                        .iter()
                        .copied()
                        .filter(|&i| tree.node(i).vm_scope)
                        .collect();
                    let active_groups = if marked.is_empty() {
                        tree.children(ROOT)
                            .filter(|&top| subtree_active(top))
                            .count()
                    } else {
                        marked
                            .into_iter()
                            .filter(|&top| subtree_active(top))
                            .count()
                    };
                    model.multiplier(active_groups)
                }
            };

        out.threads.clear();
        for e in place.entries.iter() {
            let slices = place.slices_of(e);
            let mut ran = Micros::ZERO;
            let mut work = Cycles::ZERO;
            for (cpu, us) in slices {
                ran += *us;
                work += Cycles::from_time_at(*us, self.core_freqs[cpu.as_usize()]);
            }
            let work = Cycles((work.as_u64() as f64 * cache_multiplier) as u64);
            let last_cpu = slices.first().map(|(c, _)| *c).unwrap_or(CpuId::new(0));
            out.threads.insert(
                e.tid,
                ThreadSlice {
                    ran,
                    last_cpu,
                    work,
                },
            );
        }

        // ---- 7. power ----------------------------------------------------------
        let total_busy: Micros = core_busy.iter().copied().sum();
        let utilization = total_busy.as_u64() as f64 / capacity as f64;
        let active_freq = {
            let mut weighted = 0u64;
            for (i, busy) in core_busy.iter().enumerate() {
                weighted += busy.as_u64() * self.core_freqs[i].as_u32() as u64;
            }
            if total_busy.is_zero() {
                self.spec.min_mhz
            } else {
                MHz((weighted / total_busy.as_u64()) as u32)
            }
        };
        let power_w = node_power_w(&self.spec, utilization, active_freq);

        out.core_freqs.clear();
        out.core_freqs.extend_from_slice(&self.core_freqs);
        out.core_busy.clear();
        out.core_busy.extend_from_slice(core_busy);
        out.utilization = utilization;
        out.power_w = power_w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfc_cgroupfs::model::CpuMax;
    use vfc_cgroupfs::tree::ROOT;

    const TICK: Micros = Micros(100_000);

    fn engine(threads: u32) -> Engine {
        let spec = NodeSpec::custom("test", 1, threads, 1, MHz(2400));
        let gov = Governor::new(
            crate::dvfs::GovernorKind::Performance,
            spec.min_mhz,
            spec.max_mhz,
            1,
        )
        .with_noise_std(0.0);
        Engine::with_parts(spec, TICK, gov, 42)
    }

    /// Build `/vmK/vcpuJ`-style two-level trees with one thread per leaf.
    fn build_tree(vms: &[u32]) -> (CgroupTree, Vec<Vec<Tid>>) {
        let mut tree = CgroupTree::new();
        let mut tids = Vec::new();
        let mut next_tid = 100;
        for (k, &vcpus) in vms.iter().enumerate() {
            let scope = tree.mkdir(ROOT, &format!("vm{k}")).unwrap();
            let mut vm_tids = Vec::new();
            for j in 0..vcpus {
                let leaf = tree.mkdir(scope, &format!("vcpu{j}")).unwrap();
                let tid = Tid::new(next_tid);
                next_tid += 1;
                tree.attach_thread(leaf, tid);
                vm_tids.push(tid);
            }
            tids.push(vm_tids);
        }
        (tree, tids)
    }

    fn full_demand(tids: &[Vec<Tid>]) -> FastMap<Tid, Micros> {
        tids.iter().flatten().map(|t| (*t, TICK)).collect()
    }

    #[test]
    fn single_thread_gets_its_demand() {
        let mut e = engine(4);
        let (mut tree, tids) = build_tree(&[1]);
        let demands: FastMap<_, _> = [(tids[0][0], Micros(40_000))].into_iter().collect();
        let out = e.tick(&mut tree, &demands);
        assert_eq!(out.threads[&tids[0][0]].ran, Micros(40_000));
        // Performance governor at 2400: work = 40_000 µs × 2400 MHz.
        assert_eq!(out.threads[&tids[0][0]].work, Cycles(96_000_000));
    }

    #[test]
    fn cfs_shares_per_vm_not_per_vcpu() {
        // The paper's key scenario-A observation: a 2-vCPU VM and a 4-vCPU
        // VM on a saturated host get the *same* VM-level share, so the
        // 2-vCPU VM's vCPUs run faster.
        let mut e = engine(3); // 3 threads of capacity for 6 vCPUs
        let (mut tree, tids) = build_tree(&[2, 4]);
        let demands = full_demand(&tids);
        let out = e.tick(&mut tree, &demands);
        let vm0: Micros = tids[0].iter().map(|t| out.threads[t].ran).sum();
        let vm1: Micros = tids[1].iter().map(|t| out.threads[t].ran).sum();
        // Equal shares per VM: 150k each out of 300k capacity.
        assert_eq!(vm0, Micros(150_000));
        assert_eq!(vm1, Micros(150_000));
        // So each small vCPU runs 75k, each large vCPU 37.5k.
        assert_eq!(out.threads[&tids[0][0]].ran, Micros(75_000));
        assert_eq!(out.threads[&tids[1][0]].ran, Micros(37_500));
    }

    #[test]
    fn side_experiment_b_one_vcpu_vms_get_four_fifths() {
        // §IV.A.2 b): 40 VMs × 1 vCPU + 10 VMs × 4 vCPUs on 40 threads:
        // each VM gets 1/50 of 40 threads = 0.8 thread; the 1-vCPU VMs
        // together take 32/40 = 4/5 of the node.
        let spec = NodeSpec::custom("test", 1, 40, 1, MHz(2400));
        let gov = Governor::new(
            crate::dvfs::GovernorKind::Performance,
            spec.min_mhz,
            spec.max_mhz,
            1,
        )
        .with_noise_std(0.0);
        let mut e = Engine::with_parts(spec, TICK, gov, 7);
        let mut vms: Vec<u32> = vec![1; 40];
        vms.extend_from_slice(&[4; 10]);
        let (mut tree, tids) = build_tree(&vms);
        let demands = full_demand(&tids);
        let out = e.tick(&mut tree, &demands);
        let singles: Micros = tids[..40]
            .iter()
            .flatten()
            .map(|t| out.threads[t].ran)
            .sum();
        let total: Micros = tids.iter().flatten().map(|t| out.threads[t].ran).sum();
        let share = singles.ratio_of(total);
        assert!(
            (share - 0.8).abs() < 0.01,
            "1-vCPU VMs got {share} of the node"
        );
    }

    #[test]
    fn quota_caps_a_group() {
        let mut e = engine(4);
        let (mut tree, tids) = build_tree(&[1]);
        // Cap vm0 at 25 % of one CPU.
        let leaf = tree.resolve("/vm0/vcpu0").unwrap();
        tree.node_mut(leaf).cpu_max = CpuMax::limited(Micros(25_000));
        let demands = full_demand(&tids);
        let out = e.tick(&mut tree, &demands);
        assert_eq!(out.threads[&tids[0][0]].ran, Micros(25_000));
        // Throttle accounting happened.
        let stat = tree.node(leaf).cpu_stat;
        assert_eq!(stat.nr_periods, 1);
        assert_eq!(stat.nr_throttled, 1);
        assert_eq!(stat.throttled_usec, Micros(75_000));
    }

    #[test]
    fn quota_on_parent_caps_subtree() {
        let mut e = engine(4);
        let (mut tree, tids) = build_tree(&[2]);
        let scope = tree.resolve("/vm0").unwrap();
        tree.node_mut(scope).cpu_max = CpuMax::limited(Micros(50_000));
        let demands = full_demand(&tids);
        let out = e.tick(&mut tree, &demands);
        let total: Micros = tids[0].iter().map(|t| out.threads[t].ran).sum();
        assert_eq!(total, Micros(50_000));
        // Fairly split between the two vCPUs.
        assert_eq!(out.threads[&tids[0][0]].ran, Micros(25_000));
    }

    #[test]
    fn unthrottled_group_has_no_periods() {
        let mut e = engine(2);
        let (mut tree, tids) = build_tree(&[1]);
        let demands = full_demand(&tids);
        e.tick(&mut tree, &demands);
        let leaf = tree.resolve("/vm0/vcpu0").unwrap();
        assert_eq!(tree.node(leaf).cpu_stat.nr_periods, 0);
        assert_eq!(tree.node(leaf).cpu_stat.usage_usec, TICK);
    }

    #[test]
    fn work_conservation_across_tree() {
        // Demand far exceeds capacity: every µs of the node must be used.
        let mut e = engine(2);
        let (mut tree, tids) = build_tree(&[3, 2, 1]);
        let demands = full_demand(&tids);
        let out = e.tick(&mut tree, &demands);
        let total: Micros = tids.iter().flatten().map(|t| out.threads[t].ran).sum();
        assert_eq!(total, Micros(200_000));
        assert!((out.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn idle_node_uses_no_time() {
        let mut e = engine(2);
        let (mut tree, tids) = build_tree(&[2]);
        let demands: FastMap<Tid, Micros> = tids[0].iter().map(|t| (*t, Micros::ZERO)).collect();
        let out = e.tick(&mut tree, &demands);
        assert_eq!(out.utilization, 0.0);
        let total: Micros = tids[0].iter().map(|t| out.threads[t].ran).sum();
        assert_eq!(total, Micros::ZERO);
        // Power is the idle floor.
        assert!((out.power_w - e.spec().idle_power_w).abs() < 1e-9);
    }

    #[test]
    fn usage_accumulates_across_ticks() {
        let mut e = engine(1);
        let (mut tree, tids) = build_tree(&[1]);
        let demands = full_demand(&tids);
        for _ in 0..5 {
            e.tick(&mut tree, &demands);
        }
        let leaf = tree.resolve("/vm0/vcpu0").unwrap();
        assert_eq!(tree.node(leaf).cpu_stat.usage_usec, Micros(500_000));
    }

    #[test]
    fn weights_shift_vm_shares() {
        let mut e = engine(1);
        let (mut tree, tids) = build_tree(&[1, 1]);
        let vm0 = tree.resolve("/vm0").unwrap();
        tree.node_mut(vm0).weight = 200; // double weight
        let demands = full_demand(&tids);
        let out = e.tick(&mut tree, &demands);
        let a = out.threads[&tids[0][0]].ran.as_u64() as f64;
        let b = out.threads[&tids[1][0]].ran.as_u64() as f64;
        // 2:1 within integer-µs dust.
        assert!((a / b - 2.0).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn cache_model_multiplier_shape() {
        let m = CacheModel::mild();
        assert_eq!(m.multiplier(0), 1.0);
        assert_eq!(m.multiplier(1), 1.0, "a lone VM pays nothing");
        assert!((m.multiplier(2) - 0.995).abs() < 1e-12);
        assert_eq!(m.multiplier(1000), 0.8, "floored");
    }

    #[test]
    fn cache_contention_degrades_corunning_work_only() {
        let spec = NodeSpec::custom("c", 1, 4, 1, MHz(2400));
        let make = |cache: bool| {
            let gov = Governor::new(
                crate::dvfs::GovernorKind::Performance,
                spec.min_mhz,
                spec.max_mhz,
                1,
            )
            .with_noise_std(0.0);
            let e = Engine::with_parts(spec.clone(), TICK, gov, 42);
            if cache {
                e.with_cache_model(CacheModel {
                    penalty_per_corunner: 0.02,
                    floor: 0.5,
                })
            } else {
                e
            }
        };

        // Lone VM: identical work with and without the model.
        for cache in [false, true] {
            let mut e = make(cache);
            let (mut tree, tids) = build_tree(&[2]);
            let out = e.tick(&mut tree, &full_demand(&tids));
            assert_eq!(
                out.threads[&tids[0][0]].work,
                Cycles(240_000_000),
                "cache={cache}: lone VM at full speed"
            );
        }

        // Three co-running VMs: 2 × 2 % penalty.
        let mut e = make(true);
        let (mut tree, tids) = build_tree(&[1, 1, 1]);
        let out = e.tick(&mut tree, &full_demand(&tids));
        let w = out.threads[&tids[0][0]].work.as_u64() as f64;
        let expected = 240_000_000.0 * 0.96;
        assert!(
            (w - expected).abs() / expected < 1e-6,
            "expected {expected}, got {w}"
        );
        // CPU time accounting is unaffected — only the work degrades.
        assert_eq!(out.threads[&tids[0][0]].ran, TICK);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// One VM's shape: vCPU count, optional quota, per-vCPU demands.
        type VmShape = (u32, Option<u64>, Vec<u64>);

        /// Random two-level VM trees with optional per-VM quotas and
        /// arbitrary demands.
        fn arb_setup() -> impl Strategy<Value = (Vec<VmShape>, u32)> {
            // (vcpu demands µs, quota µs per 100 ms tick) per VM; thread
            // count of the node.
            (
                proptest::collection::vec(
                    (
                        proptest::option::of(1_000u64..150_000),
                        proptest::collection::vec(0u64..120_000, 1..4),
                    )
                        .prop_map(|(q, d)| (d.len() as u32, q, d)),
                    1..6,
                ),
                1u32..6,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn prop_tick_invariants((vms, threads) in arb_setup()) {
                let spec = NodeSpec::custom("p", 1, threads, 1, MHz(2400));
                let gov = Governor::new(
                    crate::dvfs::GovernorKind::Performance,
                    spec.min_mhz,
                    spec.max_mhz,
                    1,
                )
                .with_noise_std(0.0);
                let mut engine = Engine::with_parts(spec, TICK, gov, 5);

                let mut tree = CgroupTree::new();
                let mut demands = FastMap::default();
                let mut groups = Vec::new();
                let mut tid_n = 100u32;
                for (k, (_, quota, ds)) in vms.iter().enumerate() {
                    let scope = tree.mkdir(ROOT, &format!("vm{k}")).expect("fresh");
                    if let Some(q) = quota {
                        tree.node_mut(scope).cpu_max =
                            CpuMax::with_period(Micros(*q), Micros(100_000));
                    }
                    let mut tids = Vec::new();
                    for (j, d) in ds.iter().enumerate() {
                        let leaf =
                            tree.mkdir(scope, &format!("vcpu{j}")).expect("fresh");
                        let tid = Tid::new(tid_n);
                        tid_n += 1;
                        tree.attach_thread(leaf, tid);
                        demands.insert(tid, Micros(*d));
                        tids.push(tid);
                    }
                    groups.push((scope, *quota, tids, ds.clone()));
                }

                let out = engine.tick(&mut tree, &demands);
                let capacity = threads as u64 * TICK.as_u64();

                // (1) Node capacity respected.
                let total: u64 = out
                    .threads
                    .values()
                    .map(|s| s.ran.as_u64())
                    .sum();
                prop_assert!(total <= capacity, "{total} > {capacity}");

                // (2) Nobody runs longer than it asked (clamped to tick).
                for (tid, slice) in &out.threads {
                    let want = demands[tid].min(TICK);
                    prop_assert!(slice.ran <= want);
                }

                // (3) Per-VM quota budgets hold.
                for (_, quota, tids, _) in &groups {
                    if let Some(q) = quota {
                        let used: u64 = tids
                            .iter()
                            .map(|t| out.threads[t].ran.as_u64())
                            .sum();
                        prop_assert!(used <= *q, "used {used} > quota {q}");
                    }
                }

                // (4) Work conservation without quotas: all feasible
                // demand is served.
                if vms.iter().all(|(_, q, _)| q.is_none()) {
                    let feasible: u64 = demands
                        .values()
                        .map(|d| (*d).min(TICK).as_u64())
                        .sum();
                    prop_assert_eq!(total, feasible.min(capacity));
                }

                // (5) Usage accounting matches the outcome.
                let accounted: u64 = groups
                    .iter()
                    .flat_map(|(_, _, tids, _)| tids.iter())
                    .map(|t| out.threads[t].ran.as_u64())
                    .sum();
                let from_tree: u64 = tree
                    .iter_dfs()
                    .iter()
                    .map(|&i| tree.node(i).cpu_stat.usage_usec.as_u64())
                    .sum();
                prop_assert_eq!(accounted, from_tree);
            }
        }
    }

    #[test]
    fn outcome_mean_freq_and_last_cpu() {
        let mut e = engine(2);
        let (mut tree, tids) = build_tree(&[1]);
        let demands = full_demand(&tids);
        let out = e.tick(&mut tree, &demands);
        assert_eq!(out.mean_core_freq(), MHz(2400));
        let tid = tids[0][0];
        assert_eq!(e.thread_last_cpu(tid), Some(out.threads[&tid].last_cpu));
        assert!(e.core_freq(out.threads[&tid].last_cpu) > MHz::ZERO);
    }
}
