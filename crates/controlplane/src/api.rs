//! Std-only HTTP/JSON API over the control plane.
//!
//! The same discipline as the telemetry
//! [`MetricsServer`](vfc_telemetry::MetricsServer): a bound
//! `TcpListener`, one accept thread, no keep-alive, no TLS, no streaming
//! — requests are small JSON documents and responses close the
//! connection. The accept thread shares the
//! [`ControlPlaneRuntime`] with the reconcile loop through a mutex;
//! admission calls are cheap (validation + an FFD pack), so holding the
//! lock for a request's duration is fine at control-plane rates.
//!
//! Routes:
//!
//! | route | body | success |
//! |---|---|---|
//! | `POST /vms` | `{"tenant","name","vcpus","vfreq_mhz","mem_gb"?}` | `201 {"id","generation"}` |
//! | `DELETE /vms/{id}` | — | `200 {"id"}` |
//! | `PUT /vms/{id}/vfreq` | `{"vfreq_mhz"}` | `200 {"id","generation"}` |
//! | `GET /tenants/{name}/usage` | — | `200 {"tenant","usage","quota"}` |
//! | `GET /healthz` | — | `200 {"status","desired_vms","bound_vms","log_seq"}` |
//! | `GET /metrics` | — | control-plane metric families, Prometheus text |
//!
//! Rejections map [`AdmissionError::http_status`]: `400` invalid shape,
//! `403` unknown tenant / quota, `404` unknown id, `429` rate limited,
//! `507` the desired state no longer packs under Eq. 7.

use crate::admission::{AdmissionError, ControlPlane};
use crate::quota::{TenantQuota, TenantUsage};
use crate::reconcile::{ReconcileSummary, Reconciler};
use crate::spec::SpecId;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use vfc_cluster::ClusterManager;
use vfc_simcore::MHz;
use vfc_vmm::VmTemplate;

/// Everything the control plane drives, bundled so the HTTP thread and
/// the reconcile loop share one lock.
pub struct ControlPlaneRuntime {
    /// Admission + desired state + metrics.
    pub plane: ControlPlane,
    /// The cluster being reconciled.
    pub cluster: ClusterManager,
    /// The reconcile loop state.
    pub reconciler: Reconciler,
}

impl ControlPlaneRuntime {
    /// Bundle a control plane, cluster and reconciler.
    pub fn new(plane: ControlPlane, cluster: ClusterManager, reconciler: Reconciler) -> Self {
        ControlPlaneRuntime {
            plane,
            cluster,
            reconciler,
        }
    }

    /// One control period: reconcile, then run the cluster for a period.
    pub fn step(&mut self) -> ReconcileSummary {
        let summary = self
            .reconciler
            .reconcile(&mut self.plane, &mut self.cluster);
        self.cluster.run_period();
        summary
    }
}

#[derive(Deserialize)]
struct CreateReq {
    tenant: String,
    name: String,
    vcpus: u32,
    vfreq_mhz: u32,
    mem_gb: Option<u32>,
}

#[derive(Deserialize)]
struct VfreqReq {
    vfreq_mhz: u32,
}

#[derive(Serialize)]
struct IdResp {
    id: u64,
    generation: u64,
}

#[derive(Serialize)]
struct DeletedResp {
    id: u64,
}

#[derive(Serialize)]
struct UsageResp {
    tenant: String,
    usage: TenantUsage,
    quota: TenantQuota,
}

#[derive(Serialize)]
struct HealthResp {
    status: &'static str,
    desired_vms: u64,
    bound_vms: u64,
    log_seq: u64,
}

#[derive(Serialize)]
struct ErrorResp {
    error: String,
}

/// The API endpoint: owns nothing but the bound address; the accept
/// thread holds the runtime `Arc` and exits with the process.
pub struct ApiServer {
    addr: std::net::SocketAddr,
}

impl ApiServer {
    /// Bind `addr` (use port 0 to let the OS pick) and serve requests
    /// against `runtime` on a background thread.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        runtime: Arc<Mutex<ControlPlaneRuntime>>,
    ) -> Result<ApiServer, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind api addr: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("api local addr: {e}"))?;
        std::thread::Builder::new()
            .name("vfc-cp-api".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(mut stream) = stream else { continue };
                    let Some((method, path, body)) = read_request(&mut stream) else {
                        respond(&mut stream, 400, &err_body("malformed request"));
                        continue;
                    };
                    let (status, body) = route(&runtime, &method, &path, &body);
                    respond(&mut stream, status, &body);
                }
            })
            .map_err(|e| format!("spawn api thread: {e}"))?;
        Ok(ApiServer { addr: local })
    }

    /// The actually bound address (resolves `:0` to the chosen port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("body not utf-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

fn err_body(msg: &str) -> String {
    serde_json::to_string(&ErrorResp {
        error: msg.to_owned(),
    })
    .unwrap_or_else(|_| "{\"error\":\"unrenderable\"}".into())
}

fn admission_err(e: &AdmissionError) -> (u16, String) {
    (e.http_status(), err_body(&e.to_string()))
}

fn ok_json<T: Serialize>(status: u16, value: &T) -> (u16, String) {
    match serde_json::to_string(value) {
        Ok(body) => (status, body),
        Err(e) => (500, err_body(&format!("serialize response: {e}"))),
    }
}

/// Dispatch one request. Split out of the accept loop so unit tests can
/// call it without sockets.
fn route(
    runtime: &Mutex<ControlPlaneRuntime>,
    method: &str,
    path: &str,
    body: &[u8],
) -> (u16, String) {
    let Ok(mut rt) = runtime.lock() else {
        return (500, err_body("runtime lock poisoned"));
    };
    let rt = &mut *rt;
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    match (method, segments.as_slice()) {
        ("POST", ["vms"]) => {
            let req: CreateReq = match parse_body(body) {
                Ok(r) => r,
                Err(e) => return (400, err_body(&format!("bad body: {e}"))),
            };
            let template = VmTemplate::new(&req.name, req.vcpus, MHz(req.vfreq_mhz))
                .with_mem_gb(req.mem_gb.unwrap_or(4));
            let loads = rt.cluster.node_loads();
            match rt.plane.create_vm(&req.tenant, template, &loads) {
                Ok(id) => ok_json(
                    201,
                    &IdResp {
                        id: id.0,
                        generation: 1,
                    },
                ),
                Err(e) => admission_err(&e),
            }
        }
        ("DELETE", ["vms", id]) => {
            let Ok(id) = id.parse::<u64>() else {
                return (400, err_body("vm id must be an integer"));
            };
            match rt.plane.delete_vm(SpecId(id)) {
                Ok(_) => ok_json(200, &DeletedResp { id }),
                Err(e) => admission_err(&e),
            }
        }
        ("PUT", ["vms", id, "vfreq"]) => {
            let Ok(id) = id.parse::<u64>() else {
                return (400, err_body("vm id must be an integer"));
            };
            let req: VfreqReq = match parse_body(body) {
                Ok(r) => r,
                Err(e) => return (400, err_body(&format!("bad body: {e}"))),
            };
            let loads = rt.cluster.node_loads();
            match rt.plane.resize_vm(SpecId(id), MHz(req.vfreq_mhz), &loads) {
                Ok(generation) => ok_json(200, &IdResp { id, generation }),
                Err(e) => admission_err(&e),
            }
        }
        ("GET", ["tenants", name, "usage"]) => match rt.plane.quota(name) {
            Some(quota) => ok_json(
                200,
                &UsageResp {
                    tenant: (*name).to_owned(),
                    usage: rt.plane.usage(name),
                    quota,
                },
            ),
            None => (404, err_body(&format!("unknown tenant {name:?}"))),
        },
        ("GET", ["healthz"]) => ok_json(
            200,
            &HealthResp {
                status: "ok",
                desired_vms: rt.plane.store().len() as u64,
                bound_vms: rt.reconciler.bound() as u64,
                log_seq: rt.plane.store().seq(),
            },
        ),
        ("GET", ["metrics"]) => (200, rt.plane.metrics.render()),
        _ => (404, err_body(&format!("no route {method} {path}"))),
    }
}

/// Read one request: request line, headers, and a `Content-Length` body.
fn read_request(stream: &mut TcpStream) -> Option<(String, String, Vec<u8>)> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find(&buf, b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > 16 * 1024 {
            return None;
        }
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).ok()?;
    let mut lines = head.split("\r\n");
    let mut request_line = lines.next()?.split_whitespace();
    let method = request_line.next()?.to_owned();
    let path = request_line.next()?.to_owned();
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > 1024 * 1024 {
        return None;
    }
    let mut body = buf[header_end..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Some((method, path, body))
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        429 => "Too Many Requests",
        507 => "Insufficient Storage",
        _ => "Internal Server Error",
    };
    let content_type = if body.starts_with('{') {
        "application/json"
    } else {
        "text/plain; version=0.0.4; charset=utf-8"
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quota::TenantQuota;
    use crate::reconcile::ReconcilerConfig;
    use vfc_cluster::Strategy;
    use vfc_cpusched::topology::NodeSpec;

    fn runtime() -> Arc<Mutex<ControlPlaneRuntime>> {
        let mut plane = ControlPlane::new();
        plane.add_tenant(
            "acme",
            TenantQuota {
                max_vms: 4,
                max_vcpus: 16,
                max_mhz: 20_000,
            },
        );
        let cluster = ClusterManager::new(
            vec![NodeSpec::custom("n", 1, 2, 2, MHz(2400)); 2],
            Strategy::FrequencyControl,
            3,
        );
        Arc::new(Mutex::new(ControlPlaneRuntime::new(
            plane,
            cluster,
            Reconciler::new(ReconcilerConfig::default()),
        )))
    }

    fn http(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    fn post(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        http(
            addr,
            &format!(
                "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn crud_round_trip_over_http() {
        let rt = runtime();
        let server = ApiServer::bind("127.0.0.1:0", Arc::clone(&rt)).unwrap();
        let addr = server.local_addr();

        let (status, body) = post(
            addr,
            "POST",
            "/vms",
            r#"{"tenant":"acme","name":"web","vcpus":2,"vfreq_mhz":1200}"#,
        );
        assert_eq!(status, 201, "{body}");
        assert!(body.contains("\"id\":0"), "{body}");

        rt.lock().unwrap().step();

        let (status, body) = post(addr, "PUT", "/vms/0/vfreq", r#"{"vfreq_mhz":1800}"#);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"generation\":2"), "{body}");

        let (status, body) = http(addr, "GET /tenants/acme/usage HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"mhz\":3600"), "{body}");

        let (status, body) = http(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"desired_vms\":1"), "{body}");

        let (status, _) = post(addr, "DELETE", "/vms/0", "");
        assert_eq!(status, 200);
        let (status, _) = post(addr, "DELETE", "/vms/0", "");
        assert_eq!(status, 404, "double delete is a typed miss");

        let (status, body) = http(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);
        assert!(
            body.contains("vfc_cp_admission_accepted_total{tenant=\"acme\"} 3"),
            "{body}"
        );
    }

    #[test]
    fn error_statuses_map_the_taxonomy() {
        let rt = runtime();
        let server = ApiServer::bind("127.0.0.1:0", Arc::clone(&rt)).unwrap();
        let addr = server.local_addr();

        // 400: degenerate template (F_v = 0) rejected at the boundary.
        let (status, body) = post(
            addr,
            "POST",
            "/vms",
            r#"{"tenant":"acme","name":"z","vcpus":2,"vfreq_mhz":0}"#,
        );
        assert_eq!(status, 400, "{body}");

        // 403: unregistered tenant.
        let (status, _) = post(
            addr,
            "POST",
            "/vms",
            r#"{"tenant":"ghost","name":"z","vcpus":2,"vfreq_mhz":500}"#,
        );
        assert_eq!(status, 403);

        // 507: a VM wider than any node.
        let (status, body) = post(
            addr,
            "POST",
            "/vms",
            r#"{"tenant":"acme","name":"wide","vcpus":8,"vfreq_mhz":2400}"#,
        );
        assert_eq!(status, 507, "{body}");

        // 404: resize of a VM that never existed.
        let (status, _) = post(addr, "PUT", "/vms/99/vfreq", r#"{"vfreq_mhz":800}"#);
        assert_eq!(status, 404);

        // 400: malformed JSON body.
        let (status, _) = post(addr, "POST", "/vms", "{nope");
        assert_eq!(status, 400);

        // 404: unknown route.
        let (status, _) = http(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 404);
    }
}
