//! Std-only HTTP/JSON API over the control plane.
//!
//! The same discipline as the telemetry
//! [`MetricsServer`](vfc_telemetry::MetricsServer): a bound
//! `TcpListener`, one accept thread, no keep-alive, no TLS, no streaming
//! — requests are small JSON documents and responses close the
//! connection. The accept thread shares the
//! [`ControlPlaneRuntime`] with the reconcile loop through a mutex;
//! admission calls are cheap (validation + an FFD pack), so holding the
//! lock for a request's duration is fine at control-plane rates.
//!
//! Routes:
//!
//! | route | body | success |
//! |---|---|---|
//! | `POST /vms` | `{"tenant","name","vcpus","vfreq_mhz","mem_gb"?}` | `201 {"id","generation"}` |
//! | `DELETE /vms/{id}` | — | `200 {"id"}` |
//! | `PUT /vms/{id}/vfreq` | `{"vfreq_mhz"}` | `200 {"id","generation"}` |
//! | `GET /vms/{id}` | — | `200 {"id","tenant","name","vcpus","vfreq_mhz","mem_gb","generation","bound","applied_generation","converged"}` |
//! | `GET /tenants/{name}/usage` | — | `200 {"tenant","usage","quota"}` |
//! | `GET /tenants/{name}/bill` | — | `200` invoice JSON (see `docs/BILLING.md`) |
//! | `GET /tenants/{name}/usage/history` | — | `200 {"tenant","records"}` — the tenant's ledger rows |
//! | `GET /healthz` | — | `200 {"status","desired_vms","bound_vms","log_seq"}` |
//! | `GET /metrics` | — | control-plane (+ `vfc_bill_*` when attached) metric families, Prometheus text |
//!
//! The billing routes answer `404` until a [`BillingEngine`] is
//! attached ([`ControlPlaneRuntime::attach_billing`]).
//!
//! Rejections map [`AdmissionError::http_status`]: `400` invalid shape,
//! `403` unknown tenant / quota, `404` unknown id, `429` rate limited,
//! `507` the desired state no longer packs under Eq. 7.
//!
//! ## Overload protection
//!
//! Every limit that stands between a hostile client and the reconcile
//! loop lives in [`ApiServerConfig`], and every refusal is a typed
//! [`OverloadError`] mapped 1:1 to a status — `408` a client that
//! cannot deliver a request within the read timeout (slow loris),
//! `413` a body over the cap (refused from the `Content-Length` header
//! before a single body byte is read), `503` + `Retry-After` when the
//! bounded accept queue or the reconciler backlog saturates. Rate-limit
//! `429`s also carry `Retry-After`. Sheds are counted per reason in
//! `vfc_cp_shed_total` ([`ShedReason`]). Reads (`GET`) are never shed
//! on backlog: an operator must be able to see an overloaded plane.

use crate::admission::{AdmissionError, ControlPlane};
use crate::quota::{TenantQuota, TenantUsage};
use crate::reconcile::{ReconcileSummary, Reconciler};
use crate::spec::SpecId;
use crate::telemetry::ShedReason;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use vfc_billing::BillingEngine;
use vfc_cluster::ClusterManager;
use vfc_simcore::MHz;
use vfc_vmm::VmTemplate;

/// Everything the control plane drives, bundled so the HTTP thread and
/// the reconcile loop share one lock.
pub struct ControlPlaneRuntime {
    /// Admission + desired state + metrics.
    pub plane: ControlPlane,
    /// The cluster being reconciled.
    pub cluster: ClusterManager,
    /// The reconcile loop state.
    pub reconciler: Reconciler,
    /// Metering + pricing, when billing is attached.
    pub billing: Option<BillingEngine>,
}

impl ControlPlaneRuntime {
    /// Bundle a control plane, cluster and reconciler. Billing is off
    /// until [`attach_billing`](ControlPlaneRuntime::attach_billing).
    pub fn new(plane: ControlPlane, cluster: ClusterManager, reconciler: Reconciler) -> Self {
        ControlPlaneRuntime {
            plane,
            cluster,
            reconciler,
            billing: None,
        }
    }

    /// Attach a billing engine: the tenants' registered SLA classes are
    /// synced into its pricing config, the cluster starts exporting
    /// per-VM usage, and every [`step`](ControlPlaneRuntime::step) from
    /// now on meters the period into the engine's ledger. The engine
    /// may come from [`BillingEngine::new`] or — for a ledger that
    /// survives restarts — [`BillingEngine::with_ledger`].
    pub fn attach_billing(&mut self, mut engine: BillingEngine) {
        let slas: Vec<(String, vfc_billing::SlaClass)> = self
            .plane
            .slas()
            .map(|(t, c)| (t.to_owned(), c.clone()))
            .collect();
        for (tenant, class) in slas {
            engine.set_class(&tenant, class);
        }
        self.cluster.enable_usage_export();
        self.billing = Some(engine);
    }

    /// One control period: reconcile, run the cluster for a period,
    /// then — with billing attached — meter the period's usage into
    /// the ledger (and checkpoint it, when the engine is persistent).
    pub fn step(&mut self) -> ReconcileSummary {
        let summary = self
            .reconciler
            .reconcile(&mut self.plane, &mut self.cluster);
        self.cluster.run_period();
        if self.billing.is_some() {
            self.meter();
        }
        summary
    }

    /// Drain the cluster's usage export into the billing engine,
    /// attributing VMs to tenants through the reconciler's bindings.
    fn meter(&mut self) {
        // Reverse map binding.vm → tenant over the live specs. Specs
        // deleted earlier this period have already been undeployed, so
        // their residual cycles land in `unattributed_usec` by design.
        let mut owner: std::collections::BTreeMap<vfc_cluster::GlobalVmId, String> =
            std::collections::BTreeMap::new();
        for spec in self.plane.store().specs() {
            if let Some(binding) = self.reconciler.binding(spec.id) {
                owner.insert(binding.vm, spec.tenant.clone());
            }
        }
        let Some(engine) = self.billing.as_mut() else {
            return;
        };
        for usage in self.cluster.drain_usage() {
            let rows = crate::billing::aggregate_usage(&usage, |vm| owner.get(&vm).cloned());
            engine.meter_period(usage.period, rows);
        }
        if engine.checkpoint().is_err() {
            self.plane.metrics.billing_checkpoint_failed();
        }
    }
}

#[derive(Deserialize)]
struct CreateReq {
    tenant: String,
    name: String,
    vcpus: u32,
    vfreq_mhz: u32,
    mem_gb: Option<u32>,
}

#[derive(Deserialize)]
struct VfreqReq {
    vfreq_mhz: u32,
}

#[derive(Serialize)]
struct IdResp {
    id: u64,
    generation: u64,
}

#[derive(Serialize)]
struct DeletedResp {
    id: u64,
}

#[derive(Serialize)]
struct UsageResp {
    tenant: String,
    usage: TenantUsage,
    quota: TenantQuota,
}

#[derive(Serialize)]
struct VmResp {
    id: u64,
    tenant: String,
    name: String,
    vcpus: u32,
    vfreq_mhz: u32,
    mem_gb: u32,
    generation: u64,
    bound: bool,
    applied_generation: u64,
    converged: bool,
}

#[derive(Serialize)]
struct HistoryResp {
    tenant: String,
    records: Vec<vfc_billing::UsageRecord>,
}

#[derive(Serialize)]
struct HealthResp {
    status: &'static str,
    desired_vms: u64,
    bound_vms: u64,
    log_seq: u64,
}

#[derive(Serialize)]
struct ErrorResp {
    error: String,
}

/// Overload limits of the API front door.
#[derive(Debug, Clone, Copy)]
pub struct ApiServerConfig {
    /// Total time a client gets to deliver one full request. The clock
    /// covers the whole read — a slow loris trickling one byte per
    /// packet still hits it — and expiry answers `408`.
    pub read_timeout: Duration,
    /// Socket write timeout for the response.
    pub write_timeout: Duration,
    /// Largest accepted request body; a larger `Content-Length` is
    /// refused with `413` before any body byte is read (oversized
    /// headers are cut off the same way).
    pub max_body_bytes: usize,
    /// Bounded accept queue depth: connections beyond it are shed
    /// immediately with `503` + `Retry-After` instead of queueing
    /// without bound behind a busy worker.
    pub queue_depth: usize,
    /// Worker threads draining the accept queue (≥ 1).
    pub workers: usize,
    /// Mutations (`POST`/`PUT`/`DELETE`) are shed with `503` while the
    /// reconciler backlog is at or above this many pending actions,
    /// letting the loop drain before taking new work. `0` disables
    /// backlog shedding. Reads always pass.
    pub max_backlog: usize,
}

impl Default for ApiServerConfig {
    fn default() -> Self {
        ApiServerConfig {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_body_bytes: 64 * 1024,
            queue_depth: 64,
            workers: 2,
            max_backlog: 0,
        }
    }
}

/// Why the front door refused a request before admission saw it. Each
/// variant maps 1:1 to a status via [`OverloadError::http_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadError {
    /// The client did not deliver a full request within the read
    /// timeout (`408`).
    ReadTimeout,
    /// Declared or delivered request size exceeds the cap (`413`).
    BodyTooLarge,
    /// The bounded accept queue was full (`503`, retryable).
    QueueFull,
    /// The reconciler backlog is saturated; mutations are refused until
    /// it drains (`503`, retryable).
    BacklogSaturated,
    /// The bytes were not a parseable HTTP request (`400` — client
    /// error, not overload; it sheds no counter).
    Malformed,
}

impl OverloadError {
    /// The HTTP status the API layer answers with.
    pub fn http_status(&self) -> u16 {
        match self {
            OverloadError::ReadTimeout => 408,
            OverloadError::BodyTooLarge => 413,
            OverloadError::QueueFull | OverloadError::BacklogSaturated => 503,
            OverloadError::Malformed => 400,
        }
    }

    /// Seconds for the `Retry-After` header, when retrying can help.
    pub fn retry_after(&self) -> Option<u64> {
        match self {
            OverloadError::QueueFull | OverloadError::BacklogSaturated => Some(1),
            _ => None,
        }
    }

    /// The shed counter this refusal increments, if it is an overload
    /// (a malformed request is the client's fault, not load).
    pub fn shed_reason(&self) -> Option<ShedReason> {
        match self {
            OverloadError::ReadTimeout => Some(ShedReason::ReadTimeout),
            OverloadError::BodyTooLarge => Some(ShedReason::BodyTooLarge),
            OverloadError::QueueFull => Some(ShedReason::QueueFull),
            OverloadError::BacklogSaturated => Some(ShedReason::Backlog),
            OverloadError::Malformed => None,
        }
    }
}

impl std::fmt::Display for OverloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverloadError::ReadTimeout => write!(f, "request read timed out"),
            OverloadError::BodyTooLarge => write!(f, "request exceeds the body cap"),
            OverloadError::QueueFull => write!(f, "server overloaded: accept queue full"),
            OverloadError::BacklogSaturated => {
                write!(f, "server overloaded: reconcile backlog saturated")
            }
            OverloadError::Malformed => write!(f, "malformed request"),
        }
    }
}

impl std::error::Error for OverloadError {}

/// The API endpoint: owns nothing but the bound address; the accept
/// and worker threads hold the runtime `Arc` and exit with the process.
pub struct ApiServer {
    addr: std::net::SocketAddr,
}

impl ApiServer {
    /// Bind `addr` (use port 0 to let the OS pick) and serve requests
    /// against `runtime` with the default overload limits.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        runtime: Arc<Mutex<ControlPlaneRuntime>>,
    ) -> Result<ApiServer, String> {
        ApiServer::bind_with(addr, runtime, ApiServerConfig::default())
    }

    /// Bind with explicit overload limits: a bounded accept queue
    /// drained by `cfg.workers` threads, with the accept thread
    /// answering `503` the moment the queue is full.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        runtime: Arc<Mutex<ControlPlaneRuntime>>,
        cfg: ApiServerConfig,
    ) -> Result<ApiServer, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind api addr: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("api local addr: {e}"))?;
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(cfg.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        for worker in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let runtime = Arc::clone(&runtime);
            std::thread::Builder::new()
                .name(format!("vfc-cp-api-{worker}"))
                .spawn(move || loop {
                    // Hold the receiver lock only for the dequeue, not
                    // while handling.
                    let next = match rx.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => break,
                    };
                    let Ok(mut stream) = next else { break };
                    handle(&runtime, &cfg, &mut stream);
                })
                .map_err(|e| format!("spawn api worker: {e}"))?;
        }
        std::thread::Builder::new()
            .name("vfc-cp-api".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut stream)) => {
                            shed(&runtime, OverloadError::QueueFull);
                            let _ = stream.set_write_timeout(Some(cfg.write_timeout));
                            let e = OverloadError::QueueFull;
                            respond(
                                &mut stream,
                                e.http_status(),
                                &err_body(&e.to_string()),
                                e.retry_after(),
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            })
            .map_err(|e| format!("spawn api thread: {e}"))?;
        Ok(ApiServer { addr: local })
    }

    /// The actually bound address (resolves `:0` to the chosen port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

/// Count a shed in the runtime's metrics (skipped if the lock is
/// poisoned — shedding must never block on accounting).
fn shed(runtime: &Mutex<ControlPlaneRuntime>, e: OverloadError) {
    if let (Some(reason), Ok(mut rt)) = (e.shed_reason(), runtime.lock()) {
        rt.plane.metrics.shed(reason);
    }
}

/// Serve one connection: read within the limits, route, respond.
fn handle(runtime: &Mutex<ControlPlaneRuntime>, cfg: &ApiServerConfig, stream: &mut TcpStream) {
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    match read_request(stream, cfg) {
        Ok((method, path, body)) => {
            let (status, body, retry_after) = route(runtime, cfg, &method, &path, &body);
            respond(stream, status, &body, retry_after);
        }
        Err(e) => {
            shed(runtime, e);
            respond(
                stream,
                e.http_status(),
                &err_body(&e.to_string()),
                e.retry_after(),
            );
        }
    }
}

fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("body not utf-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

fn err_body(msg: &str) -> String {
    serde_json::to_string(&ErrorResp {
        error: msg.to_owned(),
    })
    .unwrap_or_else(|_| "{\"error\":\"unrenderable\"}".into())
}

/// `429`s carry `Retry-After: 1` — the bucket refills next period — so
/// a well-behaved client knows when trying again can succeed.
fn admission_err(e: &AdmissionError) -> (u16, String, Option<u64>) {
    let status = e.http_status();
    let retry_after = (status == 429).then_some(1);
    (status, err_body(&e.to_string()), retry_after)
}

fn ok_json<T: Serialize>(status: u16, value: &T) -> (u16, String, Option<u64>) {
    match serde_json::to_string(value) {
        Ok(body) => (status, body, None),
        Err(e) => (500, err_body(&format!("serialize response: {e}")), None),
    }
}

/// Dispatch one request. Split out of the accept loop so unit tests can
/// call it without sockets. Returns `(status, body, retry_after)`.
fn route(
    runtime: &Mutex<ControlPlaneRuntime>,
    cfg: &ApiServerConfig,
    method: &str,
    path: &str,
    body: &[u8],
) -> (u16, String, Option<u64>) {
    let Ok(mut rt) = runtime.lock() else {
        return (500, err_body("runtime lock poisoned"), None);
    };
    let rt = &mut *rt;
    // Backlog shedding guards mutations only: reads must keep working
    // on an overloaded plane or the operator flies blind.
    if cfg.max_backlog > 0 && matches!(method, "POST" | "PUT" | "DELETE") {
        let backlog = rt.reconciler.backlog(&rt.plane);
        if backlog >= cfg.max_backlog {
            rt.plane.metrics.shed(ShedReason::Backlog);
            let per_period = rt.reconciler.config().max_actions_per_period.max(1);
            // Seconds until the loop has plausibly drained the queue,
            // at one reconcile pass per (≈1 s) period.
            let drain = (backlog / per_period) as u64 + 1;
            let e = OverloadError::BacklogSaturated;
            return (e.http_status(), err_body(&e.to_string()), Some(drain));
        }
    }
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    match (method, segments.as_slice()) {
        ("POST", ["vms"]) => {
            let req: CreateReq = match parse_body(body) {
                Ok(r) => r,
                Err(e) => return (400, err_body(&format!("bad body: {e}")), None),
            };
            let template = VmTemplate::new(&req.name, req.vcpus, MHz(req.vfreq_mhz))
                .with_mem_gb(req.mem_gb.unwrap_or(4));
            let loads = rt.cluster.node_loads();
            match rt.plane.create_vm(&req.tenant, template, &loads) {
                Ok(id) => ok_json(
                    201,
                    &IdResp {
                        id: id.0,
                        generation: 1,
                    },
                ),
                Err(e) => admission_err(&e),
            }
        }
        ("DELETE", ["vms", id]) => {
            let Ok(id) = id.parse::<u64>() else {
                return (400, err_body("vm id must be an integer"), None);
            };
            match rt.plane.delete_vm(SpecId(id)) {
                Ok(_) => ok_json(200, &DeletedResp { id }),
                Err(e) => admission_err(&e),
            }
        }
        ("PUT", ["vms", id, "vfreq"]) => {
            let Ok(id) = id.parse::<u64>() else {
                return (400, err_body("vm id must be an integer"), None);
            };
            let req: VfreqReq = match parse_body(body) {
                Ok(r) => r,
                Err(e) => return (400, err_body(&format!("bad body: {e}")), None),
            };
            let loads = rt.cluster.node_loads();
            match rt.plane.resize_vm(SpecId(id), MHz(req.vfreq_mhz), &loads) {
                Ok(generation) => ok_json(200, &IdResp { id, generation }),
                Err(e) => admission_err(&e),
            }
        }
        ("GET", ["vms", id]) => {
            let Ok(id) = id.parse::<u64>() else {
                return (400, err_body("vm id must be an integer"), None);
            };
            match rt.plane.store().get(SpecId(id)) {
                Some(spec) => {
                    let binding = rt.reconciler.binding(spec.id);
                    ok_json(
                        200,
                        &VmResp {
                            id,
                            tenant: spec.tenant.clone(),
                            name: spec.template.name.clone(),
                            vcpus: spec.template.vcpus,
                            vfreq_mhz: spec.template.vfreq.as_u32(),
                            mem_gb: spec.template.mem_gb,
                            generation: spec.generation,
                            bound: binding.is_some(),
                            applied_generation: binding
                                .as_ref()
                                .map(|b| b.applied_generation)
                                .unwrap_or(0),
                            converged: binding
                                .map(|b| b.applied_generation == spec.generation)
                                .unwrap_or(false),
                        },
                    )
                }
                None => (404, err_body(&format!("no such vm spec-{id}")), None),
            }
        }
        ("GET", ["tenants", name, "bill"]) => match (&rt.billing, rt.plane.quota(name)) {
            (Some(engine), Some(_)) => {
                let audit = crate::billing::spec_audit(rt.plane.store().log(), name);
                (200, engine.invoice(name, audit).render_json(), None)
            }
            (None, _) => (404, err_body("billing is not enabled"), None),
            (_, None) => (404, err_body(&format!("unknown tenant {name:?}")), None),
        },
        ("GET", ["tenants", name, "usage", "history"]) => {
            match (&rt.billing, rt.plane.quota(name)) {
                (Some(engine), Some(_)) => {
                    let records: Vec<vfc_billing::UsageRecord> =
                        engine.history(name).into_iter().cloned().collect();
                    ok_json(
                        200,
                        &HistoryResp {
                            tenant: (*name).to_owned(),
                            records,
                        },
                    )
                }
                (None, _) => (404, err_body("billing is not enabled"), None),
                (_, None) => (404, err_body(&format!("unknown tenant {name:?}")), None),
            }
        }
        ("GET", ["tenants", name, "usage"]) => match rt.plane.quota(name) {
            Some(quota) => ok_json(
                200,
                &UsageResp {
                    tenant: (*name).to_owned(),
                    usage: rt.plane.usage(name),
                    quota,
                },
            ),
            None => (404, err_body(&format!("unknown tenant {name:?}")), None),
        },
        ("GET", ["healthz"]) => ok_json(
            200,
            &HealthResp {
                status: "ok",
                desired_vms: rt.plane.store().len() as u64,
                bound_vms: rt.reconciler.bound() as u64,
                log_seq: rt.plane.store().seq(),
            },
        ),
        ("GET", ["metrics"]) => {
            // One merged exposition: control-plane families, plus the
            // `vfc_bill_*` families once billing is attached.
            let mut page = rt.plane.metrics.render();
            if let Some(engine) = &rt.billing {
                page.push_str(&engine.render_telemetry());
            }
            (200, page, None)
        }
        _ => (404, err_body(&format!("no route {method} {path}")), None),
    }
}

/// One bounded, deadline-aware read. The socket read timeout is set to
/// the time left until the overall deadline, so a trickling sender
/// cannot reset the clock packet by packet.
fn read_chunk(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    started: std::time::Instant,
    timeout: Duration,
) -> Result<usize, OverloadError> {
    let remaining = timeout
        .checked_sub(started.elapsed())
        .filter(|d| !d.is_zero())
        .ok_or(OverloadError::ReadTimeout)?;
    stream
        .set_read_timeout(Some(remaining))
        .map_err(|_| OverloadError::Malformed)?;
    match stream.read(chunk) {
        Ok(0) => Err(OverloadError::Malformed), // EOF mid-request
        Ok(n) => Ok(n),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Err(OverloadError::ReadTimeout)
        }
        Err(_) => Err(OverloadError::Malformed),
    }
}

/// Read one request — request line, headers, `Content-Length` body —
/// within `cfg`'s limits: the whole read must finish inside
/// `read_timeout`, headers stop at 16 KiB, and a declared body over
/// `max_body_bytes` is refused before a single body byte is read.
fn read_request(
    stream: &mut TcpStream,
    cfg: &ApiServerConfig,
) -> Result<(String, String, Vec<u8>), OverloadError> {
    let started = std::time::Instant::now();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find(&buf, b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > 16 * 1024 {
            return Err(OverloadError::BodyTooLarge);
        }
        let n = read_chunk(stream, &mut chunk, started, cfg.read_timeout)?;
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).map_err(|_| OverloadError::Malformed)?;
    let mut lines = head.split("\r\n");
    let mut request_line = lines
        .next()
        .ok_or(OverloadError::Malformed)?
        .split_whitespace();
    let method = request_line
        .next()
        .ok_or(OverloadError::Malformed)?
        .to_owned();
    let path = request_line
        .next()
        .ok_or(OverloadError::Malformed)?
        .to_owned();
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > cfg.max_body_bytes {
        return Err(OverloadError::BodyTooLarge);
    }
    let mut body = buf[header_end..].to_vec();
    while body.len() < content_length {
        let n = read_chunk(stream, &mut chunk, started, cfg.read_timeout)?;
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((method, path, body))
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn respond(stream: &mut TcpStream, status: u16, body: &str, retry_after: Option<u64>) {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        507 => "Insufficient Storage",
        _ => "Internal Server Error",
    };
    let content_type = if body.starts_with('{') {
        "application/json"
    } else {
        "text/plain; version=0.0.4; charset=utf-8"
    };
    let retry = retry_after
        .map(|secs| format!("Retry-After: {secs}\r\n"))
        .unwrap_or_default();
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{retry}Connection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quota::TenantQuota;
    use crate::reconcile::ReconcilerConfig;
    use vfc_cluster::Strategy;
    use vfc_cpusched::topology::NodeSpec;

    fn runtime() -> Arc<Mutex<ControlPlaneRuntime>> {
        let mut plane = ControlPlane::new();
        plane.add_tenant(
            "acme",
            TenantQuota {
                max_vms: 4,
                max_vcpus: 16,
                max_mhz: 20_000,
            },
        );
        let cluster = ClusterManager::new(
            vec![NodeSpec::custom("n", 1, 2, 2, MHz(2400)); 2],
            Strategy::FrequencyControl,
            3,
        );
        Arc::new(Mutex::new(ControlPlaneRuntime::new(
            plane,
            cluster,
            Reconciler::new(ReconcilerConfig::default()),
        )))
    }

    fn http(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    fn post(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        http(
            addr,
            &format!(
                "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn crud_round_trip_over_http() {
        let rt = runtime();
        let server = ApiServer::bind("127.0.0.1:0", Arc::clone(&rt)).unwrap();
        let addr = server.local_addr();

        let (status, body) = post(
            addr,
            "POST",
            "/vms",
            r#"{"tenant":"acme","name":"web","vcpus":2,"vfreq_mhz":1200}"#,
        );
        assert_eq!(status, 201, "{body}");
        assert!(body.contains("\"id\":0"), "{body}");

        rt.lock().unwrap().step();

        let (status, body) = post(addr, "PUT", "/vms/0/vfreq", r#"{"vfreq_mhz":1800}"#);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"generation\":2"), "{body}");

        let (status, body) = http(addr, "GET /tenants/acme/usage HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"mhz\":3600"), "{body}");

        let (status, body) = http(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"desired_vms\":1"), "{body}");

        let (status, _) = post(addr, "DELETE", "/vms/0", "");
        assert_eq!(status, 200);
        let (status, _) = post(addr, "DELETE", "/vms/0", "");
        assert_eq!(status, 404, "double delete is a typed miss");

        let (status, body) = http(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);
        assert!(
            body.contains("vfc_cp_admission_accepted_total{tenant=\"acme\"} 3"),
            "{body}"
        );
    }

    #[test]
    fn vm_detail_reports_spec_and_reconcile_state() {
        let rt = runtime();
        let server = ApiServer::bind("127.0.0.1:0", Arc::clone(&rt)).unwrap();
        let addr = server.local_addr();

        let (status, _) = post(
            addr,
            "POST",
            "/vms",
            r#"{"tenant":"acme","name":"web","vcpus":2,"vfreq_mhz":1200}"#,
        );
        assert_eq!(status, 201);

        // Admitted but not yet reconciled: unbound, not converged.
        let (status, body) = http(addr, "GET /vms/0 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"bound\":false"), "{body}");
        assert!(body.contains("\"converged\":false"), "{body}");

        rt.lock().unwrap().step();

        let (status, body) = http(addr, "GET /vms/0 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"tenant\":\"acme\""), "{body}");
        assert!(body.contains("\"vfreq_mhz\":1200"), "{body}");
        assert!(body.contains("\"bound\":true"), "{body}");
        assert!(body.contains("\"applied_generation\":1"), "{body}");
        assert!(body.contains("\"converged\":true"), "{body}");

        let (status, _) = http(addr, "GET /vms/99 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 404);
        let (status, _) = http(addr, "GET /vms/zebra HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 400);
    }

    #[test]
    fn billing_routes_serve_invoices_and_history_once_attached() {
        let rt = runtime();
        let server = ApiServer::bind("127.0.0.1:0", Arc::clone(&rt)).unwrap();
        let addr = server.local_addr();

        // Without an engine the billing routes are a typed miss.
        let (status, body) = http(addr, "GET /tenants/acme/bill HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("billing is not enabled"), "{body}");

        rt.lock()
            .unwrap()
            .attach_billing(vfc_billing::BillingEngine::new(
                vfc_billing::PricingConfig::linear(1_000, 2_400),
            ));

        let (status, _) = post(
            addr,
            "POST",
            "/vms",
            r#"{"tenant":"acme","name":"web","vcpus":2,"vfreq_mhz":1200}"#,
        );
        assert_eq!(status, 201);
        for _ in 0..3 {
            rt.lock().unwrap().step();
        }

        let (status, body) = http(addr, "GET /tenants/acme/bill HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"tenant\": \"acme\""), "{body}");
        assert!(body.contains("reserved capacity @ 1200 MHz"), "{body}");
        assert!(body.contains("\"creates\": 1"), "{body}");

        let (status, body) = http(
            addr,
            "GET /tenants/acme/usage/history HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"records\""), "{body}");
        assert!(body.contains("\"vfreq_mhz\":1200"), "{body}");

        let (status, _) = http(addr, "GET /tenants/ghost/bill HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 404);

        // The merged exposition carries the billing families too.
        let (status, body) = http(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("vfc_cp_desired_vms"), "{body}");
        assert!(body.contains("vfc_bill_periods_metered_total"), "{body}");
    }

    #[test]
    fn error_statuses_map_the_taxonomy() {
        let rt = runtime();
        let server = ApiServer::bind("127.0.0.1:0", Arc::clone(&rt)).unwrap();
        let addr = server.local_addr();

        // 400: degenerate template (F_v = 0) rejected at the boundary.
        let (status, body) = post(
            addr,
            "POST",
            "/vms",
            r#"{"tenant":"acme","name":"z","vcpus":2,"vfreq_mhz":0}"#,
        );
        assert_eq!(status, 400, "{body}");

        // 403: unregistered tenant.
        let (status, _) = post(
            addr,
            "POST",
            "/vms",
            r#"{"tenant":"ghost","name":"z","vcpus":2,"vfreq_mhz":500}"#,
        );
        assert_eq!(status, 403);

        // 507: a VM wider than any node.
        let (status, body) = post(
            addr,
            "POST",
            "/vms",
            r#"{"tenant":"acme","name":"wide","vcpus":8,"vfreq_mhz":2400}"#,
        );
        assert_eq!(status, 507, "{body}");

        // 404: resize of a VM that never existed.
        let (status, _) = post(addr, "PUT", "/vms/99/vfreq", r#"{"vfreq_mhz":800}"#);
        assert_eq!(status, 404);

        // 400: malformed JSON body.
        let (status, _) = post(addr, "POST", "/vms", "{nope");
        assert_eq!(status, 400);

        // 404: unknown route.
        let (status, _) = http(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 404);
    }

    /// Send raw bytes and return the full response (status line, headers
    /// and body) for header-level assertions.
    fn raw(addr: std::net::SocketAddr, request: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn slow_loris_and_oversized_bodies_are_shed_typed() {
        let rt = runtime();
        let cfg = ApiServerConfig {
            read_timeout: Duration::from_millis(200),
            max_body_bytes: 1024,
            ..ApiServerConfig::default()
        };
        let server = ApiServer::bind_with("127.0.0.1:0", Arc::clone(&rt), cfg).unwrap();
        let addr = server.local_addr();

        // 413 from the Content-Length header alone — no body byte read.
        let response = raw(
            addr,
            b"POST /vms HTTP/1.1\r\nHost: x\r\nContent-Length: 10000000\r\n\r\n",
        );
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");

        // 408: a slow loris that never finishes its headers.
        let response = raw(addr, b"POST /vms HTTP/1.1\r\n");
        assert!(response.starts_with("HTTP/1.1 408"), "{response}");

        // A well-behaved request still lands after the abuse.
        let (status, _) = http(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);

        let rt = rt.lock().unwrap();
        assert_eq!(rt.plane.metrics.sheds(ShedReason::BodyTooLarge), 1);
        assert_eq!(rt.plane.metrics.sheds(ShedReason::ReadTimeout), 1);
    }

    #[test]
    fn backlog_saturation_sheds_mutations_but_not_reads() {
        let rt = runtime();
        let cfg = ApiServerConfig {
            max_backlog: 1,
            ..ApiServerConfig::default()
        };
        let server = ApiServer::bind_with("127.0.0.1:0", Arc::clone(&rt), cfg).unwrap();
        let addr = server.local_addr();

        // Backlog 0 < 1: the first create is admitted...
        let (status, body) = post(
            addr,
            "POST",
            "/vms",
            r#"{"tenant":"acme","name":"a","vcpus":1,"vfreq_mhz":500}"#,
        );
        assert_eq!(status, 201, "{body}");

        // ...and now one unbound spec saturates the threshold: the next
        // mutation gets 503 + Retry-After while reads keep working.
        let response = raw(
            addr,
            b"POST /vms HTTP/1.1\r\nHost: x\r\nContent-Length: 54\r\n\r\n{\"tenant\":\"acme\",\"name\":\"b\",\"vcpus\":1,\"vfreq_mhz\":500}",
        );
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        assert!(response.contains("Retry-After:"), "{response}");
        let (status, _) = http(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);

        // Reconciling drains the backlog and mutations flow again.
        rt.lock().unwrap().step();
        let (status, body) = post(
            addr,
            "POST",
            "/vms",
            r#"{"tenant":"acme","name":"c","vcpus":1,"vfreq_mhz":500}"#,
        );
        assert_eq!(status, 201, "{body}");
        assert_eq!(
            rt.lock().unwrap().plane.metrics.sheds(ShedReason::Backlog),
            1
        );
    }

    #[test]
    fn rate_limited_mutations_carry_retry_after() {
        let rt = runtime();
        {
            let mut rt = rt.lock().unwrap();
            rt.plane.set_rate_limit(crate::admission::RateLimit {
                burst: 1,
                per_tick: 1,
            });
            rt.plane.add_tenant(
                "tiny",
                TenantQuota {
                    max_vms: 4,
                    max_vcpus: 16,
                    max_mhz: 20_000,
                },
            );
        }
        let server = ApiServer::bind("127.0.0.1:0", Arc::clone(&rt)).unwrap();
        let addr = server.local_addr();
        let body = r#"{"tenant":"tiny","name":"a","vcpus":1,"vfreq_mhz":500}"#;
        let (status, _) = post(addr, "POST", "/vms", body);
        assert_eq!(status, 201);
        let response = raw(
            addr,
            format!(
                "POST /vms HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        assert!(response.contains("Retry-After: 1"), "{response}");
    }
}
