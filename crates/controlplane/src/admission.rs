//! Admission control: every mutation is validated before it may touch
//! the desired state.
//!
//! The checks run in a fixed order, and a request must pass all of them:
//!
//! 1. **tenant** — the tenant must be registered (a quota on file);
//! 2. **rate** — one token from the tenant's [`TokenBucket`]; a flood of
//!    invalid requests still drains the bucket, which is exactly what a
//!    rate limiter is for;
//! 3. **shape** — [`VmTemplate::validate`] rejects degenerate requests
//!    (zero `F_v`, zero vCPUs) at the boundary;
//! 4. **quota** — the tenant's post-mutation footprint must stay within
//!    its [`TenantQuota`] on all three axes;
//! 5. **capacity** — the post-mutation desired state must be *feasible*
//!    under the paper's core splitting constraint (Eq. 7): a
//!    first-fit-decreasing pack of every desired VM's `k_v·F_v` demand
//!    into the up nodes' `k_n·F_n^MAX` budgets must succeed. Feasibility
//!    is checked against capacities, not current placements — realizing
//!    the state (including any migrations fragmentation makes necessary)
//!    is the [reconciler](crate::reconcile)'s job.
//!
//! Rejections are **typed errors** ([`AdmissionError`]), never panics;
//! each maps to a stable HTTP status for the API layer.

use crate::quota::{TenantQuota, TenantUsage, TokenBucket};
use crate::spec::{SpecId, SpecStore, VmSpec};
use crate::telemetry::ControlPlaneMetrics;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use vfc_billing::SlaClass;
use vfc_cluster::NodeLoad;
use vfc_simcore::MHz;
use vfc_vmm::VmTemplate;

/// Why a mutation was refused.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionError {
    /// The template failed shape validation (zero `F_v`, zero vCPUs…).
    InvalidTemplate(String),
    /// The tenant has no quota on file.
    UnknownTenant(String),
    /// No live spec with this id.
    UnknownSpec(SpecId),
    /// The mutation would push the tenant past a quota axis.
    QuotaExceeded {
        /// Offending tenant.
        tenant: String,
        /// Which axis (`"vms"`, `"vcpus"` or `"mhz"`).
        resource: String,
        /// Footprint after the mutation.
        requested: u64,
        /// The tenant's ceiling on that axis.
        limit: u64,
    },
    /// The tenant's token bucket is empty.
    RateLimited(String),
    /// The post-mutation desired state does not pack into the up nodes'
    /// Eq. 7 budgets.
    InsufficientCapacity {
        /// Total desired demand after the mutation (MHz).
        demand_mhz: u64,
        /// Total Eq. 7 budget of the nodes currently up (MHz).
        capacity_mhz: u64,
    },
    /// The mutation was applied in memory but could not be persisted.
    Internal(String),
}

impl AdmissionError {
    /// The HTTP status the API layer answers with.
    pub fn http_status(&self) -> u16 {
        match self {
            AdmissionError::InvalidTemplate(_) => 400,
            AdmissionError::UnknownTenant(_) => 403,
            AdmissionError::UnknownSpec(_) => 404,
            AdmissionError::QuotaExceeded { .. } => 403,
            AdmissionError::RateLimited(_) => 429,
            AdmissionError::InsufficientCapacity { .. } => 507,
            AdmissionError::Internal(_) => 500,
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::InvalidTemplate(msg) => write!(f, "invalid template: {msg}"),
            AdmissionError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            AdmissionError::UnknownSpec(id) => write!(f, "no such vm {id}"),
            AdmissionError::QuotaExceeded {
                tenant,
                resource,
                requested,
                limit,
            } => write!(
                f,
                "tenant {tenant:?} quota exceeded on {resource}: {requested} > {limit}"
            ),
            AdmissionError::RateLimited(t) => write!(f, "tenant {t:?} rate limited"),
            AdmissionError::InsufficientCapacity {
                demand_mhz,
                capacity_mhz,
            } => write!(
                f,
                "cluster cannot hold the desired state: {demand_mhz} MHz demanded, \
                 {capacity_mhz} MHz of Eq. 7 budget up"
            ),
            AdmissionError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Per-tenant mutation rate: a bucket of `burst` tokens refilled by
/// `per_tick` every control-plane period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateLimit {
    /// Bucket capacity (max burst of back-to-back mutations).
    pub burst: u64,
    /// Tokens refilled per [`ControlPlane::tick`].
    pub per_tick: u64,
}

impl Default for RateLimit {
    fn default() -> Self {
        RateLimit {
            burst: 8,
            per_tick: 2,
        }
    }
}

/// The admission front end: desired-state store + per-tenant quotas,
/// token buckets and metrics, behind validating mutation methods.
#[derive(Debug)]
pub struct ControlPlane {
    store: SpecStore,
    quotas: BTreeMap<String, TenantQuota>,
    buckets: BTreeMap<String, TokenBucket>,
    slas: BTreeMap<String, SlaClass>,
    rate: RateLimit,
    persist: Option<PathBuf>,
    /// Admission / reconcile metric families.
    pub metrics: ControlPlaneMetrics,
}

impl Default for ControlPlane {
    fn default() -> Self {
        ControlPlane::new()
    }
}

impl ControlPlane {
    /// An empty, non-persistent control plane with the default rate
    /// limit.
    pub fn new() -> Self {
        ControlPlane {
            store: SpecStore::new(),
            quotas: BTreeMap::new(),
            buckets: BTreeMap::new(),
            slas: BTreeMap::new(),
            rate: RateLimit::default(),
            persist: None,
            metrics: ControlPlaneMetrics::new(),
        }
    }

    /// A control plane whose spec log is persisted to `path` after every
    /// accepted mutation. If the file already exists the log is replayed
    /// (crash recovery): tenants still need to be re-registered, but
    /// specs — and the ids they were ACKed under — survive.
    pub fn with_persistence(path: PathBuf) -> Result<Self, String> {
        let mut cp = ControlPlane::new();
        if path.exists() {
            cp.store = SpecStore::load(&path)?;
        }
        cp.persist = Some(path);
        Ok(cp)
    }

    /// Override the rate limit applied to tenants registered after this
    /// call.
    pub fn set_rate_limit(&mut self, rate: RateLimit) {
        self.rate = rate;
    }

    /// Register a tenant with its quota; replaces any previous quota but
    /// keeps an existing bucket (re-registering must not reset a drained
    /// rate limiter).
    pub fn add_tenant(&mut self, name: &str, quota: TenantQuota) {
        self.quotas.insert(name.to_owned(), quota);
        self.buckets
            .entry(name.to_owned())
            .or_insert_with(|| TokenBucket::new(self.rate.burst, self.rate.per_tick));
    }

    /// Register a tenant with its quota *and* SLA class. Plain
    /// [`add_tenant`](ControlPlane::add_tenant) leaves the tenant on the
    /// default class ([`SlaClass::default`]: guaranteed).
    pub fn add_tenant_with_sla(&mut self, name: &str, quota: TenantQuota, sla: SlaClass) {
        self.add_tenant(name, quota);
        self.slas.insert(name.to_owned(), sla);
    }

    /// The SLA class the tenant is billed under (default when none was
    /// registered explicitly).
    pub fn sla_of(&self, tenant: &str) -> SlaClass {
        self.slas.get(tenant).cloned().unwrap_or_default()
    }

    /// All explicitly registered SLA classes, tenant-ordered.
    pub fn slas(&self) -> impl Iterator<Item = (&str, &SlaClass)> {
        self.slas.iter().map(|(t, c)| (t.as_str(), c))
    }

    /// The desired-state store (read-only; mutations go through the
    /// admission methods).
    pub fn store(&self) -> &SpecStore {
        &self.store
    }

    /// A tenant's current footprint, summed over its live specs.
    pub fn usage(&self, tenant: &str) -> TenantUsage {
        let mut usage = TenantUsage::default();
        for spec in self.store.specs().filter(|s| s.tenant == tenant) {
            usage.add(spec.template.vcpus, spec.template.freq_demand_mhz());
        }
        usage
    }

    /// A tenant's quota, if registered.
    pub fn quota(&self, tenant: &str) -> Option<TenantQuota> {
        self.quotas.get(tenant).copied()
    }

    /// Admit a new VM for `tenant`. On success the spec is appended to
    /// the log (and persisted) and its id returned; the reconciler will
    /// deploy it.
    pub fn create_vm(
        &mut self,
        tenant: &str,
        template: VmTemplate,
        loads: &[NodeLoad],
    ) -> Result<SpecId, AdmissionError> {
        self.admit_common(tenant)?;
        if let Err(msg) = template.validate() {
            self.metrics.rejected(tenant, false);
            return Err(AdmissionError::InvalidTemplate(msg));
        }
        let mut usage = self.usage(tenant);
        usage.add(template.vcpus, template.freq_demand_mhz());
        if let Err(e) = self.check_quota(tenant, usage) {
            self.metrics.rejected(tenant, false);
            return Err(e);
        }
        let demands: Vec<u64> = self
            .store
            .specs()
            .map(|s| s.template.freq_demand_mhz())
            .chain(std::iter::once(template.freq_demand_mhz()))
            .collect();
        if let Err(e) = check_capacity(&demands, loads) {
            self.metrics.rejected(tenant, false);
            return Err(e);
        }
        let id = self.store.create(tenant, template);
        self.metrics.accepted(tenant);
        self.after_mutation(tenant)?;
        Ok(id)
    }

    /// Admit a live virtual-frequency resize of an existing VM. On
    /// success returns the spec's new generation; the reconciler will
    /// apply the resize to the running VM.
    pub fn resize_vm(
        &mut self,
        id: SpecId,
        new_vfreq: MHz,
        loads: &[NodeLoad],
    ) -> Result<u64, AdmissionError> {
        let spec = self
            .store
            .get(id)
            .cloned()
            .ok_or(AdmissionError::UnknownSpec(id))?;
        let tenant = spec.tenant.clone();
        self.admit_common(&tenant)?;
        let mut resized = spec.template.clone();
        resized.vfreq = new_vfreq;
        if let Err(msg) = resized.validate() {
            self.metrics.rejected(&tenant, false);
            return Err(AdmissionError::InvalidTemplate(msg));
        }
        let mut usage = self.usage(&tenant);
        usage.mhz = usage.mhz - spec.template.freq_demand_mhz() + resized.freq_demand_mhz();
        if let Err(e) = self.check_quota(&tenant, usage) {
            self.metrics.rejected(&tenant, false);
            return Err(e);
        }
        let demands: Vec<u64> = self
            .store
            .specs()
            .map(|s| {
                if s.id == id {
                    resized.freq_demand_mhz()
                } else {
                    s.template.freq_demand_mhz()
                }
            })
            .collect();
        if let Err(e) = check_capacity(&demands, loads) {
            self.metrics.rejected(&tenant, false);
            return Err(e);
        }
        let generation = self
            .store
            .resize(id, new_vfreq)
            .expect("spec existence checked above");
        self.metrics.accepted(&tenant);
        self.after_mutation(&tenant)?;
        Ok(generation)
    }

    /// Remove a VM from the desired state. Deletions free capacity so
    /// they face no quota or capacity check, but they do draw a rate
    /// token — churn is churn.
    pub fn delete_vm(&mut self, id: SpecId) -> Result<VmSpec, AdmissionError> {
        let tenant = self
            .store
            .get(id)
            .map(|s| s.tenant.clone())
            .ok_or(AdmissionError::UnknownSpec(id))?;
        self.admit_common(&tenant)?;
        let spec = self.store.delete(id).expect("spec existence checked above");
        self.metrics.accepted(&tenant);
        self.after_mutation(&tenant)?;
        Ok(spec)
    }

    /// One control-plane period: refill every tenant's token bucket and
    /// refresh the usage gauges. Call once per reconcile period.
    pub fn tick(&mut self) {
        for bucket in self.buckets.values_mut() {
            bucket.tick();
        }
        let tenants: Vec<String> = self.quotas.keys().cloned().collect();
        for tenant in tenants {
            let usage = self.usage(&tenant);
            self.metrics.set_usage(&tenant, usage);
        }
        self.metrics
            .set_store(self.store.len() as u64, self.store.seq());
    }

    /// Tenant registration + rate limit, shared by every mutation.
    fn admit_common(&mut self, tenant: &str) -> Result<(), AdmissionError> {
        if !self.quotas.contains_key(tenant) {
            self.metrics.rejected(tenant, false);
            return Err(AdmissionError::UnknownTenant(tenant.to_owned()));
        }
        let bucket = self
            .buckets
            .get_mut(tenant)
            .expect("every registered tenant has a bucket");
        if !bucket.try_take() {
            self.metrics.rejected(tenant, true);
            return Err(AdmissionError::RateLimited(tenant.to_owned()));
        }
        Ok(())
    }

    fn check_quota(&self, tenant: &str, usage: TenantUsage) -> Result<(), AdmissionError> {
        let quota = self.quotas[tenant];
        let axes = [
            ("vms", usage.vms, quota.max_vms),
            ("vcpus", usage.vcpus, quota.max_vcpus),
            ("mhz", usage.mhz, quota.max_mhz),
        ];
        for (resource, requested, limit) in axes {
            if requested > limit {
                return Err(AdmissionError::QuotaExceeded {
                    tenant: tenant.to_owned(),
                    resource: resource.to_owned(),
                    requested,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Persist the log after an accepted mutation. On I/O failure the
    /// in-memory state is kept (it is ahead of disk until the next
    /// successful save) and the caller gets a 500-class error.
    fn after_mutation(&mut self, _tenant: &str) -> Result<(), AdmissionError> {
        self.metrics
            .set_store(self.store.len() as u64, self.store.seq());
        if let Some(path) = &self.persist {
            self.store.save(path).map_err(AdmissionError::Internal)?;
        }
        Ok(())
    }
}

/// First-fit-decreasing feasibility check of `demands` (each `k_v·F_v`,
/// MHz) against the Eq. 7 budgets (`k_n·F_n^MAX`, MHz) of the nodes that
/// are up.
fn check_capacity(demands: &[u64], loads: &[NodeLoad]) -> Result<(), AdmissionError> {
    let mut free: Vec<u64> = loads
        .iter()
        .filter(|n| n.up)
        .map(|n| n.capacity_mhz)
        .collect();
    let mut sorted: Vec<u64> = demands.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let demand_mhz: u64 = sorted.iter().sum();
    let capacity_mhz: u64 = free.iter().sum();
    for demand in sorted {
        match free.iter_mut().find(|f| **f >= demand) {
            Some(slot) => *slot -= demand,
            None => {
                return Err(AdmissionError::InsufficientCapacity {
                    demand_mhz,
                    capacity_mhz,
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(capacities_mhz: &[u64]) -> Vec<NodeLoad> {
        capacities_mhz
            .iter()
            .enumerate()
            .map(|(i, &capacity_mhz)| NodeLoad {
                name: format!("n-{i}"),
                up: true,
                used_mhz: 0,
                capacity_mhz,
                used_vcpus: 0,
                threads: 8,
                used_mem_gb: 0,
                mem_gb: 64,
            })
            .collect()
    }

    fn quota(max_vms: u64, max_vcpus: u64, max_mhz: u64) -> TenantQuota {
        TenantQuota {
            max_vms,
            max_vcpus,
            max_mhz,
        }
    }

    #[test]
    fn unknown_tenant_and_bad_template_are_rejected() {
        let mut cp = ControlPlane::new();
        let l = loads(&[9600]);
        assert_eq!(
            cp.create_vm("ghost", VmTemplate::small(), &l),
            Err(AdmissionError::UnknownTenant("ghost".into()))
        );
        cp.add_tenant("acme", TenantQuota::unlimited());
        let err = cp
            .create_vm("acme", VmTemplate::new("z", 2, MHz(0)), &l)
            .unwrap_err();
        assert!(matches!(err, AdmissionError::InvalidTemplate(_)));
        assert_eq!(err.http_status(), 400);
    }

    #[test]
    fn quota_axes_are_enforced_independently() {
        let mut cp = ControlPlane::new();
        let l = loads(&[100_000]);
        cp.add_tenant("acme", quota(10, 4, 100_000));
        cp.create_vm("acme", VmTemplate::medium(), &l).unwrap();
        // 4 + 4 vCPUs > 4.
        let err = cp.create_vm("acme", VmTemplate::medium(), &l).unwrap_err();
        assert!(
            matches!(&err, AdmissionError::QuotaExceeded { resource, .. } if resource == "vcpus"),
            "{err:?}"
        );
        assert_eq!(err.http_status(), 403);
        // Usage is unchanged by the rejection.
        assert_eq!(cp.usage("acme").vms, 1);
    }

    #[test]
    fn rate_limiter_drains_and_refills() {
        let mut cp = ControlPlane::new();
        cp.set_rate_limit(RateLimit {
            burst: 2,
            per_tick: 1,
        });
        cp.add_tenant("acme", TenantQuota::unlimited());
        let l = loads(&[1_000_000]);
        cp.create_vm("acme", VmTemplate::small(), &l).unwrap();
        cp.create_vm("acme", VmTemplate::small(), &l).unwrap();
        assert_eq!(
            cp.create_vm("acme", VmTemplate::small(), &l),
            Err(AdmissionError::RateLimited("acme".into()))
        );
        cp.tick();
        cp.create_vm("acme", VmTemplate::small(), &l).unwrap();
        assert_eq!(cp.metrics.admission_counts("acme"), (3, 0, 1));
    }

    #[test]
    fn capacity_check_is_a_bin_pack_not_a_sum() {
        let mut cp = ControlPlane::new();
        cp.add_tenant("acme", TenantQuota::unlimited());
        // Two nodes of 5000: after two 4000-MHz VMs, a 2000-MHz VM
        // passes the naive sum check (10000 total) but packs into
        // neither 1000-MHz remainder.
        let l = loads(&[5000, 5000]);
        cp.create_vm("acme", VmTemplate::new("a", 2, MHz(2000)), &l)
            .unwrap();
        cp.create_vm("acme", VmTemplate::new("b", 2, MHz(2000)), &l)
            .unwrap();
        let err = cp
            .create_vm("acme", VmTemplate::new("c", 2, MHz(1000)), &l)
            .unwrap_err();
        assert!(matches!(err, AdmissionError::InsufficientCapacity { .. }));
        assert_eq!(err.http_status(), 507);
        // A VM that fits the remainder is still admitted.
        cp.create_vm("acme", VmTemplate::new("d", 1, MHz(1000)), &l)
            .unwrap();
    }

    #[test]
    fn down_nodes_contribute_no_capacity() {
        let mut cp = ControlPlane::new();
        cp.add_tenant("acme", TenantQuota::unlimited());
        let mut l = loads(&[9600, 9600]);
        l[1].up = false;
        cp.create_vm("acme", VmTemplate::new("a", 4, MHz(2400)), &l)
            .unwrap();
        let err = cp
            .create_vm("acme", VmTemplate::new("b", 1, MHz(500)), &l)
            .unwrap_err();
        assert!(matches!(err, AdmissionError::InsufficientCapacity { .. }));
    }

    #[test]
    fn resize_is_admitted_against_the_delta() {
        let mut cp = ControlPlane::new();
        cp.add_tenant("acme", quota(10, 100, 6000));
        let l = loads(&[9600]);
        let id = cp
            .create_vm("acme", VmTemplate::new("a", 2, MHz(1200)), &l)
            .unwrap();
        // 2×2900 = 5800 ≤ 6000 quota and ≤ 9600 capacity.
        assert_eq!(cp.resize_vm(id, MHz(2900), &l), Ok(2));
        // 2×3100 = 6200 > 6000 quota.
        let err = cp.resize_vm(id, MHz(3100), &l).unwrap_err();
        assert!(
            matches!(&err, AdmissionError::QuotaExceeded { resource, .. } if resource == "mhz")
        );
        // Unknown spec after delete.
        cp.delete_vm(id).unwrap();
        assert_eq!(
            cp.resize_vm(id, MHz(800), &l),
            Err(AdmissionError::UnknownSpec(id))
        );
    }
}
