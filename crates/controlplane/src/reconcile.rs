//! The reconciliation loop: make the cluster match the desired state.
//!
//! Each period the reconciler diffs the [`SpecStore`](crate::spec::SpecStore) against its
//! *bindings* (spec → deployed VM) and issues cluster actions, in an
//! order chosen so that capacity freed by one phase is available to the
//! next within the same pass:
//!
//! 1. **undeploy** — bindings whose spec was deleted;
//! 2. **resize** — bindings whose applied generation is behind the
//!    spec's (a live virtual-frequency resize; the cluster resizes in
//!    place when Eq. 7 allows and falls back to a migration otherwise);
//! 3. **deploy** — specs with no binding yet.
//!
//! The pass is **bounded**: at most
//! [`ReconcilerConfig::max_actions_per_period`] cluster actions per
//! period, so a large diff (say, after a control-plane restart) rolls
//! out gradually instead of stampeding the placement. Work that does not
//! fit is *deferred* to the next period.
//!
//! Failures reuse the cluster's error taxonomy: a
//! [transient](vfc_cluster::ClusterError::is_transient) error (no
//! capacity right now) re-queues the spec with exponential backoff; a
//! permanent one is counted and the spec parked at max backoff so the
//! loop never livelocks on it. The reconciler holds **no state the
//! cluster cannot rebuild**: after a control-plane crash, a fresh
//! reconciler with an empty binding table simply re-deploys the replayed
//! spec log (see the kill-and-restart test in `tests/controlplane.rs`).

use crate::admission::ControlPlane;
use crate::spec::{SpecId, VmSpec};
use crate::telemetry::ActionKind;
use std::collections::BTreeMap;
use vfc_cluster::{ClusterManager, GlobalVmId};
use vfc_placement::algo::PlacementAlgorithm;
use vfc_vmm::workload::{SteadyDemand, Workload};

/// Produces the workload a newly deployed VM runs. The control plane
/// only knows shapes, not behaviours; the embedder decides what runs
/// inside (the default is a saturating [`SteadyDemand`]).
pub type WorkloadFactory = Box<dyn FnMut(&VmSpec) -> Box<dyn Workload> + Send>;

/// Tuning knobs of the reconcile loop.
#[derive(Debug, Clone, Copy)]
pub struct ReconcilerConfig {
    /// Cluster actions (deploy/resize/undeploy) per pass; excess work is
    /// deferred to later periods.
    pub max_actions_per_period: usize,
    /// Backoff after the first transient failure (periods); doubles per
    /// consecutive failure.
    pub backoff_base: u64,
    /// Backoff ceiling (periods).
    pub backoff_max: u64,
    /// Placement algorithm used for deploys.
    pub algorithm: PlacementAlgorithm,
    /// Cap-lease renewal cadence: every this many reconcile passes the
    /// reconciler renews the lease of every reachable node
    /// ([`ClusterManager::renew_leases`]). Nodes inside a partition
    /// window miss their renewal and fail safe locally. `1` (the
    /// default) renews every pass; treated as ≥ 1.
    pub lease_renew_every: u64,
}

impl Default for ReconcilerConfig {
    fn default() -> Self {
        ReconcilerConfig {
            max_actions_per_period: 8,
            backoff_base: 1,
            backoff_max: 16,
            algorithm: PlacementAlgorithm::BestFit,
            lease_renew_every: 1,
        }
    }
}

impl ReconcilerConfig {
    /// Load-time footgun check for fail-safe cap leases: a lease TTL
    /// shorter than the renewal cadence expires *between* renewals, so
    /// every node would cycle guarantee-only → uncapped → re-adopted
    /// forever while believing itself partitioned. `cap_lease_ttl` is
    /// the controllers' `ControllerConfig::cap_lease_ttl` in periods
    /// (`0` = leases disabled, always valid; this crate does not depend
    /// on `vfc-controller`, so the caller passes the value through).
    pub fn validate_lease_ttl(&self, cap_lease_ttl: u64) -> Result<(), String> {
        let cadence = self.lease_renew_every.max(1);
        if cap_lease_ttl > 0 && cap_lease_ttl < cadence {
            return Err(format!(
                "cap lease TTL of {cap_lease_ttl} periods is shorter than the \
                 reconcile renewal cadence of {cadence} periods: every lease \
                 would expire between renewals"
            ));
        }
        Ok(())
    }
}

/// A realized spec: the VM it became and the spec generation the cluster
/// currently enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    /// The deployed VM.
    pub vm: GlobalVmId,
    /// Spec generation last applied to the cluster (lags the spec's own
    /// generation while a resize is pending).
    pub applied_generation: u64,
}

#[derive(Debug, Clone, Copy)]
struct Retry {
    failures: u32,
    next_at: u64,
}

/// What one reconcile pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconcileSummary {
    /// Specs deployed.
    pub deployed: u64,
    /// Live resizes applied (in place or via migration).
    pub resized: u64,
    /// Deleted specs undeployed.
    pub undeployed: u64,
    /// Transient failures re-queued with backoff.
    pub retried: u64,
    /// Actions skipped because the per-period budget ran out.
    pub deferred: u64,
    /// Permanent failures (parked at max backoff).
    pub failed: u64,
    /// True when, after this pass, every spec is bound at its current
    /// generation and no stale binding remains.
    pub converged: bool,
}

/// The reconcile loop's state: bindings, retry schedule, period counter.
pub struct Reconciler {
    cfg: ReconcilerConfig,
    bindings: BTreeMap<SpecId, Binding>,
    retry: BTreeMap<SpecId, Retry>,
    period: u64,
    workloads: WorkloadFactory,
}

impl std::fmt::Debug for Reconciler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reconciler")
            .field("cfg", &self.cfg)
            .field("bindings", &self.bindings)
            .field("period", &self.period)
            .finish_non_exhaustive()
    }
}

impl Default for Reconciler {
    fn default() -> Self {
        Reconciler::new(ReconcilerConfig::default())
    }
}

impl Reconciler {
    /// A reconciler with the default saturating workload factory.
    pub fn new(cfg: ReconcilerConfig) -> Self {
        Reconciler::with_workloads(cfg, Box::new(|_| Box::new(SteadyDemand::full())))
    }

    /// A reconciler whose deploys run workloads from `workloads`.
    pub fn with_workloads(cfg: ReconcilerConfig, workloads: WorkloadFactory) -> Self {
        Reconciler {
            cfg,
            bindings: BTreeMap::new(),
            retry: BTreeMap::new(),
            period: 0,
            workloads,
        }
    }

    /// The VM a spec is currently bound to, if deployed.
    pub fn binding(&self, id: SpecId) -> Option<Binding> {
        self.bindings.get(&id).copied()
    }

    /// Number of bound (deployed) specs.
    pub fn bound(&self) -> usize {
        self.bindings.len()
    }

    /// The loop's tuning knobs.
    pub fn config(&self) -> &ReconcilerConfig {
        &self.cfg
    }

    /// Pending work: specs not yet bound at their current generation
    /// plus bindings whose spec is gone — the queue depth the API layer
    /// sheds mutations on when it saturates.
    pub fn backlog(&self, plane: &ControlPlane) -> usize {
        let stale = self
            .bindings
            .iter()
            .filter(|(id, _)| plane.store().get(**id).is_none())
            .count();
        let behind = plane
            .store()
            .specs()
            .filter(|s| {
                self.bindings
                    .get(&s.id)
                    .is_none_or(|b| b.applied_generation < s.generation)
            })
            .count();
        stale + behind
    }

    /// One reconcile pass. Ticks the control plane (rate-limit refill +
    /// usage gauges), diffs desired vs observed, issues at most
    /// `max_actions_per_period` cluster actions, and records metrics.
    /// Call once per cluster period, before
    /// [`ClusterManager::run_period`].
    pub fn reconcile(
        &mut self,
        plane: &mut ControlPlane,
        cluster: &mut ClusterManager,
    ) -> ReconcileSummary {
        let started = std::time::Instant::now();
        plane.tick();
        // Lease renewal rides the reconcile heartbeat: every reachable
        // node's cap lease is refreshed, so a node that stops hearing
        // from us (partition, reconciler death) fails safe on its own.
        if self
            .period
            .is_multiple_of(self.cfg.lease_renew_every.max(1))
        {
            cluster.renew_leases();
        }
        let mut summary = ReconcileSummary::default();
        let mut budget = self.cfg.max_actions_per_period;

        // Bindings whose VM the cluster has lost entirely revert to
        // pending (bookkeeping, not a cluster action).
        self.bindings.retain(|_, b| cluster.is_deployed(b.vm));

        // Phase 1: undeploy bindings whose spec is gone.
        let stale: Vec<(SpecId, GlobalVmId)> = self
            .bindings
            .iter()
            .filter(|(id, _)| plane.store().get(**id).is_none())
            .map(|(id, b)| (*id, b.vm))
            .collect();
        for (id, vm) in stale {
            if budget == 0 {
                summary.deferred += 1;
                continue;
            }
            budget -= 1;
            // Any error here means the VM is already gone — either way
            // the binding is dead.
            let _ = cluster.undeploy(vm);
            self.bindings.remove(&id);
            self.retry.remove(&id);
            summary.undeployed += 1;
        }

        // Phase 2: live-resize bindings that lag their spec.
        let lagging: Vec<(SpecId, GlobalVmId)> = self
            .bindings
            .iter()
            .filter_map(|(id, b)| {
                let spec = plane.store().get(*id)?;
                (b.applied_generation < spec.generation).then_some((*id, b.vm))
            })
            .collect();
        for (id, vm) in lagging {
            if !self.retry_due(id) {
                continue;
            }
            if budget == 0 {
                summary.deferred += 1;
                continue;
            }
            budget -= 1;
            let spec = plane
                .store()
                .get(id)
                .expect("filtered on existence")
                .clone();
            let call = std::time::Instant::now();
            match cluster.resize_vfreq(vm, spec.template.vfreq) {
                Ok(_) => {
                    plane
                        .metrics
                        .observe_resize_us(call.elapsed().as_micros() as u64);
                    self.bindings.insert(
                        id,
                        Binding {
                            vm,
                            applied_generation: spec.generation,
                        },
                    );
                    self.retry.remove(&id);
                    summary.resized += 1;
                }
                Err(e) if e.is_transient() => {
                    self.schedule_retry(id);
                    summary.retried += 1;
                }
                Err(_) => {
                    // The VM is gone or the template is unusable: drop
                    // the binding so the spec re-enters the deploy path.
                    self.bindings.remove(&id);
                    self.park(id);
                    summary.failed += 1;
                }
            }
        }

        // Phase 3: deploy unbound specs.
        let pending: Vec<SpecId> = plane
            .store()
            .specs()
            .filter(|s| !self.bindings.contains_key(&s.id))
            .map(|s| s.id)
            .collect();
        for id in pending {
            if !self.retry_due(id) {
                continue;
            }
            if budget == 0 {
                summary.deferred += 1;
                continue;
            }
            budget -= 1;
            let spec = plane
                .store()
                .get(id)
                .expect("ids come from the store")
                .clone();
            let workload = (self.workloads)(&spec);
            match cluster.try_deploy_with(&spec.template, workload, self.cfg.algorithm) {
                Ok(vm) => {
                    self.bindings.insert(
                        id,
                        Binding {
                            vm,
                            applied_generation: spec.generation,
                        },
                    );
                    self.retry.remove(&id);
                    summary.deployed += 1;
                }
                Err(e) if e.is_transient() => {
                    self.schedule_retry(id);
                    summary.retried += 1;
                }
                Err(_) => {
                    self.park(id);
                    summary.failed += 1;
                }
            }
        }

        summary.converged = self.is_converged(plane);
        self.period += 1;

        let m = &mut plane.metrics;
        m.count_actions(ActionKind::Deploy, summary.deployed);
        m.count_actions(ActionKind::Resize, summary.resized);
        m.count_actions(ActionKind::Undeploy, summary.undeployed);
        m.count_actions(ActionKind::Retry, summary.retried);
        m.count_actions(ActionKind::Deferred, summary.deferred);
        m.count_actions(ActionKind::Failed, summary.failed);
        m.observe_reconcile_us(started.elapsed().as_micros() as u64);
        summary
    }

    /// True when desired and observed state match: every live spec bound
    /// at its current generation, no binding without a spec.
    pub fn is_converged(&self, plane: &ControlPlane) -> bool {
        plane.store().len() == self.bindings.len()
            && plane.store().specs().all(|s| {
                self.bindings
                    .get(&s.id)
                    .is_some_and(|b| b.applied_generation == s.generation)
            })
    }

    fn retry_due(&self, id: SpecId) -> bool {
        self.retry.get(&id).is_none_or(|r| r.next_at <= self.period)
    }

    fn schedule_retry(&mut self, id: SpecId) {
        let failures = self.retry.get(&id).map_or(0, |r| r.failures) + 1;
        let delay = (self.cfg.backoff_base << (failures - 1).min(32)).min(self.cfg.backoff_max);
        self.retry.insert(
            id,
            Retry {
                failures,
                next_at: self.period + delay.max(1),
            },
        );
    }

    /// Park a permanently failing spec at the maximum backoff (it is
    /// retried eventually — capacity may appear — but cannot hot-loop).
    fn park(&mut self, id: SpecId) {
        self.retry.insert(
            id,
            Retry {
                failures: u32::MAX,
                next_at: self.period + self.cfg.backoff_max.max(1),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quota::TenantQuota;
    use vfc_cluster::Strategy;
    use vfc_cpusched::topology::NodeSpec;
    use vfc_simcore::MHz;
    use vfc_vmm::VmTemplate;

    fn rig(nodes: usize) -> (ControlPlane, ClusterManager, Reconciler) {
        let mut plane = ControlPlane::new();
        plane.add_tenant("acme", TenantQuota::unlimited());
        let cluster = ClusterManager::new(
            vec![NodeSpec::custom("n", 1, 2, 2, MHz(2400)); nodes],
            Strategy::FrequencyControl,
            7,
        );
        (plane, cluster, Reconciler::default())
    }

    #[test]
    fn deploys_resizes_and_undeploys_to_convergence() {
        let (mut plane, mut cluster, mut rec) = rig(2);
        let loads = cluster.node_loads();
        let id = plane
            .create_vm("acme", VmTemplate::new("web", 2, MHz(900)), &loads)
            .unwrap();

        let s = rec.reconcile(&mut plane, &mut cluster);
        assert_eq!((s.deployed, s.converged), (1, true));
        let vm = rec.binding(id).unwrap().vm;
        assert!(cluster.is_deployed(vm));
        cluster.run_period();

        plane
            .resize_vm(id, MHz(1500), &cluster.node_loads())
            .unwrap();
        assert!(!rec.is_converged(&plane));
        let s = rec.reconcile(&mut plane, &mut cluster);
        assert_eq!((s.resized, s.converged), (1, true));
        assert_eq!(cluster.vm_template(vm).unwrap().vfreq, MHz(1500));
        assert_eq!(rec.binding(id).unwrap().applied_generation, 2);

        plane.delete_vm(id).unwrap();
        let s = rec.reconcile(&mut plane, &mut cluster);
        assert_eq!((s.undeployed, s.converged), (1, true));
        assert!(!cluster.is_deployed(vm));
        assert_eq!(rec.bound(), 0);
    }

    #[test]
    fn action_budget_rolls_out_gradually() {
        let (mut plane, mut cluster, _) = rig(4);
        let mut rec = Reconciler::new(ReconcilerConfig {
            max_actions_per_period: 2,
            ..ReconcilerConfig::default()
        });
        let loads = cluster.node_loads();
        for i in 0..5 {
            plane
                .create_vm(
                    "acme",
                    VmTemplate::new(&format!("w{i}"), 1, MHz(500)),
                    &loads,
                )
                .unwrap();
        }
        let s = rec.reconcile(&mut plane, &mut cluster);
        assert_eq!((s.deployed, s.deferred, s.converged), (2, 3, false));
        let s = rec.reconcile(&mut plane, &mut cluster);
        assert_eq!((s.deployed, s.deferred), (2, 1));
        let s = rec.reconcile(&mut plane, &mut cluster);
        assert_eq!((s.deployed, s.converged), (1, true));
        assert_eq!(
            plane
                .metrics
                .actions(crate::telemetry::ActionKind::Deferred),
            4
        );
    }

    #[test]
    fn transient_no_capacity_backs_off_and_recovers() {
        // One node, 9600 MHz: the second 2×2400 VM cannot deploy until
        // the first is deleted.
        let (mut plane, mut cluster, mut rec) = rig(1);
        let loads = cluster.node_loads();
        let a = plane
            .create_vm("acme", VmTemplate::new("a", 2, MHz(2400)), &loads)
            .unwrap();
        rec.reconcile(&mut plane, &mut cluster);
        // b passes admission (4800 + 4800 = 9600 packs), but a squatter
        // deployed behind the control plane's back takes the space
        // first, so b's deploy hits the transient NoCapacity path.
        let b = plane
            .create_vm("acme", VmTemplate::new("b", 2, MHz(2400)), &loads)
            .unwrap();
        let squatter = cluster
            .try_deploy(
                &VmTemplate::new("squatter", 2, MHz(2400)),
                Box::new(SteadyDemand::full()),
            )
            .unwrap();
        let s = rec.reconcile(&mut plane, &mut cluster);
        assert_eq!((s.retried, s.converged), (1, false));
        // First backoff is one period: the retry fires next pass, fails
        // again, and doubles the delay — so the pass after that skips
        // the spec entirely.
        let s = rec.reconcile(&mut plane, &mut cluster);
        assert_eq!(s.retried, 1);
        let s = rec.reconcile(&mut plane, &mut cluster);
        assert_eq!(s.retried + s.deployed, 0, "backed off, no attempt");
        // Free the capacity; the retry fires when due and converges.
        cluster.undeploy(squatter).unwrap();
        let mut converged = false;
        for _ in 0..6 {
            if rec.reconcile(&mut plane, &mut cluster).converged {
                converged = true;
                break;
            }
        }
        assert!(converged, "deploy retried after backoff");
        assert!(rec.binding(a).is_some() && rec.binding(b).is_some());
    }

    #[test]
    fn lease_ttl_must_cover_the_renewal_cadence() {
        let cfg = ReconcilerConfig::default();
        assert!(cfg.validate_lease_ttl(0).is_ok(), "disabled is fine");
        assert!(cfg.validate_lease_ttl(1).is_ok());
        let slow = ReconcilerConfig {
            lease_renew_every: 5,
            ..ReconcilerConfig::default()
        };
        assert!(
            slow.validate_lease_ttl(3).is_err(),
            "expires between renewals"
        );
        assert!(slow.validate_lease_ttl(5).is_ok());
        assert!(slow.validate_lease_ttl(0).is_ok());
    }

    #[test]
    fn backlog_counts_unbound_stale_and_orphaned() {
        let (mut plane, mut cluster, mut rec) = rig(2);
        let loads = cluster.node_loads();
        let a = plane
            .create_vm("acme", VmTemplate::new("a", 1, MHz(500)), &loads)
            .unwrap();
        let b = plane
            .create_vm("acme", VmTemplate::new("b", 1, MHz(500)), &loads)
            .unwrap();
        assert_eq!(rec.backlog(&plane), 2, "two unbound specs");
        rec.reconcile(&mut plane, &mut cluster);
        assert_eq!(rec.backlog(&plane), 0, "converged");
        plane.resize_vm(a, MHz(700), &cluster.node_loads()).unwrap();
        assert_eq!(rec.backlog(&plane), 1, "one generation-stale binding");
        plane.delete_vm(b).unwrap();
        assert_eq!(rec.backlog(&plane), 2, "plus one orphaned binding");
        rec.reconcile(&mut plane, &mut cluster);
        assert_eq!(rec.backlog(&plane), 0);
    }
}
