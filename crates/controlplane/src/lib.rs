#![warn(missing_docs)]

//! Multi-tenant control plane for the vfc cluster.
//!
//! The paper's controller keeps per-node promises (Eq. 2–4) and its
//! placement keeps per-node feasibility (Eq. 7); this crate adds the
//! missing cloud-provider layer on top: **who** may ask for VMs, **how
//! much**, and **how** the cluster is made to match what they asked for.
//!
//! * [`spec`] — a declarative desired-state store: customers create,
//!   live-resize (`F_v`) and delete VM specs; every accepted mutation is
//!   an event in an append-only, generation-numbered log that persists
//!   atomically and replays after a crash;
//! * [`quota`] — per-tenant ceilings (VMs, vCPUs, total `Σ k_v·F_v`
//!   MHz) and a deterministic per-tenant token-bucket rate limiter;
//! * [`admission`] — the [`ControlPlane`]:
//!   every mutation is validated (shape → rate → quota → a
//!   first-fit-decreasing Eq. 7 feasibility pack over the up nodes)
//!   before it may enter the desired state; rejections are typed
//!   [`AdmissionError`]s, never panics;
//! * [`reconcile`] — the [`Reconciler`] diffs
//!   desired vs observed each period and drives the
//!   [`ClusterManager`](vfc_cluster::ClusterManager): bounded actions
//!   per period, retry-with-backoff on transient errors, live resizes
//!   that fall back to migration when the current node cannot absorb
//!   the new frequency;
//! * [`api`] — a std-only HTTP/JSON front end
//!   ([`ApiServer`]) exposing create / resize / delete /
//!   usage / health, plus the control plane's own Prometheus page;
//! * [`telemetry`] — admission and reconcile metric families
//!   ([`ControlPlaneMetrics`]).
//!
//! See `docs/CONTROLPLANE.md` for the architecture walk-through and
//! `examples/control_plane.rs` for an end-to-end two-tenant session.

pub mod admission;
pub mod api;
pub mod billing;
pub mod quota;
pub mod reconcile;
pub mod spec;
pub mod telemetry;

pub use admission::{AdmissionError, ControlPlane, RateLimit};
pub use api::{ApiServer, ApiServerConfig, ControlPlaneRuntime, OverloadError};
pub use billing::{aggregate_usage, spec_audit};
pub use quota::{TenantQuota, TenantUsage, TokenBucket};
pub use reconcile::{Binding, ReconcileSummary, Reconciler, ReconcilerConfig, WorkloadFactory};
pub use spec::{SpecEvent, SpecId, SpecStore, VmSpec};
pub use telemetry::{ActionKind, ControlPlaneMetrics, ShedReason, ACTION_LABELS, SHED_LABELS};
