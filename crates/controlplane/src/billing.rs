//! Glue between the control plane and `vfc-billing`: fold the spec log
//! into audit counts and aggregate the cluster's raw per-VM usage into
//! the per-tenant rows the metering engine ingests.
//!
//! The billing crate sits *below* the control plane and never sees
//! specs or clusters; this module is where `SpecEvent`s and
//! [`PeriodUsage`] meet [`SpecAudit`] and [`TenantPeriodUsage`].

use crate::spec::{SpecEvent, SpecId};
use std::collections::BTreeMap;
use vfc_billing::{SpecAudit, TenantPeriodUsage};
use vfc_cluster::PeriodUsage;

/// Replay the spec-store event log and count `tenant`'s creates,
/// resizes and deletes. `Resized`/`Deleted` events carry only a spec
/// id, so ownership is recovered from the `Created` events earlier in
/// the log — the log is append-only and ids are never reused, so the
/// fold is exact even for long-deleted specs.
pub fn spec_audit(log: &[SpecEvent], tenant: &str) -> SpecAudit {
    let mut owner: BTreeMap<SpecId, bool> = BTreeMap::new();
    let mut audit = SpecAudit::default();
    for event in log {
        match event {
            SpecEvent::Created { spec } => {
                let mine = spec.tenant == tenant;
                owner.insert(spec.id, mine);
                audit.creates += u64::from(mine);
            }
            SpecEvent::Resized { id, .. } => {
                audit.resizes += u64::from(owner.get(id).copied().unwrap_or(false));
            }
            SpecEvent::Deleted { id } => {
                audit.deletes += u64::from(owner.get(id).copied().unwrap_or(false));
            }
        }
    }
    audit
}

/// Aggregate one period of raw per-VM usage into per-`(tenant, F_v)`
/// metering rows, tenant-then-frequency ordered. `tenant_of` maps a
/// cluster VM to its owner (via the reconciler's bindings); VMs the
/// mapping cannot place — e.g. deleted between metering and billing —
/// are dropped from revenue rather than guessed onto a tenant, and the
/// cluster already surfaces their cycles in
/// [`PeriodUsage::unattributed_usec`].
///
/// The cluster-wide wasted market cycles (Eq. 6's ω, cycles sold but
/// never delivered) are prorated across rows by guaranteed share with
/// floor division — informational on the bill, never charged.
pub fn aggregate_usage(
    usage: &PeriodUsage,
    mut tenant_of: impl FnMut(vfc_cluster::GlobalVmId) -> Option<String>,
) -> Vec<TenantPeriodUsage> {
    let mut rows: BTreeMap<(String, u32), TenantPeriodUsage> = BTreeMap::new();
    for vm in &usage.vms {
        let Some(tenant) = tenant_of(vm.vm) else {
            continue;
        };
        let row = rows
            .entry((tenant.clone(), vm.vfreq_mhz))
            .or_insert_with(|| TenantPeriodUsage {
                tenant,
                vfreq_mhz: vm.vfreq_mhz,
                vm_periods: 0,
                guaranteed_mhz_s: 0,
                delivered_mhz_s: 0,
                auction_usec: 0,
                minted_usec: 0,
                wasted_share_usec: 0,
                demanding_vm_periods: 0,
                violated_vm_periods: 0,
            });
        row.vm_periods += 1;
        row.guaranteed_mhz_s += vm.guaranteed_mhz_s;
        row.delivered_mhz_s += vm.delivered_mhz_s;
        row.auction_usec += vm.spent_usec;
        row.minted_usec += vm.minted_usec;
        row.demanding_vm_periods += u64::from(vm.demanding);
        row.violated_vm_periods += u64::from(vm.violated);
    }
    let total_guaranteed: u64 = rows.values().map(|r| r.guaranteed_mhz_s).sum();
    if total_guaranteed > 0 && usage.wasted_market_usec > 0 {
        for row in rows.values_mut() {
            row.wasted_share_usec = ((usage.wasted_market_usec as u128
                * row.guaranteed_mhz_s as u128)
                / total_guaranteed as u128) as u64;
        }
    }
    rows.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecStore;
    use vfc_cluster::{GlobalVmId, VmPeriodUsage};
    use vfc_simcore::MHz;
    use vfc_vmm::VmTemplate;

    #[test]
    fn audit_counts_follow_ownership_through_the_log() {
        let mut store = SpecStore::new();
        let a = store.create("acme", VmTemplate::small());
        let b = store.create("bob", VmTemplate::small());
        store.resize(a, MHz(800));
        store.resize(b, MHz(900));
        store.delete(a);
        store.resize(b, MHz(700));
        let acme = spec_audit(store.log(), "acme");
        assert_eq!((acme.creates, acme.resizes, acme.deletes), (1, 1, 1));
        let bob = spec_audit(store.log(), "bob");
        assert_eq!((bob.creates, bob.resizes, bob.deletes), (1, 2, 0));
        assert_eq!(spec_audit(store.log(), "ghost"), SpecAudit::default());
    }

    fn vm(id: u32, vfreq: u32, delivered: u64, violated: bool) -> VmPeriodUsage {
        VmPeriodUsage {
            vm: GlobalVmId(id),
            class: String::new(),
            vfreq_mhz: vfreq,
            vcpus: 2,
            delivered_mhz_s: delivered,
            guaranteed_mhz_s: vfreq as u64 * 2,
            minted_usec: 10,
            spent_usec: 20,
            demanding: true,
            violated,
            offline: false,
        }
    }

    #[test]
    fn aggregation_groups_by_tenant_and_tier_and_prorates_waste() {
        let usage = PeriodUsage {
            period: 7,
            vms: vec![
                vm(0, 500, 900, false),
                vm(1, 500, 1000, true),
                vm(2, 1200, 2400, false),
            ],
            wasted_market_usec: 1_000,
            unattributed_usec: 0,
        };
        let rows = aggregate_usage(&usage, |id| match id.0 {
            0 | 1 => Some("acme".to_owned()),
            2 => Some("bob".to_owned()),
            _ => None,
        });
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].tenant.as_str(), rows[0].vfreq_mhz), ("acme", 500));
        assert_eq!(rows[0].vm_periods, 2);
        assert_eq!(rows[0].guaranteed_mhz_s, 2_000);
        assert_eq!(rows[0].delivered_mhz_s, 1_900);
        assert_eq!(rows[0].auction_usec, 40);
        assert_eq!(rows[0].violated_vm_periods, 1);
        assert_eq!((rows[1].tenant.as_str(), rows[1].vfreq_mhz), ("bob", 1200));
        // Waste prorated by guaranteed share: 2000:2400 of 1000 µs.
        assert_eq!(rows[0].wasted_share_usec, 454);
        assert_eq!(rows[1].wasted_share_usec, 545);
    }

    #[test]
    fn unmapped_vms_are_dropped_not_guessed() {
        let usage = PeriodUsage {
            period: 1,
            vms: vec![vm(9, 500, 1000, false)],
            wasted_market_usec: 0,
            unattributed_usec: 0,
        };
        assert!(aggregate_usage(&usage, |_| None).is_empty());
    }
}
