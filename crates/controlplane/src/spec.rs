//! Declarative desired-state store.
//!
//! Customers do not call the cluster manager directly: they declare what
//! they want — "tenant `acme` runs a 4-vCPU VM at 1200 MHz" — and the
//! [reconciler](crate::reconcile) makes the cluster match. The store is
//! therefore the single source of truth for *desired* state, and it is
//! structured as an **append-only event log** replayed into a map:
//!
//! * every accepted mutation appends one [`SpecEvent`] with a
//!   monotonically increasing sequence number;
//! * the in-memory [`VmSpec`] map is a pure fold over that log, so
//!   persisting the log (atomic tmp + rename, the same pattern as the
//!   controller's journal) is enough to survive a control-plane crash:
//!   a restarted process replays the log and the reconciler re-converges
//!   the cluster against it;
//! * resizes bump the spec's **generation**; the reconciler compares the
//!   generation it last applied against the spec's current one to decide
//!   whether a live virtual-frequency resize is still pending.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use vfc_simcore::MHz;
use vfc_vmm::VmTemplate;

/// Stable identifier of one desired VM, assigned by the store at
/// creation and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpecId(pub u64);

impl fmt::Display for SpecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec-{}", self.0)
    }
}

/// One desired VM: who owns it, what template it runs, and which
/// generation of the spec this is (bumped on every resize).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmSpec {
    /// Store-assigned identifier.
    pub id: SpecId,
    /// Owning tenant (quota + rate-limit accounting key).
    pub tenant: String,
    /// The requested shape: vCPUs, virtual frequency `F_v`, memory.
    pub template: VmTemplate,
    /// Mutation counter: 1 at creation, +1 per accepted resize.
    pub generation: u64,
}

/// One entry of the append-only spec log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpecEvent {
    /// A VM was admitted.
    Created {
        /// The full spec as admitted (generation 1).
        spec: VmSpec,
    },
    /// An existing VM's virtual frequency was changed.
    Resized {
        /// Which spec.
        id: SpecId,
        /// The new per-vCPU guarantee.
        vfreq: MHz,
        /// The spec's generation after this event.
        generation: u64,
    },
    /// A VM was removed from the desired state.
    Deleted {
        /// Which spec.
        id: SpecId,
    },
}

/// The desired-state store: an event log and its fold.
#[derive(Debug, Default, Clone)]
pub struct SpecStore {
    next_id: u64,
    log: Vec<SpecEvent>,
    specs: BTreeMap<SpecId, VmSpec>,
}

impl SpecStore {
    /// An empty store.
    pub fn new() -> Self {
        SpecStore::default()
    }

    /// Number of events appended so far; also the sequence number the
    /// next event will get. Strictly increases over the store's life.
    pub fn seq(&self) -> u64 {
        self.log.len() as u64
    }

    /// The live (non-deleted) specs, in `SpecId` order.
    pub fn specs(&self) -> impl Iterator<Item = &VmSpec> {
        self.specs.values()
    }

    /// Number of live specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when no spec is live.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Look up one live spec.
    pub fn get(&self, id: SpecId) -> Option<&VmSpec> {
        self.specs.get(&id)
    }

    /// The raw event log (for diagnostics and tests).
    pub fn log(&self) -> &[SpecEvent] {
        &self.log
    }

    /// Append a creation event and return the new spec's id. The caller
    /// (the admission layer) has already validated the template.
    pub fn create(&mut self, tenant: &str, template: VmTemplate) -> SpecId {
        let id = SpecId(self.next_id);
        let spec = VmSpec {
            id,
            tenant: tenant.to_owned(),
            template,
            generation: 1,
        };
        self.apply(SpecEvent::Created { spec });
        id
    }

    /// Append a resize event; returns the new generation, or `None` if
    /// the spec does not exist.
    pub fn resize(&mut self, id: SpecId, vfreq: MHz) -> Option<u64> {
        let generation = self.specs.get(&id)?.generation + 1;
        self.apply(SpecEvent::Resized {
            id,
            vfreq,
            generation,
        });
        Some(generation)
    }

    /// Append a deletion event; returns the removed spec, or `None` if
    /// it does not exist.
    pub fn delete(&mut self, id: SpecId) -> Option<VmSpec> {
        let spec = self.specs.get(&id)?.clone();
        self.apply(SpecEvent::Deleted { id });
        Some(spec)
    }

    /// Fold one event into the map (shared by live mutation and replay).
    fn apply(&mut self, event: SpecEvent) {
        match &event {
            SpecEvent::Created { spec } => {
                self.next_id = self.next_id.max(spec.id.0 + 1);
                self.specs.insert(spec.id, spec.clone());
            }
            SpecEvent::Resized {
                id,
                vfreq,
                generation,
            } => {
                if let Some(spec) = self.specs.get_mut(id) {
                    spec.template.vfreq = *vfreq;
                    spec.generation = *generation;
                }
            }
            SpecEvent::Deleted { id } => {
                self.specs.remove(id);
            }
        }
        self.log.push(event);
    }

    /// Persist the event log as JSON: write `<path>.tmp`, then rename
    /// over `path`, so a crash mid-write leaves the previous log intact
    /// (the same atomic-swap discipline as the controller journal).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let body =
            serde_json::to_string(&self.log).map_err(|e| format!("serialize spec log: {e}"))?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, body).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    }

    /// Rebuild a store by replaying a persisted log.
    pub fn load(path: &Path) -> Result<SpecStore, String> {
        let body =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let log: Vec<SpecEvent> =
            serde_json::from_str(&body).map_err(|e| format!("parse {}: {e}", path.display()))?;
        let mut store = SpecStore::new();
        for event in log {
            store.apply(event);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_resize_delete_fold() {
        let mut s = SpecStore::new();
        let a = s.create("acme", VmTemplate::small());
        let b = s.create("acme", VmTemplate::medium());
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a).unwrap().generation, 1);

        assert_eq!(s.resize(a, MHz(900)), Some(2));
        assert_eq!(s.get(a).unwrap().template.vfreq, MHz(900));
        assert_eq!(s.get(a).unwrap().generation, 2);

        assert!(s.delete(b).is_some());
        assert!(s.get(b).is_none());
        assert_eq!(s.delete(b), None);
        assert_eq!(s.resize(b, MHz(700)), None);
        assert_eq!(s.seq(), 4, "dead-id mutations append nothing");
    }

    #[test]
    fn ids_are_never_reused_after_delete() {
        let mut s = SpecStore::new();
        let a = s.create("t", VmTemplate::small());
        s.delete(a).unwrap();
        let b = s.create("t", VmTemplate::small());
        assert!(b.0 > a.0);
    }

    #[test]
    fn log_replay_reproduces_the_store() {
        let dir = std::env::temp_dir().join(format!("vfc-cp-spec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("specs.json");

        let mut s = SpecStore::new();
        let a = s.create("acme", VmTemplate::small());
        let b = s.create("umbrella", VmTemplate::large());
        s.resize(a, MHz(800)).unwrap();
        s.delete(b).unwrap();
        s.save(&path).unwrap();

        let back = SpecStore::load(&path).unwrap();
        assert_eq!(back.seq(), s.seq());
        assert_eq!(
            back.specs().cloned().collect::<Vec<_>>(),
            s.specs().cloned().collect::<Vec<_>>()
        );
        // New ids continue after the replayed ones.
        let mut back = back;
        let c = back.create("acme", VmTemplate::small());
        assert!(c.0 > a.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
