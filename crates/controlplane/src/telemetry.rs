//! Control-plane metric families.
//!
//! A thin wrapper around a [`vfc_telemetry::Registry`] holding the
//! control plane's metric handles. Families (full reference in
//! `docs/OBSERVABILITY.md`):
//!
//! | family | kind | labels |
//! |---|---|---|
//! | `vfc_cp_admission_accepted_total` | counter | `tenant` |
//! | `vfc_cp_admission_rejected_total` | counter | `tenant` |
//! | `vfc_cp_admission_ratelimited_total` | counter | `tenant` |
//! | `vfc_cp_tenant_used_mhz` | gauge | `tenant` |
//! | `vfc_cp_tenant_used_vcpus` | gauge | `tenant` |
//! | `vfc_cp_tenant_used_vms` | gauge | `tenant` |
//! | `vfc_cp_desired_vms` | gauge | — |
//! | `vfc_cp_spec_log_seq` | gauge | — |
//! | `vfc_cp_reconcile_actions_total` | counter | `action` |
//! | `vfc_cp_reconcile_duration_seconds` | histogram | — |
//! | `vfc_cp_resize_duration_seconds` | histogram | — |
//! | `vfc_cp_shed_total` | counter | `reason` |
//! | `vfc_cp_billing_checkpoint_failures_total` | counter | — |
//!
//! Rate-limited rejections count **only** toward
//! `…_ratelimited_total`, not `…_rejected_total`, so the two series
//! partition rejections into "client too fast" versus "request
//! inadmissible".

use crate::quota::TenantUsage;
use vfc_telemetry::{MetricId, Registry, LATENCY_BUCKETS_US};

/// What a reconcile pass did with one spec — the label values of
/// `vfc_cp_reconcile_actions_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// A pending spec was deployed onto the cluster.
    Deploy = 0,
    /// A generation-stale binding had its `F_v` resized live.
    Resize = 1,
    /// A deleted spec's VM was undeployed.
    Undeploy = 2,
    /// A transient failure was re-queued with backoff.
    Retry = 3,
    /// Work existed but the per-period action budget was exhausted.
    Deferred = 4,
    /// A non-transient failure; the spec is left unbound.
    Failed = 5,
}

/// Label values of `vfc_cp_reconcile_actions_total`, indexed by
/// [`ActionKind`] discriminant.
pub const ACTION_LABELS: [&str; 6] = [
    "deploy", "resize", "undeploy", "retry", "deferred", "failed",
];

/// Why the API front door refused work before it reached admission —
/// the label values of `vfc_cp_shed_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// A client failed to deliver a full request within the read
    /// timeout (slow loris, stalled sender).
    ReadTimeout = 0,
    /// The declared or delivered request size exceeded the body cap.
    BodyTooLarge = 1,
    /// The bounded accept queue was full when the connection arrived.
    QueueFull = 2,
    /// The reconciler backlog was at the shed threshold, so a mutation
    /// was refused to let the loop drain.
    Backlog = 3,
}

/// Label values of `vfc_cp_shed_total`, indexed by [`ShedReason`]
/// discriminant.
pub const SHED_LABELS: [&str; 4] = ["read_timeout", "body_too_large", "queue_full", "backlog"];

/// Registered control-plane metric handles plus their registry.
#[derive(Debug)]
pub struct ControlPlaneMetrics {
    /// The backing registry; render with [`vfc_telemetry::render`] or
    /// serve it next to the node registries.
    pub registry: Registry,
    accepted: MetricId,
    rejected: MetricId,
    ratelimited: MetricId,
    used_mhz: MetricId,
    used_vcpus: MetricId,
    used_vms: MetricId,
    desired_vms: MetricId,
    log_seq: MetricId,
    actions: MetricId,
    reconcile_duration: MetricId,
    resize_duration: MetricId,
    shed: MetricId,
    billing_checkpoint_failures: MetricId,
}

impl Default for ControlPlaneMetrics {
    fn default() -> Self {
        ControlPlaneMetrics::new()
    }
}

impl ControlPlaneMetrics {
    /// Register every family in a fresh registry.
    pub fn new() -> Self {
        let mut r = Registry::new();
        let accepted = r.counter_dyn(
            "vfc_cp_admission_accepted_total",
            "Mutations admitted, by tenant",
            "tenant",
        );
        let rejected = r.counter_dyn(
            "vfc_cp_admission_rejected_total",
            "Mutations rejected (quota, capacity or validation), by tenant",
            "tenant",
        );
        let ratelimited = r.counter_dyn(
            "vfc_cp_admission_ratelimited_total",
            "Mutations rejected by the per-tenant token bucket",
            "tenant",
        );
        let used_mhz = r.gauge_dyn(
            "vfc_cp_tenant_used_mhz",
            "Desired frequency-weighted demand per tenant (MHz)",
            "tenant",
        );
        let used_vcpus = r.gauge_dyn(
            "vfc_cp_tenant_used_vcpus",
            "Desired vCPUs per tenant",
            "tenant",
        );
        let used_vms = r.gauge_dyn(
            "vfc_cp_tenant_used_vms",
            "Desired VM count per tenant",
            "tenant",
        );
        let desired_vms = r.gauge("vfc_cp_desired_vms", "Live specs in the desired state");
        let log_seq = r.gauge(
            "vfc_cp_spec_log_seq",
            "Sequence number of the last appended spec-log event",
        );
        let actions = r.counter_vec(
            "vfc_cp_reconcile_actions_total",
            "Reconcile outcomes, by action",
            "action",
            &ACTION_LABELS,
        );
        let reconcile_duration = r.histogram(
            "vfc_cp_reconcile_duration_seconds",
            "Wall time of one reconcile pass",
            &LATENCY_BUCKETS_US,
        );
        let resize_duration = r.histogram(
            "vfc_cp_resize_duration_seconds",
            "Wall time of one live virtual-frequency resize (cluster call)",
            &LATENCY_BUCKETS_US,
        );
        let shed = r.counter_vec(
            "vfc_cp_shed_total",
            "Requests shed by the API front door before admission, by reason",
            "reason",
            &SHED_LABELS,
        );
        let billing_checkpoint_failures = r.counter(
            "vfc_cp_billing_checkpoint_failures_total",
            "Usage-ledger checkpoints that failed to persist (billing keeps metering in memory)",
        );
        ControlPlaneMetrics {
            registry: r,
            accepted,
            rejected,
            ratelimited,
            used_mhz,
            used_vcpus,
            used_vms,
            desired_vms,
            log_seq,
            actions,
            reconcile_duration,
            resize_duration,
            shed,
            billing_checkpoint_failures,
        }
    }

    /// Count an admitted mutation.
    pub fn accepted(&mut self, tenant: &str) {
        self.registry.inc_dyn(self.accepted, tenant, 1);
    }

    /// Count a rejected mutation (`ratelimited` selects the family).
    pub fn rejected(&mut self, tenant: &str, ratelimited: bool) {
        let id = if ratelimited {
            self.ratelimited
        } else {
            self.rejected
        };
        self.registry.inc_dyn(id, tenant, 1);
    }

    /// Publish one tenant's usage gauges.
    pub fn set_usage(&mut self, tenant: &str, usage: TenantUsage) {
        self.registry.set_dyn(self.used_mhz, tenant, usage.mhz);
        self.registry.set_dyn(self.used_vcpus, tenant, usage.vcpus);
        self.registry.set_dyn(self.used_vms, tenant, usage.vms);
    }

    /// Publish the store-level gauges.
    pub fn set_store(&mut self, desired_vms: u64, log_seq: u64) {
        self.registry.set(self.desired_vms, 0, desired_vms);
        self.registry.set(self.log_seq, 0, log_seq);
    }

    /// Read back one tenant's `(accepted, rejected, ratelimited)`
    /// admission counters (tests, rollups).
    pub fn admission_counts(&self, tenant: &str) -> (u64, u64, u64) {
        (
            self.registry.value_dyn(self.accepted, tenant),
            self.registry.value_dyn(self.rejected, tenant),
            self.registry.value_dyn(self.ratelimited, tenant),
        )
    }

    /// Count `n` reconcile outcomes of one kind.
    pub fn count_actions(&mut self, kind: ActionKind, n: u64) {
        if n > 0 {
            self.registry.inc(self.actions, kind as usize, n);
        }
    }

    /// Read back one action counter (tests, rollups).
    pub fn actions(&self, kind: ActionKind) -> u64 {
        self.registry.value(self.actions, kind as usize)
    }

    /// Record the wall time of a reconcile pass.
    pub fn observe_reconcile_us(&mut self, us: u64) {
        self.registry.observe_us(self.reconcile_duration, 0, us);
    }

    /// Record the wall time of a live-resize cluster call.
    pub fn observe_resize_us(&mut self, us: u64) {
        self.registry.observe_us(self.resize_duration, 0, us);
    }

    /// Count one shed request.
    pub fn shed(&mut self, reason: ShedReason) {
        self.registry.inc(self.shed, reason as usize, 1);
    }

    /// Read back one shed counter (tests, rollups).
    pub fn sheds(&self, reason: ShedReason) -> u64 {
        self.registry.value(self.shed, reason as usize)
    }

    /// Count a usage-ledger checkpoint that failed to persist.
    pub fn billing_checkpoint_failed(&mut self) {
        self.registry.inc(self.billing_checkpoint_failures, 0, 1);
    }

    /// Read back the failed-checkpoint counter (tests, rollups).
    pub fn billing_checkpoint_failures(&self) -> u64 {
        self.registry.value(self.billing_checkpoint_failures, 0)
    }

    /// Render the registry as a Prometheus text page.
    pub fn render(&self) -> String {
        vfc_telemetry::render(&self.registry, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_render_and_partition_rejections() {
        let mut m = ControlPlaneMetrics::new();
        m.accepted("acme");
        m.rejected("acme", false);
        m.rejected("acme", true);
        m.set_usage(
            "acme",
            TenantUsage {
                vms: 2,
                vcpus: 6,
                mhz: 5800,
            },
        );
        m.set_store(2, 3);
        m.count_actions(ActionKind::Deploy, 2);
        m.count_actions(ActionKind::Deferred, 0);
        m.observe_reconcile_us(120);
        m.observe_resize_us(45);
        m.shed(ShedReason::ReadTimeout);
        m.shed(ShedReason::Backlog);
        m.shed(ShedReason::Backlog);
        assert_eq!(m.sheds(ShedReason::ReadTimeout), 1);
        assert_eq!(m.sheds(ShedReason::Backlog), 2);
        assert_eq!(m.sheds(ShedReason::QueueFull), 0);
        assert_eq!(m.actions(ActionKind::Deploy), 2);
        assert_eq!(m.actions(ActionKind::Deferred), 0);
        let page = m.render();
        assert!(page.contains("vfc_cp_admission_accepted_total{tenant=\"acme\"} 1"));
        assert!(page.contains("vfc_cp_admission_rejected_total{tenant=\"acme\"} 1"));
        assert!(page.contains("vfc_cp_admission_ratelimited_total{tenant=\"acme\"} 1"));
        assert!(page.contains("vfc_cp_tenant_used_mhz{tenant=\"acme\"} 5800"));
        assert!(page.contains("vfc_cp_reconcile_actions_total{action=\"deploy\"} 2"));
        assert!(page.contains("vfc_cp_spec_log_seq 3"));
        assert!(page.contains("vfc_cp_resize_duration_seconds_count 1"));
        assert!(page.contains("vfc_cp_shed_total{reason=\"backlog\"} 2"));
    }
}
