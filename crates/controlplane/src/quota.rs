//! Per-tenant quotas and rate limiting.
//!
//! The paper's placement constraint (Eq. 7) protects *nodes* from
//! oversubscription; in a multi-tenant cloud the provider also needs to
//! protect the *cluster* from any single customer. Two mechanisms:
//!
//! * [`TenantQuota`] — static ceilings on a tenant's aggregate desired
//!   state: VM count, total vCPUs, and total frequency-weighted demand
//!   `Σ k_v·F_v` in MHz (the same unit Eq. 7 budgets nodes in, so a
//!   tenant's quota is directly comparable to node capacity);
//! * [`TokenBucket`] — a deterministic token bucket refilled once per
//!   control-plane tick, bounding the *mutation rate* (create, resize,
//!   delete all draw a token) so a misbehaving client cannot churn the
//!   reconciler into livelock. Deterministic on purpose: no wall clock,
//!   the bucket refills when [`TokenBucket::tick`] is called, which the
//!   control plane does once per reconcile period — tests and the churn
//!   benchmark replay identically from a seed.

use serde::{Deserialize, Serialize};

/// Aggregate ceilings for one tenant's desired state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantQuota {
    /// Maximum number of live VMs.
    pub max_vms: u64,
    /// Maximum total vCPUs across the tenant's VMs.
    pub max_vcpus: u64,
    /// Maximum total frequency-weighted demand `Σ k_v·F_v` (MHz).
    pub max_mhz: u64,
}

impl TenantQuota {
    /// A quota that never binds (for tests and single-tenant setups).
    pub fn unlimited() -> Self {
        TenantQuota {
            max_vms: u64::MAX,
            max_vcpus: u64::MAX,
            max_mhz: u64::MAX,
        }
    }
}

/// A tenant's current aggregate footprint in the desired state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantUsage {
    /// Live VMs.
    pub vms: u64,
    /// Total vCPUs.
    pub vcpus: u64,
    /// Total frequency-weighted demand (MHz).
    pub mhz: u64,
}

impl TenantUsage {
    /// Add one template's footprint.
    pub fn add(&mut self, vcpus: u32, demand_mhz: u64) {
        self.vms += 1;
        self.vcpus += vcpus as u64;
        self.mhz += demand_mhz;
    }
}

/// Deterministic token bucket: starts full, spends one token per
/// mutation, refills `refill_per_tick` (clamped at `capacity`) each
/// control-plane tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenBucket {
    capacity: u64,
    tokens: u64,
    refill_per_tick: u64,
}

impl TokenBucket {
    /// A bucket holding `capacity` tokens, refilled by `refill_per_tick`
    /// per [`tick`](TokenBucket::tick). Starts full (a fresh tenant can
    /// burst up to `capacity` mutations immediately).
    pub fn new(capacity: u64, refill_per_tick: u64) -> Self {
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_tick,
        }
    }

    /// Spend one token; `false` (and no state change) when empty.
    pub fn try_take(&mut self) -> bool {
        if self.tokens == 0 {
            return false;
        }
        self.tokens -= 1;
        true
    }

    /// Refill for one control-plane period.
    pub fn tick(&mut self) {
        self.tokens = (self.tokens + self.refill_per_tick).min(self.capacity);
    }

    /// Tokens currently available.
    pub fn available(&self) -> u64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bursts_then_throttles_then_refills() {
        let mut b = TokenBucket::new(3, 2);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take(), "empty bucket rejects");
        assert!(!b.try_take(), "rejection does not consume");
        b.tick();
        assert_eq!(b.available(), 2);
        b.tick();
        assert_eq!(b.available(), 3, "refill clamps at capacity");
    }

    #[test]
    fn usage_accumulates_template_footprints() {
        let mut u = TenantUsage::default();
        u.add(2, 1000);
        u.add(4, 4800);
        assert_eq!(
            u,
            TenantUsage {
                vms: 2,
                vcpus: 6,
                mhz: 5800
            }
        );
    }
}
