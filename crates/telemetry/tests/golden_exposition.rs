//! Golden-file test: the Prometheus exposition is pinned byte-for-byte.
//!
//! The rendered page is an interface — scrape configs, recording rules
//! and dashboards are written against its exact names, label order and
//! number formatting — so the test compares against a committed `.prom`
//! file instead of spot-checking substrings. Regenerate deliberately
//! with:
//!
//! ```text
//! VFC_BLESS=1 cargo test -p vfc-telemetry --test golden_exposition
//! ```
//!
//! and review the diff like any other interface change.

use std::path::PathBuf;
use vfc_telemetry::{render, render_merged, Registry};

/// Small static bucket layout so the golden file stays readable; the
/// formatting path is identical to [`vfc_telemetry::LATENCY_BUCKETS_US`].
static BOUNDS_US: [u64; 5] = [10, 100, 1_000, 208_333, 1_000_000];

/// A registry exercising every metric kind, both label flavours, label
/// sorting, escaping, and fractional-second formatting — with fixed
/// values, so the same bytes render every time.
fn golden_registry() -> Registry {
    let mut r = Registry::new();
    let iters = r.counter("vfc_iterations_total", "Control-loop iterations executed");
    r.inc(iters, 0, 42);

    let market = r.counter_vec(
        "vfc_market_cycles_usec_total",
        "Market cycles by outcome",
        "outcome",
        &["sold", "distributed", "wasted"],
    );
    r.inc(market, 0, 1_200_000);
    r.inc(market, 1, 300_000);
    // "wasted" stays zero: zero-valued fixed series must still render.

    let vms = r.gauge("vfc_vms", "VMs under control");
    r.set(vms, 0, 3);

    // Dynamic series inserted out of order; the page must sort them.
    let minted = r.counter_dyn(
        "vfc_credits_minted_usec_total",
        "Credits minted per VM",
        "vm",
    );
    r.inc_dyn(minted, "web", 5_000);
    r.inc_dyn(minted, "db", 7_500);
    r.inc_dyn(minted, "a\"quoted\\vm\nname", 1);

    let balance = r.gauge_dyn("vfc_credit_balance_usec", "Wallet balance per VM", "vm");
    r.set_dyn(balance, "web", 900);
    r.set_dyn(balance, "db", 0);

    let stages = r.histogram_vec(
        "vfc_stage_duration_seconds",
        "Stage wall time",
        "stage",
        &["monitor", "apply"],
        &BOUNDS_US,
    );
    r.observe_us(stages, 0, 4_000); // monitor: 4 ms, the paper's figure
    r.observe_us(stages, 0, 208_333); // exactly on a fractional bound
    r.observe_us(stages, 1, 90);
    r.observe_us(stages, 1, 2_000_000); // overflow: only the +Inf bucket

    let iter_h = r.histogram(
        "vfc_iteration_duration_seconds",
        "Iteration wall time\nincluding all six stages", // help escaping
        &BOUNDS_US,
    );
    r.observe_us(iter_h, 0, 46);
    r.observe_us(iter_h, 0, 1_500_000);
    r
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn compare_or_bless(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("VFC_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run with VFC_BLESS=1 to create)",
            path.display()
        )
    });
    assert!(
        got == want,
        "exposition drifted from {} — if intentional, re-bless with VFC_BLESS=1\n--- got ---\n{got}\n--- want ---\n{want}",
        path.display()
    );
}

#[test]
fn single_registry_page_matches_golden_file() {
    compare_or_bless("exposition.prom", &render(&golden_registry(), None));
}

#[test]
fn merged_two_node_page_matches_golden_file() {
    let n0 = golden_registry();
    let n1 = golden_registry();
    compare_or_bless(
        "exposition_merged.prom",
        &render_merged("node", &[("n-0", &n0), ("n-1", &n1)]),
    );
}

#[test]
fn page_never_leaks_nan_inf_or_exponents() {
    let page = render(&golden_registry(), None);
    for line in page.lines().filter(|l| !l.starts_with('#')) {
        let value = line.rsplit(' ').next().unwrap();
        assert!(
            value.parse::<f64>().map(f64::is_finite).unwrap_or(false),
            "non-finite or unparsable sample value in line: {line}"
        );
        assert!(
            !value.contains(['e', 'E', 'N', 'n', 'i']),
            "exponent/NaN/inf notation in sample value: {line}"
        );
    }
    // "+Inf" may appear only as the conventional histogram bucket label.
    assert_eq!(
        page.matches("Inf").count(),
        page.matches("le=\"+Inf\"").count()
    );
}
