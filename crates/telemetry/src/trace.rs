//! Ring-buffer trace journal: the last N iterations, span by span.
//!
//! Aggregated histograms answer "how slow is the monitor stage usually";
//! they cannot answer "what was the controller doing in the ten periods
//! before the circuit breaker tripped". The [`TraceRing`] keeps a bounded
//! window of per-iteration traces — per-stage spans, degradation flags
//! and per-VM allocations — that the daemon dumps as JSON on SIGTERM or
//! a circuit-breaker trip, turning a dead process into a post-mortem.

use std::collections::VecDeque;

/// Stage names in pipeline order; index into
/// [`IterationTrace::stages_us`].
pub const STAGE_NAMES: [&str; 6] = [
    "monitor",
    "estimate",
    "enforce",
    "auction",
    "distribute",
    "apply",
];

/// One iteration's trace entry.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IterationTrace {
    /// Controller iteration counter.
    pub iteration: u64,
    /// Wall-clock time the iteration finished, ms since the Unix epoch.
    pub unix_ms: u64,
    /// Per-stage wall time, µs, in [`STAGE_NAMES`] order (length 6; a
    /// `Vec` because the vendored serde subset has no fixed-array impls).
    pub stages_us: Vec<u64>,
    /// Whole-iteration wall time, µs (≥ the sum of the stages).
    pub total_us: u64,
    /// Did anything degrade this iteration (see the controller's
    /// `HealthReport`)?
    pub degraded: bool,
    /// Final allocation per VM, µs per period, summed over its vCPUs and
    /// sorted by name.
    pub vm_alloc_us: Vec<(String, u64)>,
}

/// Fixed-capacity ring of [`IterationTrace`]s: pushing the N+1th entry
/// drops the oldest.
#[derive(Debug, Clone)]
pub struct TraceRing {
    cap: usize,
    buf: VecDeque<IterationTrace>,
}

/// The JSON document [`TraceRing::dump_json`] produces.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct TraceDump {
    /// Dump format version; bump on incompatible change.
    pub version: u32,
    /// Ring capacity at dump time.
    pub capacity: usize,
    /// Why the dump was taken (e.g. `"shutdown"`, `"circuit-breaker"`).
    pub reason: String,
    /// Oldest → newest traces.
    pub iterations: Vec<IterationTrace>,
}

/// Version written by [`TraceRing::dump_json`].
pub const TRACE_DUMP_VERSION: u32 = 1;

impl TraceRing {
    /// A ring holding the last `cap` iterations (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap: cap.max(1),
            buf: VecDeque::with_capacity(cap.max(1)),
        }
    }

    /// Append a trace, evicting the oldest entry when full.
    pub fn push(&mut self, trace: IterationTrace) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(trace);
    }

    /// Append a trace by filling a recycled entry in place: once the
    /// ring is full, the evicted oldest entry (with its `stages_us` /
    /// `vm_alloc_us` buffers and their `String`s) is handed to `fill`
    /// for reuse, so steady-state tracing performs no heap allocation.
    /// While the ring is still filling, `fill` receives a fresh empty
    /// entry.
    pub fn push_with<F: FnOnce(&mut IterationTrace)>(&mut self, fill: F) {
        let mut entry = if self.buf.len() == self.cap {
            self.buf.pop_front().expect("cap >= 1")
        } else {
            IterationTrace {
                iteration: 0,
                unix_ms: 0,
                stages_us: Vec::new(),
                total_us: 0,
                degraded: false,
                vm_alloc_us: Vec::new(),
            }
        };
        fill(&mut entry);
        self.buf.push_back(entry);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum entries held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Oldest → newest iterator.
    pub fn iter(&self) -> impl Iterator<Item = &IterationTrace> {
        self.buf.iter()
    }

    /// Serialize the ring (oldest → newest) as a [`TraceDump`] JSON
    /// document. `reason` records what triggered the dump.
    pub fn dump_json(&self, reason: &str) -> String {
        let dump = TraceDump {
            version: TRACE_DUMP_VERSION,
            capacity: self.cap,
            reason: reason.to_string(),
            iterations: self.buf.iter().cloned().collect(),
        };
        serde_json::to_string_pretty(&dump).expect("trace dump serialization cannot fail")
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before 1970).
pub fn unix_now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(i: u64) -> IterationTrace {
        IterationTrace {
            iteration: i,
            unix_ms: 1_000 + i,
            stages_us: vec![4, 1, 1, 1, 1, 2],
            total_us: 12,
            degraded: i.is_multiple_of(2),
            vm_alloc_us: vec![("web".into(), 208_333)],
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = TraceRing::new(3);
        for i in 0..5 {
            ring.push(trace(i));
        }
        assert_eq!(ring.len(), 3);
        let kept: Vec<u64> = ring.iter().map(|t| t.iteration).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = TraceRing::new(0);
        ring.push(trace(0));
        ring.push(trace(1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.capacity(), 1);
    }

    #[test]
    fn dump_roundtrips_through_json() {
        let mut ring = TraceRing::new(8);
        ring.push(trace(0));
        ring.push(trace(1));
        let json = ring.dump_json("circuit-breaker");
        let dump: TraceDump = serde_json::from_str(&json).unwrap();
        assert_eq!(dump.version, TRACE_DUMP_VERSION);
        assert_eq!(dump.reason, "circuit-breaker");
        assert_eq!(dump.iterations.len(), 2);
        assert_eq!(dump.iterations[0], trace(0));
        assert_eq!(dump.iterations[1].vm_alloc_us[0].0, "web");
    }
}
