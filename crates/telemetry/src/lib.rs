#![warn(missing_docs)]

//! Telemetry substrate for the virtual frequency controller.
//!
//! The paper sells the controller on its negligible per-period overhead
//! (§IV.A.2: ≈5 ms of a 1 s period, ≈4 ms of it monitoring); this crate
//! makes that claim — and the market's behaviour — continuously
//! observable in production instead of anecdotal:
//!
//! * [`hist`] — fixed-bucket latency [histograms](hist::Histogram)
//!   (p50/p95/p99/max) cheap enough to wrap every stage of every
//!   iteration: observing is a binary search plus integer adds, with no
//!   allocation in steady state;
//! * [`registry`] — a [`registry::Registry`] of counters, gauges and
//!   histogram families behind copyable handles, mutated by index (no
//!   hashing on the hot path);
//! * [`expose`] — Prometheus text-format [rendering](expose::render),
//!   atomically-swapped [textfiles](expose::write_textfile), a minimal
//!   std-only [HTTP endpoint](expose::MetricsServer), and a
//!   [merged multi-node rollup](expose::render_merged);
//! * [`trace`] — a ring-buffer [trace journal](trace::TraceRing) of the
//!   last N iterations, dumped as JSON for post-mortems when the daemon
//!   dies or trips its circuit breaker.
//!
//! Everything is integer-valued (µs and event counts) end to end, so an
//! exposition can never contain `NaN`; durations render in seconds via
//! exact decimal-string arithmetic. See `docs/OBSERVABILITY.md` for the
//! full metric reference.

pub mod expose;
pub mod hist;
pub mod registry;
pub mod trace;

pub use expose::{render, render_merged, write_textfile, MetricsServer};
pub use hist::{HistSnapshot, Histogram, LATENCY_BUCKETS_US};
pub use registry::{Kind, MetricId, Registry};
pub use trace::{IterationTrace, TraceDump, TraceRing, STAGE_NAMES, TRACE_DUMP_VERSION};
