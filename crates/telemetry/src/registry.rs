//! Metric registry: counters, gauges and histograms behind stable
//! handles.
//!
//! Metrics are registered once at startup and mutated through copyable
//! handles ([`MetricId`]), so the steady-state cost of an update is an
//! index into a `Vec` plus an integer add — no hashing, no allocation.
//! Labelled series come in two flavours:
//!
//! * **fixed** label sets ([`Registry::counter_vec`],
//!   [`Registry::histogram_vec`]) — every label value is declared at
//!   registration (e.g. the six controller stages) and addressed by
//!   index;
//! * **dynamic** label sets ([`Registry::counter_dyn`],
//!   [`Registry::gauge_dyn`]) — series appear as their label values are
//!   first seen (e.g. one series per VM name). Creating a new series
//!   allocates; updating an existing one is a linear scan over the
//!   (small) series list.
//!
//! All values are unsigned integers (µs for cycle quantities, counts for
//! events); rendering therefore cannot produce `NaN` or exponent
//! notation. The exposition lives in [`crate::expose`].

use crate::hist::Histogram;

/// Metric kind, mirroring the Prometheus `# TYPE` keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing event/quantity count.
    Counter,
    /// A value that can go up and down (set, not incremented).
    Gauge,
    /// A fixed-bucket duration histogram (µs stored, seconds exposed).
    Histogram,
}

impl Kind {
    /// The lowercase `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// The payload of one labelled series.
#[derive(Debug, Clone)]
pub(crate) enum SeriesData {
    /// Counter or gauge value.
    Value(u64),
    /// Histogram state.
    Hist(Histogram),
}

/// One series of a metric: a label value (empty for unlabelled metrics)
/// plus its data.
#[derive(Debug, Clone)]
pub(crate) struct Series {
    pub(crate) label: String,
    pub(crate) data: SeriesData,
}

/// One registered metric: name, help, kind and its series.
#[derive(Debug, Clone)]
pub(crate) struct Metric {
    pub(crate) name: &'static str,
    pub(crate) help: &'static str,
    pub(crate) kind: Kind,
    /// Label key for the series dimension (`None` = single unlabelled
    /// series).
    pub(crate) label_key: Option<&'static str>,
    /// True when series appear at runtime (per-VM families): the
    /// exposition sorts those by label; fixed families keep registration
    /// order.
    pub(crate) dynamic: bool,
    pub(crate) series: Vec<Series>,
}

/// Handle to a registered metric; index it with the series position
/// (always 0 for unlabelled metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(pub(crate) usize);

/// The metric registry. Registration order is exposition order, which
/// keeps the rendered text stable across runs (the golden-file test
/// depends on it).
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) metrics: Vec<Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&mut self, m: Metric) -> MetricId {
        debug_assert!(
            self.metrics.iter().all(|e| e.name != m.name),
            "duplicate metric name {}",
            m.name
        );
        self.metrics.push(m);
        MetricId(self.metrics.len() - 1)
    }

    /// Register an unlabelled counter.
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> MetricId {
        self.register(Metric {
            name,
            help,
            kind: Kind::Counter,
            label_key: None,
            dynamic: false,
            series: vec![Series {
                label: String::new(),
                data: SeriesData::Value(0),
            }],
        })
    }

    /// Register an unlabelled gauge.
    pub fn gauge(&mut self, name: &'static str, help: &'static str) -> MetricId {
        self.register(Metric {
            name,
            help,
            kind: Kind::Gauge,
            label_key: None,
            dynamic: false,
            series: vec![Series {
                label: String::new(),
                data: SeriesData::Value(0),
            }],
        })
    }

    /// Register a counter family with a fixed set of label values,
    /// addressed by index in `values` order.
    pub fn counter_vec(
        &mut self,
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
        values: &[&str],
    ) -> MetricId {
        self.register(Metric {
            name,
            help,
            kind: Kind::Counter,
            label_key: Some(label_key),
            dynamic: false,
            series: values
                .iter()
                .map(|v| Series {
                    label: (*v).to_string(),
                    data: SeriesData::Value(0),
                })
                .collect(),
        })
    }

    /// Register a counter family whose label values appear dynamically
    /// (e.g. one series per VM name). Starts empty.
    pub fn counter_dyn(
        &mut self,
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
    ) -> MetricId {
        self.register(Metric {
            name,
            help,
            kind: Kind::Counter,
            label_key: Some(label_key),
            dynamic: true,
            series: Vec::new(),
        })
    }

    /// Register a gauge family whose label values appear dynamically.
    pub fn gauge_dyn(
        &mut self,
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
    ) -> MetricId {
        self.register(Metric {
            name,
            help,
            kind: Kind::Gauge,
            label_key: Some(label_key),
            dynamic: true,
            series: Vec::new(),
        })
    }

    /// Register a histogram family with a fixed set of label values over
    /// the given bucket bounds (µs).
    pub fn histogram_vec(
        &mut self,
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
        values: &[&str],
        bounds: &'static [u64],
    ) -> MetricId {
        self.register(Metric {
            name,
            help,
            kind: Kind::Histogram,
            label_key: Some(label_key),
            dynamic: false,
            series: values
                .iter()
                .map(|v| Series {
                    label: (*v).to_string(),
                    data: SeriesData::Hist(Histogram::new(bounds)),
                })
                .collect(),
        })
    }

    /// Register an unlabelled histogram over the given bucket bounds (µs).
    pub fn histogram(
        &mut self,
        name: &'static str,
        help: &'static str,
        bounds: &'static [u64],
    ) -> MetricId {
        self.register(Metric {
            name,
            help,
            kind: Kind::Histogram,
            label_key: None,
            dynamic: false,
            series: vec![Series {
                label: String::new(),
                data: SeriesData::Hist(Histogram::new(bounds)),
            }],
        })
    }

    /// Increment a counter series by `by` (`idx` = label position; 0 for
    /// unlabelled).
    pub fn inc(&mut self, id: MetricId, idx: usize, by: u64) {
        if let SeriesData::Value(v) = &mut self.metrics[id.0].series[idx].data {
            *v += by;
        }
    }

    /// Set a gauge series to `value`.
    pub fn set(&mut self, id: MetricId, idx: usize, value: u64) {
        if let SeriesData::Value(v) = &mut self.metrics[id.0].series[idx].data {
            *v = value;
        }
    }

    /// Increment a dynamic-label counter, creating the series on first
    /// sight of `label`.
    pub fn inc_dyn(&mut self, id: MetricId, label: &str, by: u64) {
        if let SeriesData::Value(v) = self.dyn_series(id, label) {
            *v += by;
        }
    }

    /// Set a dynamic-label gauge, creating the series on first sight of
    /// `label`.
    pub fn set_dyn(&mut self, id: MetricId, label: &str, value: u64) {
        if let SeriesData::Value(v) = self.dyn_series(id, label) {
            *v = value;
        }
    }

    /// Drop a dynamic series (e.g. a VM that vanished — its balance gauge
    /// must not linger at the last value forever).
    pub fn remove_dyn(&mut self, id: MetricId, label: &str) {
        self.metrics[id.0].series.retain(|s| s.label != label);
    }

    fn dyn_series(&mut self, id: MetricId, label: &str) -> &mut SeriesData {
        let series = &mut self.metrics[id.0].series;
        match series.iter().position(|s| s.label == label) {
            Some(i) => &mut series[i].data,
            None => {
                series.push(Series {
                    label: label.to_string(),
                    data: SeriesData::Value(0),
                });
                &mut series.last_mut().unwrap().data
            }
        }
    }

    /// Record a duration into a histogram series.
    pub fn observe(&mut self, id: MetricId, idx: usize, duration: std::time::Duration) {
        if let SeriesData::Hist(h) = &mut self.metrics[id.0].series[idx].data {
            h.observe(duration);
        }
    }

    /// Record a µs value into a histogram series.
    pub fn observe_us(&mut self, id: MetricId, idx: usize, us: u64) {
        if let SeriesData::Hist(h) = &mut self.metrics[id.0].series[idx].data {
            h.observe_us(us);
        }
    }

    /// Read a counter/gauge series value (0 if the series does not
    /// exist or the id is a histogram).
    pub fn value(&self, id: MetricId, idx: usize) -> u64 {
        match self.metrics[id.0].series.get(idx).map(|s| &s.data) {
            Some(SeriesData::Value(v)) => *v,
            _ => 0,
        }
    }

    /// Read a dynamic-label series value (0 if the label was never seen).
    pub fn value_dyn(&self, id: MetricId, label: &str) -> u64 {
        self.metrics[id.0]
            .series
            .iter()
            .find(|s| s.label == label)
            .and_then(|s| match &s.data {
                SeriesData::Value(v) => Some(*v),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Iterate over every (label, value) pair of a counter/gauge family
    /// in series order (histogram series are skipped). For dynamic
    /// families this is the only way to enumerate labels that appeared
    /// at runtime — e.g. the per-VM credit counters a metering layer
    /// folds into per-tenant usage.
    pub fn series_values(&self, id: MetricId) -> impl Iterator<Item = (&str, u64)> {
        self.metrics[id.0]
            .series
            .iter()
            .filter_map(|s| match &s.data {
                SeriesData::Value(v) => Some((s.label.as_str(), *v)),
                SeriesData::Hist(_) => None,
            })
    }

    /// Borrow a histogram series (None for value series / missing idx).
    pub fn histogram_at(&self, id: MetricId, idx: usize) -> Option<&Histogram> {
        match self.metrics[id.0].series.get(idx).map(|s| &s.data) {
            Some(SeriesData::Hist(h)) => Some(h),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LATENCY_BUCKETS_US;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let mut r = Registry::new();
        let c = r.counter("c_total", "a counter");
        let g = r.gauge("g", "a gauge");
        r.inc(c, 0, 3);
        r.inc(c, 0, 4);
        r.set(g, 0, 9);
        r.set(g, 0, 2);
        assert_eq!(r.value(c, 0), 7);
        assert_eq!(r.value(g, 0), 2);
    }

    #[test]
    fn fixed_vec_is_addressed_by_index() {
        let mut r = Registry::new();
        let c = r.counter_vec("m_total", "by outcome", "outcome", &["sold", "wasted"]);
        r.inc(c, 1, 5);
        assert_eq!(r.value(c, 0), 0);
        assert_eq!(r.value(c, 1), 5);
    }

    #[test]
    fn dynamic_series_appear_update_and_vanish() {
        let mut r = Registry::new();
        let c = r.counter_dyn("vm_total", "per vm", "vm");
        r.inc_dyn(c, "web", 2);
        r.inc_dyn(c, "db", 1);
        r.inc_dyn(c, "web", 3);
        assert_eq!(r.value_dyn(c, "web"), 5);
        assert_eq!(r.value_dyn(c, "db"), 1);
        assert_eq!(r.value_dyn(c, "ghost"), 0);
        r.remove_dyn(c, "web");
        assert_eq!(r.value_dyn(c, "web"), 0);
    }

    #[test]
    fn histograms_observe_through_the_registry() {
        let mut r = Registry::new();
        let h = r.histogram_vec(
            "d_seconds",
            "stage latency",
            "stage",
            &["monitor", "apply"],
            &LATENCY_BUCKETS_US,
        );
        r.observe_us(h, 0, 4_000);
        r.observe_us(h, 0, 4_200);
        r.observe_us(h, 1, 90);
        let m = r.histogram_at(h, 0).unwrap();
        assert_eq!(m.count(), 2);
        assert_eq!(m.sum_us(), 8_200);
        assert_eq!(r.histogram_at(h, 1).unwrap().max_us(), 90);
        assert!(r.histogram_at(h, 2).is_none());
    }
}
