//! Fixed-bucket latency histograms.
//!
//! The buckets are chosen once at registration; observing a value is a
//! binary search over a static bound slice plus three integer adds — no
//! allocation, no floating point — so the controller can observe every
//! stage of every iteration without perturbing the loop it measures.
//!
//! All values are **microseconds**. The Prometheus exposition renders
//! bounds and sums in seconds (the Prometheus base unit for durations);
//! both conversions are pure integer/decimal-string arithmetic, so the
//! output can never contain `NaN` or `inf` (except the conventional
//! `+Inf` bucket label).

/// Default latency bucket upper bounds, in µs. Log-spaced from 1 µs to
/// 2.5 s: fine enough to separate a 5 µs estimate stage from a 4 ms
/// monitor stage (the paper's §IV.A.2 breakdown), coarse enough that a
/// histogram is 21 counters.
pub const LATENCY_BUCKETS_US: [u64; 20] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000, 2_500_000,
];

/// A fixed-bucket histogram of microsecond durations.
///
/// Steady-state cost of [`observe`](Histogram::observe): one binary
/// search over the bound slice and four integer updates. The bucket
/// array is allocated once at construction.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Upper bounds (inclusive), strictly increasing, in µs.
    bounds: &'static [u64],
    /// `counts[i]` observations fell in `(bounds[i-1], bounds[i]]`;
    /// the final slot is the `+Inf` overflow bucket.
    counts: Vec<u64>,
    sum_us: u64,
    count: u64,
    max_us: u64,
}

/// A point-in-time summary of a histogram: the quantiles operators ask
/// for, plus the exact count/sum/max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct HistSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations, µs.
    pub sum_us: u64,
    /// Estimated median, µs (bucket upper bound — see
    /// [`Histogram::quantile_us`]).
    pub p50_us: u64,
    /// Estimated 95th percentile, µs.
    pub p95_us: u64,
    /// Estimated 99th percentile, µs.
    pub p99_us: u64,
    /// Exact maximum observation, µs.
    pub max_us: u64,
}

impl HistSnapshot {
    /// Mean observation in µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

impl Histogram {
    /// A histogram over the given bounds (strictly increasing, non-empty).
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing — bucket
    /// layouts are programmer input, not runtime data.
    pub fn new(bounds: &'static [u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum_us: 0,
            count: 0,
            max_us: 0,
        }
    }

    /// A histogram over [`LATENCY_BUCKETS_US`].
    pub fn latency() -> Self {
        Histogram::new(&LATENCY_BUCKETS_US)
    }

    /// Record one duration.
    pub fn observe(&mut self, duration: std::time::Duration) {
        self.observe_us(duration.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one duration given in µs.
    pub fn observe_us(&mut self, us: u64) {
        let idx = self.bounds.partition_point(|&b| b < us);
        self.counts[idx] += 1;
        self.sum_us += us;
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Exact maximum observation, µs (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The bucket bounds this histogram was built over.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts; the final entry is the `+Inf` overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimate the `q`-quantile (`0 < q ≤ 1`) as the **upper bound** of
    /// the bucket containing that rank — a conservative (never
    /// under-reporting) estimate, which is the right bias for latency
    /// SLOs. The overflow bucket reports the exact observed maximum.
    /// Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < self.bounds.len() {
                    // Never report a quantile above the observed maximum.
                    self.bounds[i].min(self.max_us)
                } else {
                    self.max_us
                };
            }
        }
        self.max_us
    }

    /// Snapshot the operator-facing summary (p50/p95/p99/max).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            sum_us: self.sum_us,
            p50_us: self.quantile_us(0.50),
            p95_us: self.quantile_us(0.95),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us,
        }
    }
}

/// Render a µs quantity as a Prometheus-style seconds decimal string
/// (`208333` → `"0.208333"`, `1_500_000` → `"1.5"`). Pure integer
/// arithmetic: no float formatting, no `NaN`, no exponents.
pub fn fmt_us_as_secs(us: u64) -> String {
    let secs = us / 1_000_000;
    let frac = us % 1_000_000;
    if frac == 0 {
        return format!("{secs}");
    }
    let s = format!("{secs}.{frac:06}");
    s.trim_end_matches('0').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn buckets_fill_where_expected() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for us in [5, 10, 11, 100, 5000] {
            h.observe_us(us);
        }
        assert_eq!(h.bucket_counts(), &[2, 2, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_us(), 5 + 10 + 11 + 100 + 5000);
        assert_eq!(h.max_us(), 5000);
    }

    #[test]
    fn quantiles_are_conservative_bucket_bounds() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for _ in 0..90 {
            h.observe_us(7);
        }
        for _ in 0..10 {
            h.observe_us(600);
        }
        assert_eq!(h.quantile_us(0.5), 10);
        assert_eq!(h.quantile_us(0.95), 1000.min(h.max_us()));
        assert_eq!(h.quantile_us(1.0), 600);
        assert_eq!(h.max_us(), 600);
    }

    #[test]
    fn overflow_bucket_reports_exact_max() {
        let mut h = Histogram::new(&[10]);
        h.observe_us(123_456);
        assert_eq!(h.quantile_us(0.99), 123_456);
        assert_eq!(h.snapshot().p99_us, 123_456);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::latency();
        let s = h.snapshot();
        assert_eq!(
            (s.count, s.sum_us, s.p50_us, s.p95_us, s.p99_us, s.max_us),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean_us(), 0);
    }

    #[test]
    fn duration_observation_truncates_to_us() {
        let mut h = Histogram::latency();
        h.observe(Duration::from_nanos(1_999));
        assert_eq!(h.sum_us(), 1);
    }

    #[test]
    fn seconds_formatting_is_exact_and_trimmed() {
        assert_eq!(fmt_us_as_secs(0), "0");
        assert_eq!(fmt_us_as_secs(1), "0.000001");
        assert_eq!(fmt_us_as_secs(208_333), "0.208333");
        assert_eq!(fmt_us_as_secs(500_000), "0.5");
        assert_eq!(fmt_us_as_secs(1_000_000), "1");
        assert_eq!(fmt_us_as_secs(2_500_000), "2.5");
        assert_eq!(fmt_us_as_secs(1_234_567), "1.234567");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[10, 10]);
    }
}
