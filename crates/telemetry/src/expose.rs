//! Prometheus text-format exposition (version 0.0.4).
//!
//! [`render`] serializes a [`Registry`] to the standard
//! `# HELP`/`# TYPE` text format. Two delivery mechanisms, both std-only:
//!
//! * **textfile** — [`write_textfile`] writes the rendered page to
//!   `<path>.tmp` and atomically renames it over `<path>`, so a scraper
//!   (e.g. node_exporter's textfile collector) never reads a torn page;
//! * **HTTP** — [`MetricsServer`] binds a `TcpListener` and serves the
//!   most recently [published](MetricsServer::publish) page to any `GET`.
//!   The accept loop runs on its own thread; the control loop only ever
//!   pays one mutex lock + one `String` clone per publish.
//!
//! Determinism: metrics render in registration order; series of a
//! dynamic family render sorted by label value. The same registry state
//! always renders to the same bytes (the golden-file test pins this).

use crate::hist::fmt_us_as_secs;
use crate::registry::{Kind, Registry, SeriesData};
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, ToSocketAddrs};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Escape a `# HELP` text: `\` → `\\`, newline → `\n`.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Format a label set `{k="v",extra...}`; empty string when there are no
/// labels at all.
fn labels(pairs: &[(&str, &str)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Render one registry to Prometheus text format. `extra_label`, when
/// given, is prepended to every series' label set — this is how a
/// cluster manager stamps each node's registry with `node="…"`.
pub fn render(registry: &Registry, extra_label: Option<(&str, &str)>) -> String {
    let mut out = String::new();
    let groups: Vec<&Registry> = vec![registry];
    render_grouped_inner(
        &mut out,
        &groups,
        &[extra_label.map(|(k, v)| (k, v.to_string()))],
    );
    out
}

/// Render several registries with **identical metric layouts** (same
/// metrics registered in the same order) as one page: each metric's
/// `# HELP`/`# TYPE` header appears once, followed by every registry's
/// series tagged with its `label_key`/`label_value` pair. This is the
/// cluster-manager rollup: one registry per node, one page for the
/// scraper.
///
/// Registries whose metric list differs from the first one's are
/// skipped (a half-upgraded cluster must not corrupt the page).
pub fn render_merged(label_key: &'static str, registries: &[(&str, &Registry)]) -> String {
    let Some((_, first)) = registries.first() else {
        return String::new();
    };
    let compatible: Vec<(&str, &Registry)> = registries
        .iter()
        .filter(|(_, r)| {
            r.metrics.len() == first.metrics.len()
                && r.metrics
                    .iter()
                    .zip(first.metrics.iter())
                    .all(|(a, b)| a.name == b.name)
        })
        .copied()
        .collect();
    let regs: Vec<&Registry> = compatible.iter().map(|(_, r)| *r).collect();
    let extras: Vec<Option<(&str, String)>> = compatible
        .iter()
        .map(|(name, _)| Some((label_key, (*name).to_string())))
        .collect();
    let mut out = String::new();
    render_grouped_inner(&mut out, &regs, &extras);
    out
}

fn render_grouped_inner(
    out: &mut String,
    registries: &[&Registry],
    extras: &[Option<(&str, String)>],
) {
    let Some(first) = registries.first() else {
        return;
    };
    for mi in 0..first.metrics.len() {
        let meta = &first.metrics[mi];
        out.push_str(&format!(
            "# HELP {} {}\n",
            meta.name,
            escape_help(meta.help)
        ));
        out.push_str(&format!("# TYPE {} {}\n", meta.name, meta.kind.as_str()));
        for (reg, extra) in registries.iter().zip(extras.iter()) {
            let metric = &reg.metrics[mi];
            // Dynamic families render sorted by label value for a stable
            // page; fixed families keep their registration order (the
            // caller chose it deliberately, e.g. pipeline stage order).
            let mut order: Vec<usize> = (0..metric.series.len()).collect();
            if metric.dynamic {
                order.sort_by(|&a, &b| metric.series[a].label.cmp(&metric.series[b].label));
            }
            for si in order {
                let series = &metric.series[si];
                let mut pairs: Vec<(&str, &str)> = Vec::new();
                if let Some((k, v)) = extra {
                    pairs.push((k, v.as_str()));
                }
                if let Some(key) = metric.label_key {
                    pairs.push((key, series.label.as_str()));
                }
                match &series.data {
                    SeriesData::Value(v) => {
                        out.push_str(&format!("{}{} {v}\n", meta.name, labels(&pairs)));
                    }
                    SeriesData::Hist(h) => {
                        debug_assert_eq!(meta.kind, Kind::Histogram);
                        let mut cumulative = 0u64;
                        let counts = h.bucket_counts();
                        for (bi, bound) in h.bounds().iter().enumerate() {
                            cumulative += counts[bi];
                            let mut bp = pairs.clone();
                            let le = fmt_us_as_secs(*bound);
                            bp.push(("le", le.as_str()));
                            out.push_str(&format!(
                                "{}_bucket{} {cumulative}\n",
                                meta.name,
                                labels(&bp)
                            ));
                        }
                        cumulative += counts[counts.len() - 1];
                        let mut bp = pairs.clone();
                        bp.push(("le", "+Inf"));
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            meta.name,
                            labels(&bp)
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            meta.name,
                            labels(&pairs),
                            fmt_us_as_secs(h.sum_us())
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            meta.name,
                            labels(&pairs),
                            h.count()
                        ));
                    }
                }
            }
        }
    }
}

/// Atomically replace `path` with `page`: write `<path>.tmp`, then
/// rename over the target. A scraper reading the file concurrently sees
/// either the old page or the new one, never a torn mix.
pub fn write_textfile(path: &Path, page: &str) -> Result<(), String> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, page).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
}

/// A minimal blocking HTTP exposition endpoint.
///
/// Binds at construction; a detached thread accepts connections and
/// answers every request with the last published page (`200 OK`,
/// `text/plain; version=0.0.4`). There is deliberately no routing, no
/// keep-alive and no TLS — this is a scrape endpoint, not a web server.
/// The thread exits with the process; [`MetricsServer`] holds no
/// non-static resources.
pub struct MetricsServer {
    page: Arc<Mutex<String>>,
    addr: std::net::SocketAddr,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9464`) and start the accept thread.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<MetricsServer, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind metrics addr: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("metrics local addr: {e}"))?;
        let page = Arc::new(Mutex::new(String::new()));
        let served = Arc::clone(&page);
        std::thread::Builder::new()
            .name("vfc-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(mut stream) = stream else { continue };
                    // Drain the request line + headers best-effort; a
                    // scraper that pipelines is out of scope.
                    let mut buf = [0u8; 1024];
                    let _ = stream.read(&mut buf);
                    let body = served.lock().map(|p| p.clone()).unwrap_or_default();
                    let response = format!(
                        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len(),
                    );
                    let _ = stream.write_all(response.as_bytes());
                }
            })
            .map_err(|e| format!("spawn metrics thread: {e}"))?;
        Ok(MetricsServer { page, addr: local })
    }

    /// Replace the page served to the next scrape.
    pub fn publish(&self, page: String) {
        if let Ok(mut guard) = self.page.lock() {
            *guard = page;
        }
    }

    /// The actually bound address (resolves `:0` to the chosen port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LATENCY_BUCKETS_US;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        let c = r.counter("vfc_iterations_total", "Iterations executed");
        r.inc(c, 0, 12);
        let g = r.gauge_dyn("vfc_credit_balance_usec", "Wallet balance", "vm");
        r.set_dyn(g, "web", 500);
        r.set_dyn(g, "db", 900);
        let h = r.histogram(
            "vfc_iteration_duration_seconds",
            "Iteration wall time",
            &LATENCY_BUCKETS_US,
        );
        r.observe_us(h, 0, 46);
        r
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let r = sample_registry();
        let a = render(&r, None);
        let b = render(&r, None);
        assert_eq!(a, b);
        // Dynamic labels sorted: db before web.
        let db = a.find("vm=\"db\"").unwrap();
        let web = a.find("vm=\"web\"").unwrap();
        assert!(db < web);
        assert!(a.contains("# TYPE vfc_iterations_total counter"));
        assert!(a.contains("vfc_iteration_duration_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(a.contains("vfc_iteration_duration_seconds_sum 0.000046"));
    }

    #[test]
    fn extra_label_is_prepended() {
        let r = sample_registry();
        let page = render(&r, Some(("node", "n0")));
        assert!(page.contains("vfc_iterations_total{node=\"n0\"} 12"));
        assert!(page.contains("{node=\"n0\",vm=\"db\"}"));
    }

    #[test]
    fn merged_render_emits_headers_once() {
        let a = sample_registry();
        let b = sample_registry();
        let page = render_merged("node", &[("n0", &a), ("n1", &b)]);
        assert_eq!(
            page.matches("# TYPE vfc_iterations_total counter").count(),
            1
        );
        assert!(page.contains("vfc_iterations_total{node=\"n0\"} 12"));
        assert!(page.contains("vfc_iterations_total{node=\"n1\"} 12"));
        // Mismatched registries are skipped, not mixed in.
        let other = Registry::new();
        let page = render_merged("node", &[("n0", &a), ("weird", &other)]);
        assert!(!page.contains("weird"));
    }

    #[test]
    fn escaping_covers_help_and_labels() {
        let mut r = Registry::new();
        let c = r.counter_dyn("esc_total", "line\nbreak and back\\slash", "vm");
        r.inc_dyn(c, "we\"ird\\vm\n", 1);
        let page = render(&r, None);
        assert!(page.contains("# HELP esc_total line\\nbreak and back\\\\slash"));
        assert!(page.contains("esc_total{vm=\"we\\\"ird\\\\vm\\n\"} 1"));
    }

    #[test]
    fn textfile_swap_is_atomic_and_clean() {
        let dir = std::env::temp_dir().join(format!("vfc-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        write_textfile(&path, "one 1\n").unwrap();
        write_textfile(&path, "two 2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two 2\n");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn http_listener_serves_the_published_page() {
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        server.publish("vfc_iterations_total 7\n".to_string());
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.ends_with("vfc_iterations_total 7\n"), "{response}");
    }
}
