//! Overload-resilience evaluation: what does the deadline-aware
//! degradation ladder buy when the control loop itself is the thing
//! under attack?
//!
//! Two event-core cluster runs share the same trace (a steady base
//! population plus a burst of arrivals), the same control-plane
//! partition window and the same fail-safe cap-lease policy; the only
//! difference is whether the controllers run the deadline ladder
//! ([`vfc_controller::ControllerConfig::deadline_budget_frac`]) or not.
//! During a *stress window* every controller's per-period loop time is
//! inflated via [`ClusterManager::inject_stage_delay_us`] — the
//! simulation stand-in for a node whose CPU is starved by the very VMs
//! the controller is metering. The per-period curves show the ladder
//! descending (full → reuse-previous → monitor-only → uncap-all),
//! holding the loop's charged time at the budget, then climbing back
//! after the hysteresis once the stress clears; the no-ladder run keeps
//! charging whatever the inflated loop costs.
//!
//! Independently, [`api_stress`] points real sockets at a real
//! [`ApiServer`]: slow-loris writers and oversized bodies against a
//! hardened front end, concurrent with well-behaved health probes. The
//! acceptance bar is typed shedding (408/413) for the attackers and a
//! <1 % failure rate for the well-behaved clients.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use vfc_cluster::{
    ClusterManager, ClusterReport, EventDrivenCluster, FaultModel, FaultReport, Strategy,
    TraceVmSpec, WorkloadFactory,
};
use vfc_controller::LadderRung;
use vfc_controlplane::{
    ApiServer, ApiServerConfig, ControlPlane, ControlPlaneRuntime, Reconciler, ReconcilerConfig,
    ShedReason, TenantQuota,
};
use vfc_cpusched::topology::NodeSpec;
use vfc_simcore::{MHz, Micros};
use vfc_vmm::workload::{BurstyWeb, SteadyDemand};
use vfc_vmm::VmTemplate;

/// Shape of one overload run (cluster side).
#[derive(Debug, Clone, Copy)]
pub struct OverloadScenario {
    /// Nodes (1 socket × 4 cores × 2 threads @ 2400 MHz each).
    pub nodes: usize,
    /// VMs arriving at t = 0 and staying for the whole run.
    pub base_vms: usize,
    /// Extra VMs all arriving at [`OverloadScenario::burst_at`].
    pub burst_vms: usize,
    /// Arrival second of the burst.
    pub burst_at: u64,
    /// Periods each burst VM stays before departing.
    pub burst_stay: u64,
    /// Total periods to run.
    pub periods: u64,
    /// Half-open period window during which every controller's loop
    /// time is inflated by [`OverloadScenario::stage_delay_us`].
    pub stress: (u64, u64),
    /// Synthetic loop-time inflation, µs per period.
    pub stage_delay_us: u64,
    /// Control-plane partition window `(start, end, node)`, half-open.
    pub partition: (u64, u64, usize),
    /// Cap-lease TTL in periods.
    pub lease_ttl: u64,
    /// Grace periods between guarantee-only and uncap.
    pub lease_grace: u64,
    /// Deadline budget for the with-ladder run, fraction of the period.
    pub deadline_budget_frac: f64,
    /// In-budget periods required to climb one rung back.
    pub ladder_recovery_periods: u32,
    /// Workload / fault seed.
    pub seed: u64,
}

impl Default for OverloadScenario {
    fn default() -> Self {
        OverloadScenario {
            nodes: 4,
            base_vms: 12,
            burst_vms: 10,
            burst_at: 20,
            burst_stay: 25,
            periods: 100,
            stress: (30, 60),
            stage_delay_us: 200_000,
            partition: (70, 85, 0),
            lease_ttl: 2,
            lease_grace: 4,
            deadline_budget_frac: 0.05, // 50 ms of a 1 s period
            ladder_recovery_periods: 3,
            seed: 0x0BAD_10AD,
        }
    }
}

impl OverloadScenario {
    /// A shrunk variant for debug-mode tests.
    pub fn quick() -> Self {
        OverloadScenario {
            nodes: 3,
            base_vms: 6,
            burst_vms: 4,
            burst_at: 8,
            burst_stay: 10,
            periods: 40,
            stress: (12, 24),
            partition: (28, 34, 0),
            ..OverloadScenario::default()
        }
    }

    fn fleet(&self) -> Vec<NodeSpec> {
        vec![NodeSpec::custom("ovl", 1, 4, 2, MHz(2400)); self.nodes]
    }

    /// The trace both runs replay: base VMs at t = 0 (small/medium/large
    /// round-robin, never departing) plus the burst.
    pub fn trace(&self) -> Vec<TraceVmSpec> {
        let template = |i: usize| match i % 3 {
            0 => VmTemplate::small(),
            1 => VmTemplate::medium(),
            _ => VmTemplate::large(),
        };
        let mut specs: Vec<TraceVmSpec> = (0..self.base_vms)
            .map(|i| TraceVmSpec {
                trace_id: format!("base-{i}"),
                arrival: 0,
                departure: None,
                template: template(i),
            })
            .collect();
        specs.extend((0..self.burst_vms).map(|i| TraceVmSpec {
            trace_id: format!("burst-{i}"),
            arrival: self.burst_at,
            departure: Some(self.burst_at + self.burst_stay),
            template: template(i),
        }));
        specs
    }

    fn fault_model(&self) -> FaultModel {
        let mut f = FaultModel::none();
        f.seed = self.seed ^ 0xFA11;
        f.scripted_partitions.push(self.partition);
        f
    }
}

/// One period's sample of an overload run.
#[derive(Debug, Clone, Copy)]
pub struct PeriodPoint {
    /// Period index (1-based).
    pub period: u64,
    /// Worst degradation-ladder rung across nodes (0 = full pipeline).
    pub rung: u8,
    /// Deadline overruns charged this period (all nodes).
    pub overruns: u64,
    /// SLO-violated VM-periods this period (all classes).
    pub violations: u64,
    /// Nodes whose cap lease is currently expired (guarantee-only or
    /// uncapped).
    pub leases_degraded: u32,
}

/// One configuration's full run.
#[derive(Debug, Clone)]
pub struct OverloadRun {
    /// Ladder enabled?
    pub ladder: bool,
    /// Per-period curve.
    pub points: Vec<PeriodPoint>,
    /// Final cluster accounting.
    pub report: ClusterReport,
    /// Fault counters (partition node-periods live here).
    pub faults: FaultReport,
    /// Total deadline overruns over the run.
    pub total_overruns: u64,
    /// Worst rung ever reached.
    pub max_rung: u8,
    /// First period at or after the stress window's end where every
    /// node was back on the full pipeline (`None` = never recovered).
    pub recovered_at: Option<u64>,
}

/// Per-class demand profiles, same assignment as the trace evaluation.
fn workload_factory() -> WorkloadFactory {
    Box::new(|_slot, template, rng| match template.name.as_str() {
        "small" => Box::new(BurstyWeb::with_shape(
            rng.next_u64(),
            0.05,
            1.0,
            Micros::from_secs(60),
            Micros::from_secs(8),
        )),
        "medium" => Box::new(SteadyDemand::new(0.8)),
        _ => Box::new(SteadyDemand::full()),
    })
}

/// Run the scenario once, with or without the deadline ladder. The
/// harness plays the reconciler's part between periods: a lease-renewal
/// heartbeat every period (which the partition window blocks for the
/// partitioned node) and the stage-delay injection inside the stress
/// window.
pub fn run(s: &OverloadScenario, ladder: bool) -> OverloadRun {
    let mgr = ClusterManager::with_faults(
        s.fleet(),
        Strategy::FrequencyControl,
        s.seed,
        s.fault_model(),
    );
    let mut cluster = EventDrivenCluster::new(mgr).with_workloads(s.seed, workload_factory());
    cluster
        .manager_mut()
        .enable_cap_leases(s.lease_ttl, s.lease_grace);
    if ladder {
        cluster
            .manager_mut()
            .enable_deadline_ladder(s.deadline_budget_frac, s.ladder_recovery_periods);
    }
    cluster.load_trace(s.trace());

    let mut points = Vec::with_capacity(s.periods as usize);
    let (mut prev_overruns, mut prev_viol) = (0u64, 0u64);
    let (mut total_overruns, mut max_rung) = (0u64, 0u8);
    let mut recovered_at = None;
    for p in 1..=s.periods {
        let delay = if (s.stress.0..s.stress.1).contains(&p) {
            s.stage_delay_us
        } else {
            0
        };
        for n in 0..s.nodes {
            cluster.manager_mut().inject_stage_delay_us(n, delay);
        }
        cluster.manager_mut().renew_leases();
        cluster.run_until(p);

        let mgr = cluster.manager();
        let overruns: u64 = mgr
            .health_totals()
            .iter()
            .map(|(_, t)| t.deadline_overruns)
            .sum();
        let viol: u64 = mgr
            .report()
            .slo_by_class
            .iter()
            .map(|(_, slo)| slo.violated_periods)
            .sum();
        // Only nodes hosting VMs run controller periods in the event
        // core; an empty node's controller is parked and its rung
        // frozen, so the curve reflects the nodes actually working.
        let loads = mgr.node_loads();
        let busy = |n: &usize| loads[*n].used_vcpus > 0;
        let rung = (0..s.nodes)
            .filter(busy)
            .filter_map(|n| mgr.ladder_rung(n))
            .map(LadderRung::as_u8)
            .max()
            .unwrap_or(0);
        let leases_degraded = (0..s.nodes)
            .filter(busy)
            .filter_map(|n| mgr.lease_state(n))
            .filter(|l| l.as_u8() > 0)
            .count() as u32;
        points.push(PeriodPoint {
            period: p,
            rung,
            overruns: overruns - prev_overruns,
            violations: viol - prev_viol,
            leases_degraded,
        });
        total_overruns = overruns;
        max_rung = max_rung.max(rung);
        if recovered_at.is_none() && p >= s.stress.1 && rung == 0 {
            recovered_at = Some(p);
        }
        prev_overruns = overruns;
        prev_viol = viol;
    }
    OverloadRun {
        ladder,
        points,
        report: cluster.report(),
        faults: cluster.manager().fault_report(),
        total_overruns,
        max_rung,
        recovered_at,
    }
}

/// With-ladder vs without-ladder over the identical trace, stress and
/// partition schedule.
#[derive(Debug, Clone)]
pub struct OverloadComparison {
    /// The scenario both runs executed.
    pub scenario: OverloadScenario,
    /// Deadline ladder active.
    pub with_ladder: OverloadRun,
    /// Deadline accounting off — the loop charges whatever it costs.
    pub without_ladder: OverloadRun,
}

/// Run both configurations. Validates the lease TTL against the
/// reconciler heartbeat first (the same footgun check the control
/// plane applies), so a scenario that could never renew in time is
/// rejected instead of silently degrading every node.
pub fn compare(s: OverloadScenario) -> Result<OverloadComparison, String> {
    ReconcilerConfig::default().validate_lease_ttl(s.lease_ttl)?;
    Ok(OverloadComparison {
        with_ladder: run(&s, true),
        without_ladder: run(&s, false),
        scenario: s,
    })
}

// ------------------------------------------------------------------ API --

/// Shape of the socket-level front-end stress run.
#[derive(Debug, Clone, Copy)]
pub struct ApiStressScenario {
    /// Well-behaved `GET /healthz` probes.
    pub good_requests: usize,
    /// Slow-loris clients: open a connection, dribble a byte, stall.
    pub loris_clients: usize,
    /// Clients announcing a body far beyond the configured cap.
    pub oversized_clients: usize,
    /// Server read/write timeout.
    pub timeout: Duration,
}

impl Default for ApiStressScenario {
    fn default() -> Self {
        ApiStressScenario {
            good_requests: 60,
            loris_clients: 4,
            oversized_clients: 4,
            timeout: Duration::from_millis(150),
        }
    }
}

/// What the front-end stress run observed.
#[derive(Debug, Clone, Copy)]
pub struct ApiStressOutcome {
    /// Well-behaved probes answered 200.
    pub good_ok: u64,
    /// Well-behaved probes that failed (any non-200 or I/O error).
    pub good_failed: u64,
    /// `good_failed / (good_ok + good_failed)`.
    pub good_failure_rate: f64,
    /// Slow-loris connections shed with 408.
    pub shed_read_timeout: u64,
    /// Oversized bodies shed with 413.
    pub shed_body_too_large: u64,
}

fn read_status(stream: &mut TcpStream) -> Option<u16> {
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).ok()?;
    let line = String::from_utf8_lossy(&buf);
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Slow-loris writers and oversized bodies against a real, hardened
/// [`ApiServer`], interleaved with well-behaved health probes. Wall
/// clock, not deterministic — assertions should bound rates, not
/// counts.
pub fn api_stress(s: ApiStressScenario) -> Result<ApiStressOutcome, String> {
    let mut plane = ControlPlane::new();
    plane.add_tenant(
        "acme",
        TenantQuota {
            max_vms: 8,
            max_vcpus: 32,
            max_mhz: 40_000,
        },
    );
    let cluster = ClusterManager::new(
        vec![NodeSpec::custom("api", 1, 2, 2, MHz(2400)); 2],
        Strategy::FrequencyControl,
        7,
    );
    let runtime = Arc::new(Mutex::new(ControlPlaneRuntime::new(
        plane,
        cluster,
        Reconciler::new(ReconcilerConfig::default()),
    )));
    let server = ApiServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&runtime),
        ApiServerConfig {
            read_timeout: s.timeout,
            write_timeout: s.timeout,
            max_body_bytes: 1024,
            ..ApiServerConfig::default()
        },
    )?;
    let addr = server.local_addr();

    // Attackers first: they hold server workers for `timeout`, so the
    // well-behaved probes below run concurrently with the stalls.
    let mut attackers = Vec::new();
    for i in 0..(s.loris_clients + s.oversized_clients) {
        let loris = i < s.loris_clients;
        attackers.push(std::thread::spawn(move || {
            let Ok(mut c) = TcpStream::connect(addr) else {
                return;
            };
            if loris {
                // One byte, then stall: the read deadline must fire.
                let _ = c.write_all(b"P");
                std::thread::sleep(s.timeout + Duration::from_millis(50));
            } else {
                let _ = c.write_all(
                    b"POST /v1/tenants/acme/vms HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n",
                );
            }
            let _ = read_status(&mut c);
        }));
    }

    let (mut good_ok, mut good_failed) = (0u64, 0u64);
    for _ in 0..s.good_requests {
        let ok = TcpStream::connect(addr).ok().and_then(|mut c| {
            c.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").ok()?;
            read_status(&mut c)
        });
        if ok == Some(200) {
            good_ok += 1;
        } else {
            good_failed += 1;
        }
    }
    for a in attackers {
        let _ = a.join();
    }

    let rt = runtime.lock().map_err(|_| "runtime poisoned".to_owned())?;
    let total = (good_ok + good_failed).max(1);
    Ok(ApiStressOutcome {
        good_ok,
        good_failed,
        good_failure_rate: good_failed as f64 / total as f64,
        shed_read_timeout: rt.plane.metrics.sheds(ShedReason::ReadTimeout),
        shed_body_too_large: rt.plane.metrics.sheds(ShedReason::BodyTooLarge),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_degrades_and_recovers_under_stress() {
        let cmp = compare(OverloadScenario::quick()).expect("valid scenario");
        let w = &cmp.with_ladder;
        assert!(w.max_rung > 0, "ladder never descended");
        assert!(
            w.recovered_at.is_some(),
            "ladder never climbed back to the full pipeline"
        );
        // Outside the ladder, deadline accounting is off entirely.
        assert_eq!(cmp.without_ladder.total_overruns, 0);
        assert!(w.total_overruns > 0);
        // The partition degraded at least one lease in both runs.
        assert!(w.points.iter().any(|p| p.leases_degraded > 0));
        assert!(w.faults.partitioned_node_periods > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let s = OverloadScenario::quick();
        let (a, b) = (run(&s, true), run(&s, true));
        assert_eq!(a.points.len(), b.points.len());
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(
                (x.period, x.rung, x.violations, x.leases_degraded),
                (y.period, y.rung, y.violations, y.leases_degraded)
            );
        }
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap()
        );
    }

    #[test]
    fn front_end_sheds_attackers_not_probes() {
        let o = api_stress(ApiStressScenario {
            good_requests: 30,
            loris_clients: 2,
            oversized_clients: 2,
            ..ApiStressScenario::default()
        })
        .expect("bind");
        assert!(o.shed_read_timeout >= 1, "{o:?}");
        assert!(o.shed_body_too_large >= 1, "{o:?}");
        assert!(o.good_failure_rate < 0.01, "{o:?}");
    }
}
