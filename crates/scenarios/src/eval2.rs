//! Second evaluation (§IV.B): Table V, Figures 12–14.
//!
//! Three classes on *chetemi*: 14 small (compress-7zip, t = 0), 8 medium
//! (openssl, t = 100 s, 4 vCPUs @ 1200 MHz), 6 large (compress-7zip,
//! t = 200 s). Expected shapes:
//!
//! * **A** (Fig. 12): smalls fastest; medium = large (CFS per-VM shares);
//! * **B** (Fig. 13): plateaus at ≈500/1200/1800 MHz; when the openssl
//!   run of the mediums completes, the freed cycles lift smalls and
//!   larges.

use crate::runner::{Scale, ScenarioOutcome, ScenarioSpec, VmGroup, WorkloadKind};
use vfc_controller::ControlMode;
use vfc_cpusched::topology::NodeSpec;
use vfc_simcore::{Cycles, Micros};
use vfc_vmm::VmTemplate;

/// Start of the medium (openssl) workload.
pub const MEDIUM_START: Micros = Micros(100_000_000);
/// Start of the large workload.
pub const LARGE_START: Micros = Micros(200_000_000);
/// Experiment duration.
pub const DURATION: Micros = Micros(700_000_000);

/// openssl work per vCPU, sized so the medium instances — which burst to
/// ≈2.4 GHz while alone with the smalls (t ∈ [100, 200] s) and then hold
/// their 1200 MHz guarantee — finish around t ≈ 430 s, making Fig. 13's
/// cycle release visible well before the end of the run.
pub const OPENSSL_WORK: Cycles = Cycles(400_000_000_000);

/// Table V instance counts: (small, medium, large).
pub const COUNTS: (u32, u32, u32) = (14, 8, 6);

/// Build the Table V scenario.
pub fn spec(mode: ControlMode, scale: Scale) -> ScenarioSpec {
    let (n_small, n_medium, n_large) = COUNTS;
    ScenarioSpec {
        name: format!(
            "eval2-chetemi-{}",
            match mode {
                ControlMode::MonitorOnly => "A",
                ControlMode::Full => "B",
            }
        ),
        node: NodeSpec::chetemi(),
        groups: vec![
            VmGroup {
                template: VmTemplate::small(),
                instances: n_small,
                workload: WorkloadKind::Compress7zip {
                    iterations: 15,
                    work_per_vcpu: crate::eval1::COMPRESS_WORK,
                    sync_len: Micros::from_secs(2),
                },
                start_at: Micros::ZERO,
            },
            VmGroup {
                template: VmTemplate::medium(),
                instances: n_medium,
                workload: WorkloadKind::Openssl {
                    work_per_vcpu: OPENSSL_WORK,
                },
                start_at: MEDIUM_START,
            },
            VmGroup {
                template: VmTemplate::large(),
                instances: n_large,
                workload: WorkloadKind::Compress7zip {
                    iterations: 15,
                    work_per_vcpu: crate::eval1::COMPRESS_WORK,
                    sync_len: Micros::from_secs(2),
                },
                start_at: LARGE_START,
            },
        ],
        duration: DURATION,
        mode,
        scale,
        seed: 0xBEE2,
        governor_noise_mhz: 6.0,
        cache_model: None,
    }
}

/// Run Fig. 12 (A) or Fig. 13 (B).
pub fn run(mode: ControlMode, scale: Scale) -> ScenarioOutcome {
    crate::runner::run(&spec(mode, scale))
}

/// When (post-scale) did the last medium instance finish its openssl run?
pub fn medium_finish_time(outcome: &ScenarioOutcome) -> Option<Micros> {
    outcome
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.event,
                vfc_vmm::workload::WorkloadEvent::Finished {
                    benchmark: "openssl"
                }
            )
        })
        .map(|e| e.at)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_is_within_eq7() {
        let (s, m, l) = COUNTS;
        let demand = s as u64 * 1000 + m as u64 * 4800 + l as u64 * 7200;
        assert_eq!(demand, 95_600);
        assert!(demand <= NodeSpec::chetemi().freq_capacity_mhz());
    }

    #[test]
    fn fig13_three_plateaus_and_release_quick() {
        let scale = Scale::quick();
        let out = run(ControlMode::Full, scale);
        // All three classes contending: after the larges' ramp (they
        // start at 20 s post-scale; the guarantee-first ramp reaches
        // 1800 MHz within a few periods) and before the mediums finish
        // their openssl run (≈34 s at quick scale).
        let from = Micros::from_secs(25);
        let to = Micros::from_secs(32);
        let small = out.mean_freq_between("small", from, to);
        let medium = out.mean_freq_between("medium", from, to);
        let large = out.mean_freq_between("large", from, to);
        assert!(
            small < medium && medium < large,
            "plateau ordering violated: {small} / {medium} / {large}"
        );
        assert!((350.0..750.0).contains(&small), "small plateau {small}");
        assert!(
            (1000.0..1500.0).contains(&medium),
            "medium plateau {medium}"
        );
        assert!((1500.0..2100.0).contains(&large), "large plateau {large}");

        // After the mediums finish, smalls and larges must rise.
        let finish = medium_finish_time(&out).expect("openssl should finish");
        let end = scale.time(DURATION);
        if finish + Micros::from_secs(5) < end {
            let small_after = out.mean_freq_between("small", finish + Micros::from_secs(2), end);
            assert!(
                small_after > small + 50.0,
                "small should rise after medium release: {small} → {small_after}"
            );
        }
    }

    #[test]
    fn cache_contention_dips_large_throughput_like_fig14() {
        // The paper attributes Fig. 14's small large-instance throughput
        // decrease (vs the first evaluation) to cache effects; with the
        // LLC model enabled the same dip appears in the reproduction.
        use vfc_cpusched::engine::CacheModel;
        let mut with = spec(ControlMode::Full, Scale::quick());
        with.duration = Micros(400_000_000);
        let without = crate::runner::run(&with);
        // 14 small VMs co-run during the first iteration; the floor keeps
        // the dip visible but small, per the paper's observation.
        with.cache_model = Some(CacheModel {
            penalty_per_corunner: 0.008,
            floor: 0.8,
        });
        let with = crate::runner::run(&with);

        // Compare the first completed small compress iteration's rate.
        let rate = |out: &crate::runner::ScenarioOutcome| {
            out.iterations_reported("small", "compress")
                .first()
                .and_then(|i| out.mean_rate("small", "compress", *i))
                .expect("at least one iteration completes")
        };
        let r_without = rate(&without);
        let r_with = rate(&with);
        assert!(
            r_with < r_without,
            "cache contention should dip throughput: {r_with} vs {r_without}"
        );
        // …but only slightly (the paper: "this decrease is really small").
        assert!(
            r_with > 0.75 * r_without,
            "dip too large: {r_with} vs {r_without}"
        );
    }

    #[test]
    fn fig12_scenario_a_ordering_quick() {
        let out = run(ControlMode::MonitorOnly, Scale::quick());
        let from = Micros::from_secs(25);
        let to = Micros::from_secs(32);
        let small = out.mean_freq_between("small", from, to);
        let medium = out.mean_freq_between("medium", from, to);
        let large = out.mean_freq_between("large", from, to);
        // Paper: smalls fastest; medium ≈ large (same vCPU count).
        assert!(
            small > medium && small > large,
            "{small} / {medium} / {large}"
        );
        let ratio = medium / large;
        assert!(
            (0.8..1.25).contains(&ratio),
            "medium and large should be ≈equal in A: {medium} vs {large}"
        );
    }
}
