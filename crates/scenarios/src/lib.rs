#![warn(missing_docs)]

//! The paper's evaluation (§IV), encoded as runnable scenarios.
//!
//! Every table and figure of the evaluation section maps to a function
//! here; the `experiments` binary (in `src/bin/experiments.rs`) runs them
//! and emits CSV + ASCII charts + paper-vs-measured records.
//!
//! | paper artifact | module |
//! |---|---|
//! | Tables II/III, Figs. 6–11 | [`eval1`] |
//! | Table V, Figs. 12–14 | [`eval2`] |
//! | Figs. 3–5 (estimator behaviour) | [`estimator_figs`] |
//! | §IV.C placement study | [`placement_eval`] |
//! | §IV.A.2 CFS side experiments | [`cfs_sides`] |
//! | §IV.A.2 controller overhead | [`overhead`] |
//! | §IV.A.2 core-frequency variance | part of [`runner`] outcomes |

pub mod ablation;
pub mod baseline_eval;
pub mod cfs_sides;
pub mod churn;
pub mod cluster_eval;
pub mod estimator_figs;
pub mod eval1;
pub mod eval2;
pub mod factor_sweep;
pub mod overhead;
pub mod overload_eval;
pub mod placement_eval;
pub mod pricing_eval;
pub mod recovery_eval;
pub mod runner;
pub mod trace_eval;

pub use runner::{Scale, ScenarioOutcome, ScenarioSpec, VmGroup, WorkloadKind};
