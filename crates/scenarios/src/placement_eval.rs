//! §IV.C — the placement study.
//!
//! Best-Fit over 12 *chetemi* + 10 *chiclet* with 250 small + 50 medium +
//! 100 large VMs, under three rules:
//!
//! * classic core-count (factor 1.0) — the baseline, which needs
//!   essentially the whole cluster (1100 vCPUs on 1120 threads);
//! * the paper's frequency constraint (Eq. 7) — 15 of 22 nodes;
//! * core-count with the 1.8 consolidation factor the paper computes as
//!   the equivalent — same node count but different, riskier packing
//!   (28 large on a chiclet vs 21; 36 small on a chetemi vs 48).

use serde::{Deserialize, Serialize};
use vfc_placement::algo::{PlacementAlgorithm, PlacementResult, Placer};
use vfc_placement::cluster::{paper_workload, ArrivalOrder, Cluster};
use vfc_placement::constraint::ConstraintMode;
use vfc_placement::energy::{energy_of, EnergyReport};

/// One constraint's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModeOutcome {
    /// Constraint label.
    pub label: String,
    /// Nodes hosting at least one VM.
    pub nodes_used: usize,
    /// Requests that fit nowhere.
    pub unplaced: usize,
    /// Most large VMs packed on one chiclet.
    pub max_large_per_chiclet: usize,
    /// Most small VMs packed on one chetemi.
    pub max_small_per_chetemi: usize,
    /// Cluster power/energy summary.
    pub energy: EnergyReport,
}

fn summarize(label: &str, result: &PlacementResult) -> ModeOutcome {
    let max_on = |template: &str, family: &str| {
        result
            .nodes
            .iter()
            .filter(|n| n.spec.name == family)
            .map(|n| n.count_of(template))
            .max()
            .unwrap_or(0)
    };
    ModeOutcome {
        label: label.to_owned(),
        nodes_used: result.nodes_used(),
        unplaced: result.unplaced,
        max_large_per_chiclet: max_on("large", "chiclet"),
        max_small_per_chetemi: max_on("small", "chetemi"),
        energy: energy_of(result),
    }
}

/// The full study for one arrival order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementStudy {
    /// Arrival order used.
    pub order: String,
    /// Classic core-count constraint (factor 1.0).
    pub classic: ModeOutcome,
    /// The paper's Eq. 7.
    pub frequency: ModeOutcome,
    /// Core-count with the paper's equivalent ×1.8 factor.
    pub factor18: ModeOutcome,
}

/// Run the §IV.C study.
pub fn study(order: ArrivalOrder) -> PlacementStudy {
    let cluster = Cluster::paper_cluster();
    let workload = paper_workload(order);
    let run = |mode: ConstraintMode| {
        Placer::new(PlacementAlgorithm::BestFit, mode).place(&cluster.nodes, &workload)
    };
    PlacementStudy {
        order: format!("{order:?}"),
        classic: summarize("core-count", &run(ConstraintMode::core_count())),
        frequency: summarize("frequency (Eq. 7)", &run(ConstraintMode::Frequency)),
        factor18: summarize(
            "core-count ×1.8",
            &run(ConstraintMode::CoreCount { factor: 1.8 }),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_places_under_every_mode() {
        for order in [
            ArrivalOrder::Grouped,
            ArrivalOrder::RoundRobin,
            ArrivalOrder::Shuffled(42),
        ] {
            let s = study(order);
            assert_eq!(s.classic.unplaced, 0, "{order:?} classic");
            assert_eq!(s.frequency.unplaced, 0, "{order:?} frequency");
            assert_eq!(s.factor18.unplaced, 0, "{order:?} factor18");
        }
    }

    #[test]
    fn frequency_constraint_frees_nodes() {
        // The paper's headline: 15/22 with Eq. 7 vs (essentially) the
        // whole cluster classically. Exact counts depend on arrival
        // order, so assert the shape: a saving of several nodes.
        let s = study(ArrivalOrder::RoundRobin);
        assert!(
            s.classic.nodes_used >= 20,
            "classic should need ~all 22 nodes, used {}",
            s.classic.nodes_used
        );
        assert!(
            s.frequency.nodes_used <= 16,
            "Eq. 7 should free ~7 nodes, used {}",
            s.frequency.nodes_used
        );
        assert!(
            s.frequency.energy.power_used_only_w < s.classic.energy.power_used_only_w,
            "fewer nodes ⇒ less power"
        );
    }

    #[test]
    fn eq7_bounds_larges_per_chiclet_at_21() {
        // chiclet: 153 600 MHz / 7 200 MHz per large = 21.33 → at most 21
        // under Eq. 7 (the paper's number), while the 1.8 factor allows
        // 64 × 1.8 / 4 = 28.8 → 28.
        let s = study(ArrivalOrder::Grouped);
        assert!(
            s.frequency.max_large_per_chiclet <= 21,
            "Eq. 7 allows at most 21 larges per chiclet, got {}",
            s.frequency.max_large_per_chiclet
        );
        assert!(
            s.factor18.max_large_per_chiclet <= 28,
            "factor 1.8 allows at most 28, got {}",
            s.factor18.max_large_per_chiclet
        );
    }

    #[test]
    fn factor18_bounds_smalls_per_chetemi_at_36() {
        // chetemi: 40 × 1.8 / 2 vCPUs = 36 smalls max with the factor;
        // Eq. 7 would allow up to 96 (paper observed 48 in its mix).
        let s = study(ArrivalOrder::Grouped);
        assert!(s.factor18.max_small_per_chetemi <= 36);
    }

    #[test]
    fn study_is_deterministic() {
        let a = study(ArrivalOrder::Shuffled(7));
        let b = study(ArrivalOrder::Shuffled(7));
        assert_eq!(a.frequency.nodes_used, b.frequency.nodes_used);
        assert_eq!(a.classic.nodes_used, b.classic.nodes_used);
    }
}
