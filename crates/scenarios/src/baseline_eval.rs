//! Head-to-head comparison of the paper's controller against the §II
//! baselines (Burst VMs, VMDFS-style prediction), on identical hosts.
//!
//! Two experiments, matching the paper's two criticisms:
//!
//! 1. **Differentiation under contention** — a 500 MHz VM and an
//!    1800 MHz VM saturate a single hardware thread (2300 of 2400 MHz
//!    asked). Only the virtual frequency controller delivers the premium
//!    VM its 1800 MHz; both baselines collapse to CFS's equal split.
//! 2. **Idle-node waste** — a CPU-hungry VM whose burst credits are
//!    exhausted sits *alone* on a node. The Burst VM model pins it at the
//!    10 % baseline even though every cycle it can't use is wasted; the
//!    controller sells it the idle node.

use serde::{Deserialize, Serialize};
use vfc_baselines::{
    BurstVmConfig, BurstVmPolicy, CfsSharesPolicy, HostPolicy, SharesConfig, VfcPolicy,
    VmdfsConfig, VmdfsPolicy,
};
use vfc_controller::ControllerConfig;
use vfc_cpusched::dvfs::{Governor, GovernorKind};
use vfc_cpusched::engine::Engine;
use vfc_cpusched::topology::NodeSpec;
use vfc_simcore::{MHz, Micros, VcpuId};
use vfc_vmm::workload::{SteadyDemand, TraceWorkload};
use vfc_vmm::{SimHost, VmTemplate};

/// Which policy to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The paper's six-stage controller.
    Vfc,
    /// Public-cloud Burst VM credit model.
    BurstVm,
    /// VMDFS-style predictive capping.
    Vmdfs,
    /// Static CFS weights proportional to purchased capacity.
    CfsShares,
}

impl PolicyKind {
    /// Every policy, in presentation order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Vfc,
        PolicyKind::BurstVm,
        PolicyKind::Vmdfs,
        PolicyKind::CfsShares,
    ];

    /// Short label for tables and CSV.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Vfc => "vfc",
            PolicyKind::BurstVm => "burst-vm",
            PolicyKind::Vmdfs => "vmdfs",
            PolicyKind::CfsShares => "cfs-shares",
        }
    }

    fn instantiate(&self, host: &SimHost) -> Box<dyn HostPolicy> {
        match self {
            PolicyKind::Vfc => Box::new(VfcPolicy::new(
                ControllerConfig::paper_defaults(),
                host.topology_info(),
            )),
            PolicyKind::BurstVm => Box::new(BurstVmPolicy::new(BurstVmConfig {
                // Small launch grant so exhaustion is reachable in-run.
                launch_credit: 3_000_000,
                ..BurstVmConfig::default()
            })),
            PolicyKind::Vmdfs => Box::new(VmdfsPolicy::new(VmdfsConfig::default())),
            PolicyKind::CfsShares => Box::new(CfsSharesPolicy::new(SharesConfig::default())),
        }
    }
}

fn quiet_host(threads: u32, seed: u64) -> SimHost {
    let spec = NodeSpec::custom("cmp", 1, threads, 1, MHz(2400));
    let gov = Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, seed)
        .with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, seed);
    SimHost::new(spec, seed).with_engine(engine)
}

/// Per-policy outcome of the three experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Experiment 1: mean frequency of the 1800 MHz VM under contention.
    pub premium_mhz: f64,
    /// Experiment 1: mean frequency of the 500 MHz VM under contention.
    pub cheap_mhz: f64,
    /// Experiment 2: mean frequency of a credit-exhausted hungry VM alone
    /// on an idle node (steady state).
    pub idle_node_mhz: f64,
    /// Experiment 3: frequency a long-frugal VM reaches right after it
    /// bursts into a node shared with two always-saturating equals —
    /// whether history buys priority (the controller's credits) or not.
    pub frugal_burst_mhz: f64,
}

/// Full comparison result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineComparison {
    /// One row per policy, in [`PolicyKind::ALL`] order.
    pub rows: Vec<(PolicyKind, PolicyOutcome)>,
}

impl BaselineComparison {
    /// Outcome of one policy (panics if absent — all runs include all policies).
    pub fn outcome(&self, kind: PolicyKind) -> PolicyOutcome {
        self.rows
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, o)| *o)
            .expect("all policies present")
    }
}

fn mean_freq_tail(host: &SimHost, vm: vfc_simcore::VmId) -> f64 {
    // Ground truth over the last completed window.
    host.vcpu_freq_exact(vm, VcpuId::new(0)).as_f64()
}

/// Run both experiments for one policy.
fn run_policy(kind: PolicyKind) -> PolicyOutcome {
    // --- Experiment 1: contention -------------------------------------
    let mut host = quiet_host(1, 5);
    let cheap = host.provision(&VmTemplate::new("cheap", 1, MHz(500)));
    let premium = host.provision(&VmTemplate::new("premium", 1, MHz(1800)));
    host.attach_workload(cheap, Box::new(SteadyDemand::full()));
    host.attach_workload(premium, Box::new(SteadyDemand::full()));
    let mut policy = kind.instantiate(&host);
    for _ in 0..30 {
        host.advance_period();
        policy.iterate(&mut host).expect("sim backend");
    }
    let premium_mhz = mean_freq_tail(&host, premium);
    let cheap_mhz = mean_freq_tail(&host, cheap);

    // --- Experiment 2: idle-node waste ---------------------------------
    let mut host = quiet_host(2, 7);
    // Declared like a burstable tier: a low 240 MHz (10 %) base; the VM
    // is CPU-hungry enough to exhaust any credit grant.
    let hungry = host.provision(&VmTemplate::new("hungry", 1, MHz(240)));
    host.attach_workload(hungry, Box::new(SteadyDemand::full()));
    let mut policy = kind.instantiate(&host);
    for _ in 0..40 {
        host.advance_period();
        policy.iterate(&mut host).expect("sim backend");
    }
    let idle_node_mhz = mean_freq_tail(&host, hungry);

    // --- Experiment 3: does frugality buy burst priority? ----------------
    let mut host = quiet_host(2, 9);
    let hog1 = host.provision(&VmTemplate::new("hog1", 1, MHz(1200)));
    let hog2 = host.provision(&VmTemplate::new("hog2", 1, MHz(1200)));
    let frugal = host.provision(&VmTemplate::new("frugal", 1, MHz(1200)));
    host.attach_workload(hog1, Box::new(SteadyDemand::full()));
    host.attach_workload(hog2, Box::new(SteadyDemand::full()));
    // Frugal idles 20 s (engine ticks are 100 ms), then saturates.
    host.attach_workload(
        frugal,
        Box::new(TraceWorkload::new(
            std::iter::repeat_n(0.0, 200)
                .chain(std::iter::repeat_n(1.0, 1))
                .collect(),
        )),
    );
    let mut policy = kind.instantiate(&host);
    for _ in 0..20 {
        host.advance_period();
        policy.iterate(&mut host).expect("sim backend");
    }
    // First 4 burst periods; take the best window the policy achieved.
    let mut frugal_burst_mhz = 0.0f64;
    for _ in 0..4 {
        host.advance_period();
        policy.iterate(&mut host).expect("sim backend");
        frugal_burst_mhz = frugal_burst_mhz.max(mean_freq_tail(&host, frugal));
    }

    PolicyOutcome {
        premium_mhz,
        cheap_mhz,
        idle_node_mhz,
        frugal_burst_mhz,
    }
}

/// Run the full comparison (all three policies, both experiments).
pub fn compare() -> BaselineComparison {
    BaselineComparison {
        rows: PolicyKind::ALL
            .iter()
            .map(|&k| (k, run_policy(k)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vfc_differentiates_where_baselines_cannot() {
        let cmp = compare();
        let vfc = cmp.outcome(PolicyKind::Vfc);
        let burst = cmp.outcome(PolicyKind::BurstVm);
        let vmdfs = cmp.outcome(PolicyKind::Vmdfs);

        // Experiment 1: only vfc honours the premium frequency.
        assert!(vfc.premium_mhz > 1700.0, "vfc premium {}", vfc.premium_mhz);
        assert!(
            vfc.cheap_mhz < 700.0,
            "vfc cheap stays near its 500 MHz base: {}",
            vfc.cheap_mhz
        );
        for (name, o) in [("burst", burst), ("vmdfs", vmdfs)] {
            assert!(
                o.premium_mhz < 1500.0,
                "{name} should fail the 1800 MHz promise, gave {}",
                o.premium_mhz
            );
            let ratio = o.premium_mhz / o.cheap_mhz.max(1.0);
            assert!(
                ratio < 1.3,
                "{name} collapses to equal split, ratio {ratio}"
            );
        }
    }

    #[test]
    fn burst_vm_wastes_the_idle_node_vfc_does_not() {
        let cmp = compare();
        let vfc = cmp.outcome(PolicyKind::Vfc);
        let burst = cmp.outcome(PolicyKind::BurstVm);
        // Limitation 3 of §II: exhausted credits cap the VM even though
        // the node is idle.
        assert!(
            burst.idle_node_mhz < 400.0,
            "burst VM should crawl at its baseline: {}",
            burst.idle_node_mhz
        );
        assert!(
            vfc.idle_node_mhz > 2200.0,
            "vfc should sell the idle node: {}",
            vfc.idle_node_mhz
        );
    }

    #[test]
    fn shares_deliver_ratios_but_not_credit_priority() {
        let cmp = compare();
        let shares = cmp.outcome(PolicyKind::CfsShares);
        let vfc = cmp.outcome(PolicyKind::Vfc);
        // Honest result: under uniform saturation, proportional weights
        // DO deliver the differentiated frequencies…
        assert!(
            shares.premium_mhz > 1600.0,
            "shares deliver ratios under saturation: {}",
            shares.premium_mhz
        );
        // …but a frugal VM earns no burst priority (weights have no
        // memory), while the controller's credits buy it the market.
        assert!(
            vfc.frugal_burst_mhz > shares.frugal_burst_mhz + 400.0,
            "credits should out-prioritize static weights: vfc {} vs shares {}",
            vfc.frugal_burst_mhz,
            shares.frugal_burst_mhz
        );
    }

    #[test]
    fn vmdfs_does_not_waste_the_idle_node() {
        // Fairness toward the baseline: VMDFS's criticism is missing
        // differentiation, not waste — its prediction follows the load up.
        let cmp = compare();
        let vmdfs = cmp.outcome(PolicyKind::Vmdfs);
        assert!(
            vmdfs.idle_node_mhz > 1800.0,
            "vmdfs tracks demand upward: {}",
            vmdfs.idle_node_mhz
        );
    }
}
