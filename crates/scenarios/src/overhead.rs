//! §IV.A.2 — controller overhead.
//!
//! The paper measures ≈5 ms per iteration (≈4 ms of it monitoring) on
//! *chetemi* during execution B, i.e. with 80 vCPUs hosted (20 small ×2 +
//! 10 large ×4). We reproduce the measurement methodology: run the full
//! loop against a loaded host, discard the warmup iterations (cold
//! caches and first-touch allocations are boot cost, not steady-state
//! overhead), and report the per-stage latency distribution —
//! p50/p95/p99/max from [`vfc_telemetry`] histograms, not just means.
//! Absolute numbers differ (our backend is in-memory; theirs crossed the
//! kernel for every cgroup file), but the *distribution* — monitoring
//! dominating the loop — is the claim to check.
//!
//! The run also times the telemetry exposition itself (rendering the
//! controller's full Prometheus page once per iteration, as `vfcd
//! --metrics` does), so the report can answer "what does observing the
//! controller cost" — the acceptance bar is < 5 % of the control period
//! in release builds.

use std::time::{Duration, Instant};
use vfc_controller::controller::IterationReport;
use vfc_controller::{ControlMode, Controller, ControllerConfig, ShardCount, StageTimings};
use vfc_cpusched::topology::NodeSpec;
use vfc_simcore::MHz;
use vfc_telemetry::hist::LATENCY_BUCKETS_US;
use vfc_telemetry::{HistSnapshot, Histogram, STAGE_NAMES};
use vfc_vmm::workload::SteadyDemand;
use vfc_vmm::{SimHost, VmTemplate};

/// Default warmup iterations discarded before measurement.
pub const DEFAULT_WARMUP: u32 = 3;

/// Per-stage latency distributions over an overhead run (post-warmup).
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// vCPUs hosted during the measurement.
    pub vcpus: u32,
    /// Shard count the controller ran with (1 = the unsharded loop).
    pub shards: u32,
    /// Iterations measured (warmup excluded).
    pub iterations: u32,
    /// Warmup iterations discarded before measurement began.
    pub warmup: u32,
    /// Mean per-stage wall time (kept for the §IV.A.2 comparison; the
    /// paper reports means only).
    pub mean: StageTimings,
    /// Latency distribution per stage, in [`STAGE_NAMES`] order.
    pub stages: Vec<(&'static str, HistSnapshot)>,
    /// Whole-iteration latency distribution.
    pub iteration: HistSnapshot,
    /// Cost of rendering the controller's full Prometheus page once —
    /// what `vfcd --metrics` adds to every period.
    pub render: HistSnapshot,
}

impl OverheadReport {
    /// Monitoring share of the total loop time, in [0, 1].
    pub fn monitor_share(&self) -> f64 {
        let total = self.mean.total.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.mean.monitor.as_secs_f64() / total
        }
    }

    /// Telemetry overhead as a share of the control period: the mean
    /// exposition render cost divided by `period`. The in-loop observes
    /// are already inside the stage timings (they are integer adds; the
    /// render is the only per-period cost worth budgeting).
    pub fn render_share(&self, period: Duration) -> f64 {
        let p = period.as_secs_f64();
        if p == 0.0 {
            0.0
        } else {
            self.render.mean_us() as f64 / 1e6 / p
        }
    }
}

/// Run the overhead measurement with the paper's chetemi VM mix scaled to
/// roughly `target_vcpus` vCPUs, discarding [`DEFAULT_WARMUP`] warmup
/// iterations.
pub fn measure(target_vcpus: u32, iterations: u32) -> OverheadReport {
    measure_with_warmup(target_vcpus, DEFAULT_WARMUP, iterations)
}

/// [`measure`] with an explicit warmup count. `warmup` iterations run
/// first and are excluded from every reported distribution.
pub fn measure_with_warmup(target_vcpus: u32, warmup: u32, iterations: u32) -> OverheadReport {
    measure_inner(target_vcpus, 1, warmup, iterations)
}

/// [`measure`] at an explicit shard count, through the daemon's
/// parallel entry point ([`Controller::iterate_into_parallel`]). With
/// `shards == 1` the fan-out degenerates to the sequential loop, so the
/// 1-shard rows of the sweep are the unsharded baseline. Targets past
/// the chetemi node (> 160 vCPUs) run on a scaled 2:1-oversubscribed
/// host, matching `vfc_bench::dense_host`.
pub fn measure_sharded(target_vcpus: u32, shards: u32, iterations: u32) -> OverheadReport {
    measure_inner(target_vcpus, shards, DEFAULT_WARMUP, iterations)
}

fn measure_inner(target_vcpus: u32, shards: u32, warmup: u32, iterations: u32) -> OverheadReport {
    let spec = if target_vcpus <= 160 {
        NodeSpec::chetemi()
    } else {
        // Dense-host future (ROADMAP open item 1): vcpus/2 hardware
        // threads, same 2:1 virtual oversubscription as chetemi-B.
        NodeSpec::custom("dense", 1, (target_vcpus / 4).max(1), 2, MHz(2400))
    };
    let mut host = SimHost::new(spec, 99);
    // 2-vCPU VMs until the target is reached (mix shape does not matter
    // for the loop cost; the vCPU count does).
    let mut vcpus = 0u32;
    while vcpus < target_vcpus {
        let vm = host.provision(&VmTemplate::new("load", 2, MHz(500)));
        host.attach_workload(vm, Box::new(SteadyDemand::full()));
        vcpus += 2;
    }

    let mut cfg = ControllerConfig::paper_defaults().with_mode(ControlMode::Full);
    cfg.shard_count = ShardCount::Fixed(shards.max(1));
    let mut controller = Controller::new(cfg, host.topology_info());

    // One reused report through the daemon's parallel entry point: what
    // a sharded production deployment actually pays per period. With one
    // shard (or one core) the fan-out degenerates to the sequential loop.
    let mut report = IterationReport::default();
    for _ in 0..warmup {
        host.advance_period();
        controller
            .iterate_into_parallel(&mut host, &mut report)
            .expect("sim backend");
    }

    // Measurement histograms are local so warmup never pollutes them
    // (the controller's own registry has been counting since boot).
    let mut stage_hists: Vec<Histogram> = (0..STAGE_NAMES.len())
        .map(|_| Histogram::new(&LATENCY_BUCKETS_US))
        .collect();
    let mut iter_hist = Histogram::new(&LATENCY_BUCKETS_US);
    let mut render_hist = Histogram::new(&LATENCY_BUCKETS_US);
    let mut acc = StageTimings::default();
    for _ in 0..iterations {
        host.advance_period();
        controller
            .iterate_into_parallel(&mut host, &mut report)
            .expect("sim backend");
        let t = &report.timings;
        for (hist, stage) in stage_hists.iter_mut().zip([
            t.monitor,
            t.estimate,
            t.enforce,
            t.auction,
            t.distribute,
            t.apply,
        ]) {
            hist.observe(stage);
        }
        iter_hist.observe(t.total);
        acc.monitor += t.monitor;
        acc.estimate += t.estimate;
        acc.enforce += t.enforce;
        acc.auction += t.auction;
        acc.distribute += t.distribute;
        acc.apply += t.apply;
        acc.total += t.total;
        // The exposition cost, measured exactly as vfcd pays it.
        let r = Instant::now();
        let page = controller.telemetry().render_prometheus();
        render_hist.observe(r.elapsed());
        debug_assert!(page.contains("vfc_iterations_total"));
    }
    let n = iterations.max(1);
    OverheadReport {
        vcpus,
        shards: shards.max(1),
        iterations,
        warmup,
        mean: StageTimings {
            monitor: acc.monitor / n,
            estimate: acc.estimate / n,
            enforce: acc.enforce / n,
            auction: acc.auction / n,
            distribute: acc.distribute / n,
            apply: acc.apply / n,
            total: acc.total / n,
        },
        stages: STAGE_NAMES
            .iter()
            .zip(&stage_hists)
            .map(|(name, h)| (*name, h.snapshot()))
            .collect(),
        iteration: iter_hist.snapshot(),
        render: render_hist.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_cost_is_far_below_the_period() {
        // The controller must leave essentially the whole period for
        // sleeping: the paper reports 5 ms of a 1 s period; allow a very
        // generous 100 ms bound for debug builds.
        let r = measure(80, 5);
        assert_eq!(r.vcpus, 80);
        assert_eq!(r.warmup, DEFAULT_WARMUP);
        assert!(
            r.mean.total < Duration::from_millis(100),
            "iteration cost {:?} is not negligible",
            r.mean.total
        );
    }

    #[test]
    fn stage_times_sum_to_at_most_total() {
        let r = measure(40, 5);
        let parts = r.mean.monitor
            + r.mean.estimate
            + r.mean.enforce
            + r.mean.auction
            + r.mean.distribute
            + r.mean.apply;
        assert!(parts <= r.mean.total + Duration::from_micros(500));
        assert!(r.monitor_share() >= 0.0 && r.monitor_share() <= 1.0);
    }

    #[test]
    fn distributions_cover_exactly_the_measured_iterations() {
        let r = measure_with_warmup(20, 2, 7);
        assert_eq!(r.iterations, 7);
        assert_eq!(r.iteration.count, 7);
        assert_eq!(r.stages.len(), 6);
        for (name, snap) in &r.stages {
            assert_eq!(snap.count, 7, "stage {name}");
            assert!(snap.p50_us <= snap.p95_us && snap.p95_us <= snap.p99_us);
            assert!(snap.max_us >= snap.p50_us.min(snap.max_us));
        }
        assert_eq!(r.render.count, 7);
        // Quantiles are conservative: p50 never exceeds the observed max.
        assert!(r.iteration.p50_us >= r.iteration.sum_us / 7 / 10);
    }

    /// Release-only acceptance bar: the telemetry exposition must cost
    /// less than 5 % of the paper's 1 s control period. Debug builds are
    /// 10–50× slower and would make this assertion meaningless.
    #[cfg(not(debug_assertions))]
    #[test]
    fn telemetry_render_is_under_five_percent_of_the_period() {
        let r = measure(80, 10);
        let share = r.render_share(Duration::from_secs(1));
        assert!(
            share < 0.05,
            "exposition costs {:.2} % of the period (mean {} µs)",
            share * 100.0,
            r.render.mean_us()
        );
    }
}
