//! §IV.A.2 — controller overhead.
//!
//! The paper measures ≈5 ms per iteration (≈4 ms of it monitoring) on
//! *chetemi* during execution B, i.e. with 80 vCPUs hosted (20 small ×2 +
//! 10 large ×4). We reproduce the measurement methodology: run the full
//! loop against a loaded host and report mean per-stage wall time.
//! Absolute numbers differ (our backend is in-memory; theirs crossed the
//! kernel for every cgroup file), but the *distribution* — monitoring
//! dominating the loop — is the claim to check.

use vfc_controller::{ControlMode, Controller, ControllerConfig, StageTimings};
use vfc_cpusched::topology::NodeSpec;
use vfc_simcore::MHz;
use vfc_vmm::workload::SteadyDemand;
use vfc_vmm::{SimHost, VmTemplate};

/// Mean per-stage timings over an overhead run.
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// vCPUs hosted during the measurement.
    pub vcpus: u32,
    /// Iterations averaged over.
    pub iterations: u32,
    /// Mean per-stage wall time.
    pub mean: StageTimings,
}

impl OverheadReport {
    /// Monitoring share of the total loop time, in [0, 1].
    pub fn monitor_share(&self) -> f64 {
        let total = self.mean.total.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.mean.monitor.as_secs_f64() / total
        }
    }
}

/// Run the overhead measurement with the paper's chetemi VM mix scaled to
/// roughly `target_vcpus` vCPUs.
pub fn measure(target_vcpus: u32, iterations: u32) -> OverheadReport {
    let spec = NodeSpec::chetemi();
    let mut host = SimHost::new(spec, 99);
    // 2-vCPU VMs until the target is reached (mix shape does not matter
    // for the loop cost; the vCPU count does).
    let mut vcpus = 0u32;
    while vcpus < target_vcpus {
        let vm = host.provision(&VmTemplate::new("load", 2, MHz(500)));
        host.attach_workload(vm, Box::new(SteadyDemand::full()));
        vcpus += 2;
    }

    let mut controller = Controller::new(
        ControllerConfig::paper_defaults().with_mode(ControlMode::Full),
        host.topology_info(),
    );

    let mut acc = StageTimings::default();
    for _ in 0..iterations {
        host.advance_period();
        let report = controller.iterate(&mut host).expect("sim backend");
        acc.monitor += report.timings.monitor;
        acc.estimate += report.timings.estimate;
        acc.enforce += report.timings.enforce;
        acc.auction += report.timings.auction;
        acc.distribute += report.timings.distribute;
        acc.apply += report.timings.apply;
        acc.total += report.timings.total;
    }
    let n = iterations.max(1);
    OverheadReport {
        vcpus,
        iterations,
        mean: StageTimings {
            monitor: acc.monitor / n,
            estimate: acc.estimate / n,
            enforce: acc.enforce / n,
            auction: acc.auction / n,
            distribute: acc.distribute / n,
            apply: acc.apply / n,
            total: acc.total / n,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn loop_cost_is_far_below_the_period() {
        // The controller must leave essentially the whole period for
        // sleeping: the paper reports 5 ms of a 1 s period; allow a very
        // generous 100 ms bound for debug builds.
        let r = measure(80, 5);
        assert_eq!(r.vcpus, 80);
        assert!(
            r.mean.total < Duration::from_millis(100),
            "iteration cost {:?} is not negligible",
            r.mean.total
        );
    }

    #[test]
    fn stage_times_sum_to_at_most_total() {
        let r = measure(40, 5);
        let parts = r.mean.monitor
            + r.mean.estimate
            + r.mean.enforce
            + r.mean.auction
            + r.mean.distribute
            + r.mean.apply;
        assert!(parts <= r.mean.total + Duration::from_micros(500));
        assert!(r.monitor_share() >= 0.0 && r.monitor_share() <= 1.0);
    }
}
