//! Cluster-scale comparison: frequency-controlled consolidation vs the
//! migration-based overcommitment of the state of the art (§II / §IV.C's
//! closing argument: *"this would reduce the performances of the VM
//! instances (or trigger migrations, and thus use more nodes in the
//! end)"*).
//!
//! Both strategies receive the same VM stream on the same 22-node paper
//! cluster and run for the same wall time; we compare nodes used, energy,
//! migrations and SLO violations.

use serde::{Deserialize, Serialize};
use vfc_cluster::{ClusterManager, ClusterReport, Strategy};
use vfc_cpusched::topology::NodeSpec;
use vfc_placement::cluster::Cluster;
use vfc_simcore::{Micros, SplitMix64};
use vfc_vmm::workload::{BurstyWeb, SteadyDemand, Workload};
use vfc_vmm::VmTemplate;

/// Workload mix parameters (defaults follow §IV.C's VM counts, with
/// demand profiles assigned per class: small = bursty web, medium =
/// steady 80 %, large = saturating).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterScenario {
    /// Small (bursty web) instances.
    pub smalls: u32,
    /// Medium (steady 80 %) instances.
    pub mediums: u32,
    /// Large (saturating) instances.
    pub larges: u32,
    /// Cluster periods to run.
    pub periods: u32,
    /// Deterministic seed for workload phases and node streams.
    pub seed: u64,
}

impl Default for ClusterScenario {
    fn default() -> Self {
        ClusterScenario {
            smalls: 250,
            mediums: 50,
            larges: 100,
            periods: 120,
            seed: 0xC1u64,
        }
    }
}

impl ClusterScenario {
    /// A shrunk variant for debug-mode tests. Sized so the ×1.8 baseline
    /// has headroom to migrate into (≈60 % of its vCPU capacity asked):
    /// 24 + 16 + 24 = 64 vCPUs on 6 × 8-thread nodes (84 vCPU cap).
    pub fn quick() -> Self {
        ClusterScenario {
            smalls: 12,
            mediums: 4,
            larges: 6,
            periods: 40,
            seed: 0xC1u64,
        }
    }
}

fn workload_for(class: &str, rng: &mut SplitMix64) -> Box<dyn Workload> {
    match class {
        "small" => Box::new(BurstyWeb::with_shape(
            rng.next_u64(),
            0.05,
            1.0,
            Micros::from_secs(60),
            Micros::from_secs(8),
        )),
        "medium" => Box::new(SteadyDemand::new(0.8)),
        _ => Box::new(SteadyDemand::full()),
    }
}

/// Run one strategy over the scenario, returning the manager for further
/// inspection (history, per-VM queries).
pub fn run_strategy_manager(
    scenario: ClusterScenario,
    nodes: Vec<NodeSpec>,
    strategy: Strategy,
) -> ClusterManager {
    let mut manager = ClusterManager::new(nodes, strategy, scenario.seed);
    let mut rng = SplitMix64::new(scenario.seed ^ 0xFEED);
    let mut deploy = |template: &VmTemplate, count: u32, manager: &mut ClusterManager| {
        for _ in 0..count {
            let w = workload_for(&template.name, &mut rng);
            let _ = manager.deploy(template, w); // rejections counted inside
        }
    };
    deploy(&VmTemplate::small(), scenario.smalls, &mut manager);
    deploy(&VmTemplate::medium(), scenario.mediums, &mut manager);
    deploy(&VmTemplate::large(), scenario.larges, &mut manager);

    for _ in 0..scenario.periods {
        manager.run_period();
    }
    manager
}

/// Run one strategy over the scenario.
pub fn run_strategy(
    scenario: ClusterScenario,
    nodes: Vec<NodeSpec>,
    strategy: Strategy,
) -> ClusterReport {
    run_strategy_manager(scenario, nodes, strategy).report()
}

/// All three strategies on the paper cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterComparison {
    /// Eq. 7 admission + paper controller.
    pub frequency: ClusterReport,
    /// Frequency control + the throttle-aware estimation extension.
    pub frequency_ta: ClusterReport,
    /// Core-count ×1.8 admission + live migration.
    pub migration: ClusterReport,
}

/// Run all three strategies on the paper cluster.
pub fn compare(scenario: ClusterScenario) -> ClusterComparison {
    let cluster = Cluster::paper_cluster();
    ClusterComparison {
        frequency: run_strategy(scenario, cluster.nodes.clone(), Strategy::FrequencyControl),
        frequency_ta: run_strategy(
            scenario,
            cluster.nodes.clone(),
            Strategy::FrequencyControlThrottleAware,
        ),
        migration: run_strategy(scenario, cluster.nodes, Strategy::migration_default()),
    }
}

/// Violation rate of one class in a report (0 when absent).
pub fn class_violation_rate(report: &ClusterReport, class: &str) -> f64 {
    report
        .slo_by_class
        .iter()
        .find(|(c, _)| c == class)
        .map(|(_, s)| s.violation_rate())
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> Vec<NodeSpec> {
        vec![NodeSpec::custom("n", 1, 4, 2, vfc_simcore::MHz(2400)); 6]
    }

    #[test]
    fn frequency_control_needs_no_migrations() {
        let report = run_strategy(
            ClusterScenario::quick(),
            small_cluster(),
            Strategy::FrequencyControl,
        );
        assert_eq!(report.migrations, 0);
        assert_eq!(report.rejected + report.deployed, 22);
        assert!(report.energy_wh > 0.0);
    }

    #[test]
    fn migration_strategy_pays_in_migrations_and_slo() {
        let scenario = ClusterScenario::quick();
        let freq = run_strategy(scenario, small_cluster(), Strategy::FrequencyControl);
        let mig = run_strategy(scenario, small_cluster(), Strategy::migration_default());
        // The overcommitted baseline migrates; the controlled cluster
        // never does.
        assert!(mig.migrations > 0, "overcommitted cluster should migrate");
        assert_eq!(freq.migrations, 0);
        // And its large (saturating, 1800 MHz) class suffers more SLO
        // violations than under frequency control.
        let violations = |r: &ClusterReport| {
            r.slo_by_class
                .iter()
                .find(|(c, _)| c == "large")
                .map(|(_, s)| s.violation_rate())
                .unwrap_or(0.0)
        };
        let v_freq = violations(&freq);
        let v_mig = violations(&mig);
        assert!(
            v_mig > v_freq,
            "migration baseline should violate more: {v_mig} vs {v_freq}"
        );
    }

    #[test]
    fn throttle_awareness_cuts_bursty_class_violations() {
        // The paper's estimator only sees consumption, which a capping
        // clips: a bursty VM's onsets read as stable-low and pay several
        // violated periods. Reading `throttled_usec` removes the blind
        // spot; the premium (steady) class must stay intact.
        let scenario = ClusterScenario::quick();
        let paper = run_strategy(scenario, small_cluster(), Strategy::FrequencyControl);
        let aware = run_strategy(
            scenario,
            small_cluster(),
            Strategy::FrequencyControlThrottleAware,
        );
        let v_paper = class_violation_rate(&paper, "small");
        let v_aware = class_violation_rate(&aware, "small");
        assert!(
            v_aware < v_paper,
            "throttle-aware should cut bursty-class violations: {v_aware} vs {v_paper}"
        );
        assert!(
            class_violation_rate(&aware, "large") <= class_violation_rate(&paper, "large") + 1e-9,
            "steady class must not regress"
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let a = run_strategy(
            ClusterScenario::quick(),
            small_cluster(),
            Strategy::migration_default(),
        );
        let b = run_strategy(
            ClusterScenario::quick(),
            small_cluster(),
            Strategy::migration_default(),
        );
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.slo_overall, b.slo_overall);
        assert_eq!(a.energy_wh, b.energy_wh);
    }
}
