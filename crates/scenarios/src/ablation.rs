//! Quality ablations over the controller's design parameters.
//!
//! §III.B.2 and §IV.A.1 fix the trigger/factor values "experimentally"
//! as "a good tradeoff between stable capping and fast convergence";
//! these sweeps quantify that tradeoff so the choice is reproducible:
//!
//! * **increase factor** — convergence speed vs allocation waste when a
//!   vCPU steps from idle to saturating;
//! * **decrease factor** — cycle-reclaim speed after a load drop vs
//!   capping oscillation under a sawtooth load;
//! * **history length** — spurious trigger rate under a noisy but
//!   stationary load;
//! * **auction window** — burst fairness between a credit-rich and a
//!   credit-poor VM competing for the same market.

use serde::{Deserialize, Serialize};
use vfc_controller::estimate::EstimateCase;
use vfc_controller::{Controller, ControllerConfig};
use vfc_cpusched::dvfs::{Governor, GovernorKind};
use vfc_cpusched::engine::Engine;
use vfc_cpusched::topology::NodeSpec;
use vfc_simcore::{MHz, Micros, SplitMix64, VcpuAddr, VcpuId, VmId};
use vfc_vmm::workload::TraceWorkload;
use vfc_vmm::{SimHost, VmTemplate};

fn quiet_host(threads: u32, seed: u64) -> SimHost {
    let spec = NodeSpec::custom("abl", 1, threads, 1, MHz(2400));
    let gov = Governor::new(GovernorKind::Performance, spec.min_mhz, spec.max_mhz, seed)
        .with_noise_std(0.0);
    let engine = Engine::with_parts(spec.clone(), Micros(100_000), gov, seed);
    SimHost::new(spec, seed).with_engine(engine)
}

/// Expand a per-second demand staircase into per-tick values.
fn per_tick(per_second: &[f64]) -> Vec<f64> {
    per_second
        .iter()
        .flat_map(|&d| std::iter::repeat_n(d, 10))
        .collect()
}

/// One probe VM (no guarantee pressure — `F_v` = node max so Eq. 5 never
/// clips the estimate) driven by a demand staircase; returns per-period
/// `(used, alloc, case)` for vCPU 0.
fn probe_run(
    cfg: ControllerConfig,
    demand_per_second: &[f64],
    vfreq: MHz,
) -> Vec<(Micros, Micros, EstimateCase)> {
    let mut host = quiet_host(2, 11);
    let vm = host.provision(&VmTemplate::new("probe", 1, vfreq));
    host.attach_workload(
        vm,
        Box::new(TraceWorkload::new(per_tick(demand_per_second))),
    );
    let mut ctl = Controller::new(cfg, host.topology_info());
    let addr = VcpuAddr::new(vm, VcpuId::new(0));
    let mut out = Vec::with_capacity(demand_per_second.len());
    for _ in 0..demand_per_second.len() {
        host.advance_period();
        let report = ctl.iterate(&mut host).expect("sim backend");
        let v = report.vcpu(addr).expect("probe is reported");
        out.push((v.used, v.alloc, v.case));
    }
    out
}

/// Increase-factor ablation result for one factor value.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IncreaseFactorRow {
    /// The increase factor swept.
    pub factor: f64,
    /// Periods from the step until consumption ≥ 95 % of a full period.
    pub convergence_periods: u32,
    /// Mean over-allocation (alloc − used) during convergence, µs.
    pub mean_waste_us: f64,
}

/// Sweep the increase factor: idle 5 s, then a step to full demand.
pub fn sweep_increase_factor(factors: &[f64]) -> Vec<IncreaseFactorRow> {
    let mut demand = vec![0.0; 5];
    demand.extend(vec![1.0; 40]);
    factors
        .iter()
        .map(|&factor| {
            let mut cfg = ControllerConfig::paper_defaults();
            cfg.increase_factor = factor;
            // Probe with a tiny guarantee so the ramp is estimate-driven
            // (the guarantee-first floor would otherwise mask the sweep).
            let track = probe_run(cfg, &demand, MHz(24));
            let step_at = 5usize;
            let mut convergence = demand.len() as u32;
            let mut waste_acc = 0.0;
            let mut waste_n = 0u32;
            for (i, (used, alloc, _)) in track.iter().enumerate().skip(step_at) {
                waste_acc += alloc.saturating_sub(*used).as_u64() as f64;
                waste_n += 1;
                if used.as_u64() >= 950_000 {
                    convergence = (i - step_at) as u32;
                    break;
                }
            }
            IncreaseFactorRow {
                factor,
                convergence_periods: convergence,
                mean_waste_us: if waste_n == 0 {
                    0.0
                } else {
                    waste_acc / waste_n as f64
                },
            }
        })
        .collect()
}

/// Decrease-factor ablation result.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DecreaseFactorRow {
    /// The decrease factor swept.
    pub factor: f64,
    /// Periods after the drop until the capping is within 2× of the new
    /// low consumption (cycles reclaimed for the market).
    pub reclaim_periods: u32,
    /// Relative capping spread in the final sawtooth phase (oscillation).
    pub sawtooth_cap_spread: f64,
}

/// Sweep the decrease factor: high plateau, a drop, then a ±10 % sawtooth.
pub fn sweep_decrease_factor(factors: &[f64]) -> Vec<DecreaseFactorRow> {
    let mut demand = vec![0.9; 10];
    demand.extend(vec![0.1; 40]); // the drop
    for i in 0..30 {
        demand.push(if i % 2 == 0 { 0.55 } else { 0.45 }); // sawtooth
    }
    factors
        .iter()
        .map(|&factor| {
            let mut cfg = ControllerConfig::paper_defaults();
            cfg.decrease_factor = factor;
            let track = probe_run(cfg, &demand, MHz(24));
            let drop_at = 10usize;
            let mut reclaim = 40u32;
            for (i, (_, alloc, _)) in track.iter().enumerate().skip(drop_at).take(40) {
                if alloc.as_u64() <= 200_000 {
                    reclaim = (i - drop_at) as u32;
                    break;
                }
            }
            let tail: Vec<f64> = track[demand.len() - 20..]
                .iter()
                .map(|(_, alloc, _)| alloc.as_u64() as f64)
                .collect();
            let lo = tail.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            DecreaseFactorRow {
                factor,
                reclaim_periods: reclaim,
                sawtooth_cap_spread: if hi > 0.0 { (hi - lo) / hi } else { 0.0 },
            }
        })
        .collect()
}

/// History-length ablation result.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HistoryLenRow {
    /// The history length `n` swept.
    pub history_len: usize,
    /// Non-stable estimator firings per 100 periods of a noisy but
    /// stationary load.
    pub spurious_triggers_per_100: f64,
}

/// Sweep the history length under a stationary load with ±8 % noise.
pub fn sweep_history_len(lens: &[usize]) -> Vec<HistoryLenRow> {
    let mut rng = SplitMix64::new(0xA11);
    let demand: Vec<f64> = (0..120)
        .map(|_| (0.6 + rng.normal(0.0, 0.08)).clamp(0.0, 1.0))
        .collect();
    lens.iter()
        .map(|&history_len| {
            let mut cfg = ControllerConfig::paper_defaults();
            cfg.history_len = history_len;
            let track = probe_run(cfg, &demand, MHz(24));
            // Skip the settling prefix.
            let triggers = track[20..]
                .iter()
                .filter(|(_, _, case)| *case != EstimateCase::Stable)
                .count();
            HistoryLenRow {
                history_len,
                spurious_triggers_per_100: 100.0 * triggers as f64 / (track.len() - 20) as f64,
            }
        })
        .collect()
}

/// Auction-window ablation result.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WindowRow {
    /// The auction window swept, µs.
    pub window_us: u64,
    /// Market cycles won by the modestly-funded VM / by the credit-rich
    /// VM during the first burst periods (1.0 = the window equalized
    /// them; small values = the rich wallet swept the scarce market
    /// first, §III.B.4's failure mode).
    pub modest_to_rich_ratio: f64,
}

/// Sweep the auction window at the stage level: a credit-rich and a
/// modestly-funded vCPU bid for a market that can satisfy only one of
/// them. The window only matters between *funded* buyers with a scarce
/// market — at the system level that state is transient (the
/// guarantee-first ramp serves bases before the auction even starts), so
/// the stage-level measurement is the meaningful one.
pub fn sweep_window(windows_us: &[u64]) -> Vec<WindowRow> {
    use std::collections::HashMap;
    use vfc_controller::auction::{run_auction, Buyer};
    use vfc_controller::credits::Wallet;
    use vfc_controller::monitor::VcpuObservation;
    use vfc_simcore::CpuId;

    windows_us
        .iter()
        .map(|&window_us| {
            // Fund the wallets through Eq. 4 (the only public intake):
            // rich idled against a huge guarantee, modest against a small
            // one.
            let mut wallet = Wallet::new();
            let rich_vm = VmId::new(0);
            let modest_vm = VmId::new(1);
            let guarantee: HashMap<VmId, Micros> =
                [(rich_vm, Micros(10_000_000)), (modest_vm, Micros(150_000))].into();
            let obs = |vm: u32| VcpuObservation {
                addr: VcpuAddr::new(VmId::new(vm), VcpuId::new(0)),
                used: Micros::ZERO,
                throttled: Micros::ZERO,
                last_cpu: CpuId::new(0),
                freq_est: MHz(0),
            };
            wallet.earn(&[obs(0), obs(1)], &guarantee);

            // Both want 200 k from a 200 k market.
            let mut market = Micros(200_000);
            let mut buyers = vec![
                Buyer {
                    addr: VcpuAddr::new(rich_vm, VcpuId::new(0)),
                    want: Micros(200_000),
                },
                Buyer {
                    addr: VcpuAddr::new(modest_vm, VcpuId::new(0)),
                    want: Micros(200_000),
                },
            ];
            let mut alloc = HashMap::new();
            run_auction(
                &mut market,
                &mut buyers,
                &mut wallet,
                Micros(window_us),
                &mut alloc,
            );
            let got = |vm: VmId| {
                alloc
                    .get(&VcpuAddr::new(vm, VcpuId::new(0)))
                    .map(|m| m.as_u64())
                    .unwrap_or(0)
            };
            let rich_won = got(rich_vm);
            let modest_won = got(modest_vm);
            WindowRow {
                window_us,
                modest_to_rich_ratio: if rich_won == 0 {
                    1.0
                } else {
                    modest_won as f64 / rich_won as f64
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_increase_factor_converges_faster_but_wastes_more() {
        let rows = sweep_increase_factor(&[0.25, 1.0, 3.0]);
        assert!(rows[0].convergence_periods > rows[2].convergence_periods);
        assert!(
            rows[2].mean_waste_us > rows[0].mean_waste_us,
            "aggressive ramps over-allocate: {:?}",
            rows
        );
    }

    #[test]
    fn larger_decrease_factor_reclaims_faster() {
        let rows = sweep_decrease_factor(&[0.02, 0.5]);
        assert!(
            rows[1].reclaim_periods < rows[0].reclaim_periods,
            "{rows:?}"
        );
    }

    #[test]
    fn longer_history_filters_noise() {
        let rows = sweep_history_len(&[2, 20]);
        assert!(
            rows[1].spurious_triggers_per_100 <= rows[0].spurious_triggers_per_100,
            "{rows:?}"
        );
    }

    #[test]
    fn smaller_window_is_fairer_to_the_modest_vm() {
        let rows = sweep_window(&[10_000, 1_000_000]);
        assert!(
            rows[0].modest_to_rich_ratio > rows[1].modest_to_rich_ratio,
            "{rows:?}"
        );
        // The small window should get close to parity.
        assert!(rows[0].modest_to_rich_ratio > 0.7, "{rows:?}");
    }
}
