//! `clustersim` — run a cluster-scale what-if from the command line.
//!
//! ```text
//! clustersim [--strategy freq|freq-ta|migration]
//!            [--chetemi N] [--chiclet N]
//!            [--small N] [--medium N] [--large N]
//!            [--periods N] [--seed N] [--csv PATH]
//! ```
//!
//! Deploys the requested VM mix (bursty smalls, steady-80 % mediums,
//! saturating larges — the `vfc-scenarios::cluster_eval` profiles) on the
//! requested node mix under one strategy and prints the report; `--csv`
//! additionally writes the per-class SLO rows.

use std::path::PathBuf;
use std::process::ExitCode;
use vfc_cluster::Strategy;
use vfc_cpusched::topology::NodeSpec;
use vfc_metrics::csv::{to_csv, write_csv_file};
use vfc_scenarios::cluster_eval::{run_strategy, ClusterScenario};

struct Args {
    strategy: Strategy,
    strategy_name: String,
    chetemi: u32,
    chiclet: u32,
    scenario: ClusterScenario,
    csv: Option<PathBuf>,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        strategy: Strategy::FrequencyControl,
        strategy_name: "freq".into(),
        chetemi: 12,
        chiclet: 10,
        scenario: ClusterScenario::default(),
        csv: None,
    };
    let mut i = 0;
    while i < args.len() {
        let key = args[i].clone();
        i += 1;
        let value = args
            .get(i)
            .ok_or_else(|| format!("{key} needs a value"))?
            .clone();
        match key.as_str() {
            "--strategy" => {
                out.strategy = match value.as_str() {
                    "freq" => Strategy::FrequencyControl,
                    "freq-ta" => Strategy::FrequencyControlThrottleAware,
                    "migration" => Strategy::migration_default(),
                    other => return Err(format!("unknown strategy {other:?}")),
                };
                out.strategy_name = value.clone();
            }
            "--csv" => out.csv = Some(PathBuf::from(&value)),
            numeric => {
                let n: u32 = value
                    .parse()
                    .map_err(|_| format!("{numeric} expects an integer, got {value:?}"))?;
                match numeric {
                    "--chetemi" => out.chetemi = n,
                    "--chiclet" => out.chiclet = n,
                    "--small" => out.scenario.smalls = n,
                    "--medium" => out.scenario.mediums = n,
                    "--large" => out.scenario.larges = n,
                    "--periods" => out.scenario.periods = n,
                    "--seed" => out.scenario.seed = n as u64,
                    other => return Err(format!("unknown argument {other:?}")),
                }
            }
        }
        i += 1;
    }
    Ok(out)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "clustersim [--strategy freq|freq-ta|migration] [--chetemi N] [--chiclet N]\n\
                       [--small N] [--medium N] [--large N] [--periods N] [--seed N]\n\
                       [--csv PATH]"
        );
        return ExitCode::SUCCESS;
    }
    let args = match parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("clustersim: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut nodes = vec![NodeSpec::chetemi(); args.chetemi as usize];
    nodes.extend(vec![NodeSpec::chiclet(); args.chiclet as usize]);
    if nodes.is_empty() {
        eprintln!("clustersim: the cluster has no nodes");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "clustersim: {} nodes, {}+{}+{} VMs, strategy {}, {} periods",
        nodes.len(),
        args.scenario.smalls,
        args.scenario.mediums,
        args.scenario.larges,
        args.strategy_name,
        args.scenario.periods
    );

    let report = run_strategy(args.scenario, nodes, args.strategy);
    println!(
        "deployed {} (rejected {}), nodes active {}/{}, migrations {}, energy {:.1} Wh",
        report.deployed,
        report.rejected,
        report.nodes_active,
        report.nodes_total,
        report.migrations,
        report.energy_wh
    );
    println!(
        "SLO violations: {:.2} % overall",
        100.0 * report.slo_overall
    );
    for (class, slo) in &report.slo_by_class {
        println!(
            "  {class:<8} {:>6.2} %  ({} of {} demanding periods)",
            100.0 * slo.violation_rate(),
            slo.violated_periods,
            slo.demanding_periods
        );
    }

    if let Some(path) = args.csv {
        let rows: Vec<Vec<String>> = report
            .slo_by_class
            .iter()
            .map(|(class, slo)| {
                vec![
                    args.strategy_name.clone(),
                    class.clone(),
                    slo.demanding_periods.to_string(),
                    slo.violated_periods.to_string(),
                    format!("{:.6}", slo.violation_rate()),
                ]
            })
            .collect();
        let csv = to_csv(
            &["strategy", "class", "demanding", "violated", "rate"],
            &rows,
        );
        if let Err(e) = write_csv_file(&path, &csv) {
            eprintln!("clustersim: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("clustersim: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
